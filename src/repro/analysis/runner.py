"""Experiment harness: seed-replicated runs and parameter sweeps.

The benchmarks and examples share one way to run things: a *case* is a
(problem-factory, policy-factory) pair evaluated over several seeds;
sweeps map a parameter grid to cases and collect
:class:`~repro.core.metrics.RunResult` objects with their parameters
attached.

Replicates are independent (each builds its own problem, policy and
engine from a seed), so the harness can fan them out across processes:
every public entry point takes ``workers`` and routes the work through
:class:`ParallelExecutor`, which preserves the serial result order and
falls back to in-process execution when parallelism is unavailable
(``workers=1``, a single case, or unpicklable factories).
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.buffered_engine import BufferedEngine
from repro.core.engine import HotPotatoEngine
from repro.core.metrics import RunResult
from repro.core.policy import RoutingPolicy
from repro.core.problem import RoutingProblem
from repro.obs.telemetry import RunTelemetry, aggregate
from repro.analysis.stats import Summary, summarize

ProblemFactory = Callable[[int], RoutingProblem]
PolicyFactory = Callable[[], RoutingPolicy]


@dataclass
class ExperimentPoint:
    """One run plus the sweep parameters that produced it."""

    params: Dict[str, object]
    result: RunResult

    @property
    def steps(self) -> int:
        return self.result.total_steps


@dataclass
class SweepResult:
    """All runs of a sweep, with aggregation helpers."""

    points: List[ExperimentPoint] = field(default_factory=list)
    #: True when the harness had to retry or serially re-run part of
    #: the batch (worker crash, wedged pool, pool start failure).  The
    #: results are still complete and deterministic; the flag only
    #: records that the parallel fabric misbehaved along the way.
    degraded: bool = False
    #: Number of points restored from a checkpoint instead of re-run.
    resumed: int = 0
    #: Number of chunks the parallel fabric dispatched (0 for serial
    #: in-process execution).  Chunked dispatch sends each worker a
    #: contiguous slice of specs in one submission, so per-task
    #: pickling/IPC overhead is paid per chunk, not per spec.
    chunked: int = 0

    def steps_by(self, key: str) -> Dict[object, List[int]]:
        """Group total-step counts by one parameter."""
        grouped: Dict[object, List[int]] = {}
        for point in self.points:
            grouped.setdefault(point.params[key], []).append(point.steps)
        return grouped

    def summarize_by(self, key: str) -> Dict[object, Summary]:
        """Per-parameter-value summary of total steps."""
        return {
            value: summarize(steps)
            for value, steps in sorted(self.steps_by(key).items())
        }

    def all_completed(self) -> bool:
        return all(point.result.completed for point in self.points)

    def telemetry(self) -> Optional[RunTelemetry]:
        """Aggregate lean-path counters over every point of the sweep
        (totals add, peaks max; see :func:`aggregate_telemetry`)."""
        return aggregate_telemetry(self.points)


@dataclass(frozen=True)
class CaseSpec:
    """One picklable unit of harness work: a single seeded run.

    Everything a worker process needs to reproduce the run is carried
    by value; the factories must therefore be picklable (module-level
    functions or :func:`functools.partial` over them — not lambdas or
    closures, which trigger the serial fallback).
    """

    problem_factory: ProblemFactory
    policy_factory: PolicyFactory
    seed: int
    params: Tuple[Tuple[str, object], ...] = ()
    strict_validation: bool = True
    max_steps: Optional[int] = None
    #: "hot-potato" (deflection) or "buffered" (store-and-forward).
    #: With "buffered" the policy factory must build a BufferedPolicy;
    #: strict_validation is ignored (buffers legitimately exceed degree).
    engine: str = "hot-potato"
    #: Step-kernel implementation: "object" (per-packet objects) or
    #: "soa" (structure-of-arrays).  With "soa" the hot-potato engine
    #: needs the lean loop, so strict_validation must be False.
    backend: str = "object"


def _execute_spec(spec: CaseSpec) -> ExperimentPoint:
    """Run one spec (in the parent or a worker process)."""
    from repro.core.validation import validators_for

    problem = spec.problem_factory(spec.seed)
    policy = spec.policy_factory()
    if spec.engine == "buffered":
        result = BufferedEngine(
            problem,
            policy,
            seed=spec.seed,
            max_steps=spec.max_steps,
            backend=spec.backend,
        ).run()
    elif spec.engine == "hot-potato":
        result = HotPotatoEngine(
            problem,
            policy,
            seed=spec.seed,
            validators=validators_for(policy, strict=spec.strict_validation),
            max_steps=spec.max_steps,
            backend=spec.backend,
        ).run()
    else:
        raise ValueError(
            f"unknown engine {spec.engine!r}; "
            "expected 'hot-potato' or 'buffered'"
        )
    point_params: Dict[str, object] = dict(spec.params)
    point_params.setdefault("seed", spec.seed)
    point_params.setdefault("policy", policy.name)
    point_params.setdefault("k", problem.k)
    point_params.setdefault("n", problem.mesh.side)
    return ExperimentPoint(params=point_params, result=result)


def _execute_chunk(specs: Sequence[CaseSpec]) -> List[ExperimentPoint]:
    """Run a contiguous slice of specs inside one worker process.

    Engine construction happens here, in the worker, from the pickled
    :class:`CaseSpec` values — the parent never builds (or pickles) an
    engine.  One submission per chunk amortizes task pickling and IPC
    over the whole slice instead of paying it per spec.
    """
    return [_execute_spec(spec) for spec in specs]


def aggregate_telemetry(
    points: Iterable[ExperimentPoint],
) -> Optional[RunTelemetry]:
    """Merge the lean-path counters of many runs (totals add, peaks
    take the max).  Returns ``None`` when no point carries telemetry
    (e.g. results deserialized from pre-telemetry payloads)."""
    return aggregate(point.result.telemetry for point in points)


class ParallelExecutor:
    """Fans :class:`CaseSpec` batches across worker processes.

    Dispatch is chunked: each pool submission carries a contiguous
    slice of specs (about :attr:`CHUNKS_PER_WORKER` chunks per worker)
    and the worker runs the whole slice in one call, so per-task
    pickling and IPC overhead is paid per chunk rather than per spec.
    :attr:`chunked` counts the chunks of the most recent batch.

    Results always come back in spec order, so a parallel run is
    point-for-point identical to the serial one (each spec is an
    independent seeded simulation; nothing leaks between workers).

    Each run's :class:`~repro.obs.telemetry.RunTelemetry` travels
    inside its pickled :class:`RunResult`, so after :meth:`run` the
    executor's :attr:`telemetry` holds the cross-worker aggregate of
    the whole batch.

    The executor degrades gracefully to in-process execution when

    * ``workers <= 1`` or the batch has fewer than two specs,
    * a spec fails to pickle (lambda/closure factories), or
    * the process pool cannot be started or breaks (restricted
      sandboxes, missing ``fork``/``spawn`` support).

    Crash recovery: a killed or crashed worker loses only the specs it
    was holding.  Every completed spec is kept, and up to ``retries``
    fresh pools re-run *only* the unfinished specs (with exponential
    ``backoff`` between attempts).  ``timeout`` bounds the wait for the
    *next* completion: if no spec finishes within it the pool is
    declared wedged, abandoned (``cancel_futures``), and the attempt
    ends.  Whatever is still missing after the last attempt runs
    serially in-process, so every spec is executed and reported exactly
    once.  Any of these detours sets :attr:`degraded`.

    Exceptions raised *by a spec itself* (policy bugs, validation
    errors) are deterministic and re-raised immediately — retrying
    cannot fix them and would just repeat the failure.
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.25,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.workers = max(1, int(workers))
        #: Max seconds to wait for the next completion before the pool
        #: is declared wedged; ``None`` waits forever.
        self.timeout = timeout
        #: Extra pool attempts after the first (0 disables retry).
        self.retries = max(0, int(retries))
        #: Base delay before retry ``k`` is ``backoff * 2**(k-1)``.
        self.backoff = backoff
        self._sleep = sleep if sleep is not None else time.sleep
        #: Aggregate counters of the most recent :meth:`run` batch.
        self.telemetry: Optional[RunTelemetry] = None
        #: True when the most recent batch needed retries or fallbacks.
        self.degraded = False
        #: Chunks dispatched to pools in the most recent batch (0 when
        #: the batch ran serially in-process).
        self.chunked = 0

    def run(
        self,
        specs: Sequence[CaseSpec],
        *,
        on_point: Optional[Callable[[int, ExperimentPoint], None]] = None,
    ) -> List[ExperimentPoint]:
        """Execute all specs, returning points in spec order.

        ``on_point(index, point)`` fires once per spec as its result
        lands (checkpoint hooks); indices refer to ``specs`` order, and
        the callback runs in this process regardless of worker fan-out.
        """
        self.degraded = False
        self.chunked = 0
        points = self._run(list(specs), on_point)
        self.telemetry = aggregate_telemetry(points)
        return points

    def _run(
        self,
        specs: List[CaseSpec],
        on_point: Optional[Callable[[int, ExperimentPoint], None]],
    ) -> List[ExperimentPoint]:
        results: Dict[int, ExperimentPoint] = {}

        def record(index: int, point: ExperimentPoint) -> None:
            results[index] = point
            if on_point is not None:
                on_point(index, point)

        if self.workers == 1 or len(specs) < 2 or not self._picklable(specs):
            for index, spec in enumerate(specs):
                record(index, _execute_spec(spec))
            return [results[i] for i in range(len(specs))]

        pending = list(range(len(specs)))
        for attempt in range(self.retries + 1):
            if not pending:
                break
            if attempt:
                self.degraded = True
                if self.backoff > 0:
                    self._sleep(self.backoff * (2 ** (attempt - 1)))
            self._pool_pass(specs, pending, record)
            pending = [i for i in pending if i not in results]
        if pending:
            # Last resort: whatever the pools never finished runs
            # serially here, so the batch always comes back whole.
            self.degraded = True
            for index in pending:
                record(index, _execute_spec(specs[index]))
        return [results[i] for i in range(len(specs))]

    #: Target chunks per worker: mild oversubscription keeps workers
    #: busy when chunks finish unevenly without reverting to the old
    #: spec-at-a-time dispatch (whose per-task IPC dominated short runs).
    CHUNKS_PER_WORKER = 4

    def _chunks(self, pending: Sequence[int]) -> List[List[int]]:
        """Partition ``pending`` into contiguous, near-equal chunks."""
        target = self.workers * self.CHUNKS_PER_WORKER
        size = max(1, -(-len(pending) // target))
        return [
            list(pending[start : start + size])
            for start in range(0, len(pending), size)
        ]

    def _pool_pass(
        self,
        specs: List[CaseSpec],
        pending: Sequence[int],
        record: Callable[[int, ExperimentPoint], None],
    ) -> None:
        """One pool attempt over ``pending``; records what completes.

        Dispatch is *chunked*: each submission carries a contiguous
        slice of specs and one worker call (:func:`_execute_chunk`)
        runs the whole slice, building every engine worker-side from
        the pickled :class:`CaseSpec` values.

        Infrastructure casualties (worker crashes, unstartable or
        wedged pools) are swallowed — a lost chunk's specs simply stay
        pending and the caller retries the gaps.  Exceptions raised by
        the specs themselves propagate.
        """
        try:
            pool = ProcessPoolExecutor(max_workers=self.workers)
        except (OSError, PermissionError):
            self.degraded = True
            return
        clean = True
        try:
            futures = {
                pool.submit(_execute_chunk, [specs[i] for i in chunk]): chunk
                for chunk in self._chunks(pending)
            }
            self.chunked += len(futures)
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(
                    outstanding,
                    timeout=self.timeout,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    # Nothing finished within the timeout: the pool is
                    # wedged (hung worker).  Abandon it and move on.
                    clean = False
                    break
                for future in done:
                    chunk = futures[future]
                    try:
                        points = future.result()
                    except (BrokenProcessPool, OSError, PermissionError):
                        # This worker died; its chunk stays pending.
                        clean = False
                        continue
                    except BaseException:
                        # Deterministic spec failure: don't let the
                        # rest of the pool grind on before re-raising.
                        clean = False
                        raise
                    for index, point in zip(chunk, points):
                        record(index, point)
        finally:
            if clean:
                pool.shutdown(wait=True)
            else:
                self.degraded = True
                pool.shutdown(wait=False, cancel_futures=True)

    @staticmethod
    def _picklable(specs: Sequence[CaseSpec]) -> bool:
        try:
            pickle.dumps(specs)
        except Exception:
            return False
        return True


def run_case(
    problem_factory: ProblemFactory,
    policy_factory: PolicyFactory,
    seeds: Sequence[int],
    *,
    params: Optional[Dict[str, object]] = None,
    strict_validation: bool = True,
    max_steps: Optional[int] = None,
    workers: int = 1,
    engine: str = "hot-potato",
    backend: str = "object",
) -> List[ExperimentPoint]:
    """Run one case over several seeds.

    The seed feeds both the problem generator (workload randomness)
    and the engine (policy randomness), so a case is fully determined
    by its factories and seed list.  ``workers > 1`` replicates the
    seeds across processes (same results, same order).  Pass
    ``engine="buffered"`` (with a buffered-policy factory) to run the
    store-and-forward baseline instead of hot-potato routing, and
    ``backend="soa"`` for the structure-of-arrays kernel (hot-potato
    requires ``strict_validation=False`` there — the array kernel runs
    the lean loop).
    """
    frozen_params = tuple((params or {}).items())
    specs = [
        CaseSpec(
            problem_factory=problem_factory,
            policy_factory=policy_factory,
            seed=seed,
            params=frozen_params,
            strict_validation=strict_validation,
            max_steps=max_steps,
            engine=engine,
            backend=backend,
        )
        for seed in seeds
    ]
    return ParallelExecutor(workers).run(specs)


def sweep(
    grid: Iterable[Dict[str, object]],
    case_builder: Callable[[Dict[str, object]], tuple],
    seeds: Sequence[int],
    *,
    strict_validation: bool = True,
    max_steps: Optional[int] = None,
    workers: int = 1,
    executor: Optional[ParallelExecutor] = None,
    checkpoint: Optional["object"] = None,
    backend: str = "object",
) -> SweepResult:
    """Evaluate a parameter grid.

    ``case_builder(params)`` returns ``(problem_factory, policy_factory)``
    for one grid point; every point is replicated over ``seeds``.  With
    ``workers > 1`` the whole grid-by-seeds product is fanned out at
    once, so parallelism helps even when one grid point has few seeds.

    Pass a configured :class:`ParallelExecutor` as ``executor`` to
    control timeouts/retries (``workers`` is then ignored), and a
    :class:`~repro.analysis.checkpoint.SweepCheckpoint` as
    ``checkpoint`` to make the sweep crash-safe: each finished point is
    durably recorded as it lands, and a rerun of the same sweep skips
    every point already on disk (``SweepResult.resumed`` counts them).
    """
    from repro.analysis.checkpoint import restore_points, spec_key

    specs: List[CaseSpec] = []
    for params in grid:
        problem_factory, policy_factory = case_builder(params)
        for seed in seeds:
            specs.append(
                CaseSpec(
                    problem_factory=problem_factory,
                    policy_factory=policy_factory,
                    seed=seed,
                    params=tuple(dict(params).items()),
                    strict_validation=strict_validation,
                    max_steps=max_steps,
                    backend=backend,
                )
            )
    restored = restore_points(checkpoint, specs)
    pending = [i for i in range(len(specs)) if i not in restored]
    runner = executor if executor is not None else ParallelExecutor(workers)
    on_point = None
    if checkpoint is not None:
        def on_point(local_index: int, point: ExperimentPoint) -> None:
            index = pending[local_index]
            checkpoint.record(spec_key(specs[index]), specs[index], point)
    fresh = runner.run([specs[i] for i in pending], on_point=on_point)
    by_index = dict(restored)
    by_index.update(zip(pending, fresh))
    return SweepResult(
        points=[by_index[i] for i in range(len(specs))],
        degraded=runner.degraded,
        resumed=len(restored),
        chunked=runner.chunked,
    )


def compare_policies(
    problem_factory: ProblemFactory,
    policies: Dict[str, PolicyFactory],
    seeds: Sequence[int],
    *,
    strict_validation: bool = True,
    max_steps: Optional[int] = None,
    workers: int = 1,
) -> Dict[str, List[ExperimentPoint]]:
    """Run several policies on identical problem instances."""
    return {
        name: run_case(
            problem_factory,
            factory,
            seeds,
            params={"policy": name},
            strict_validation=strict_validation,
            max_steps=max_steps,
            workers=workers,
        )
        for name, factory in policies.items()
    }
