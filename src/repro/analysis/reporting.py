"""Experiment report assembly.

The benchmark suite leaves one plain-text block per experiment under
``benchmarks/results/``; this module collects them into a single
markdown report (the mechanical half of EXPERIMENTS.md), so a fresh
run of the suite can regenerate the measured sections verbatim.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import Dict, List, Optional

_HEADER = re.compile(r"^== (?P<id>[^:]+): (?P<title>.+) ==$")


@dataclass(frozen=True)
class ExperimentBlock:
    """One experiment's emitted report block."""

    experiment_id: str
    title: str
    body: str

    def to_markdown(self) -> str:
        return (
            f"## {self.experiment_id} — {self.title}\n\n"
            f"```\n{self.body.rstrip()}\n```\n"
        )


def parse_block(text: str) -> ExperimentBlock:
    """Parse one ``== ID: title ==`` block as written by the benches.

    Raises:
        ValueError: when the header line is missing or malformed.
    """
    lines = text.strip().splitlines()
    if not lines:
        raise ValueError("empty experiment block")
    match = _HEADER.match(lines[0])
    if match is None:
        raise ValueError(f"malformed experiment header: {lines[0]!r}")
    return ExperimentBlock(
        experiment_id=match.group("id"),
        title=match.group("title"),
        body="\n".join(lines[1:]),
    )


def _sort_key(experiment_id: str):
    match = re.match(r"E(\d+)([a-z]?)", experiment_id)
    if match is None:
        return (10**9, experiment_id)
    return (int(match.group(1)), match.group(2))


def load_results(results_dir: str) -> List[ExperimentBlock]:
    """Read every ``*.txt`` block in a results directory, in E-order."""
    if not os.path.isdir(results_dir):
        return []
    blocks: List[ExperimentBlock] = []
    for name in os.listdir(results_dir):
        if not name.endswith(".txt"):
            continue
        path = os.path.join(results_dir, name)
        with open(path, "r", encoding="utf-8") as handle:
            blocks.append(parse_block(handle.read()))
    blocks.sort(key=lambda block: _sort_key(block.experiment_id))
    return blocks


def build_report(
    results_dir: str,
    title: str = "Measured experiment tables",
    preamble: Optional[str] = None,
) -> str:
    """Assemble the markdown report from a results directory."""
    blocks = load_results(results_dir)
    parts = [f"# {title}", ""]
    if preamble:
        parts.extend([preamble, ""])
    if not blocks:
        parts.append("*(no experiment results found — run "
                     "`pytest benchmarks/ --benchmark-only` first)*")
    for block in blocks:
        parts.append(block.to_markdown())
    return "\n".join(parts)


def write_report(
    results_dir: str,
    output_path: str,
    **kwargs,
) -> Dict[str, int]:
    """Write the assembled report; returns simple stats for logging."""
    report = build_report(results_dir, **kwargs)
    with open(output_path, "w", encoding="utf-8") as handle:
        handle.write(report)
    return {
        "experiments": len(load_results(results_dir)),
        "bytes": len(report.encode("utf-8")),
    }
