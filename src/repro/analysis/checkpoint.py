"""Legacy crash-safe sweep checkpointing (compatibility shim).

.. deprecated::
    New code should use the event-sourced campaign store
    (:mod:`repro.campaign.store`) with declarative specs
    (:mod:`repro.campaign.spec`): it subsumes this journal — same
    fsync-per-point durability and torn-line recovery, plus queued /
    started / failed lifecycle events, priority-ordered resume, and a
    content identity derived from canonical JSON instead of factory
    qualnames (which silently change when a factory is renamed).
    This module stays for the factory-based ``sweep(checkpoint=...)``
    surface and existing checkpoint files; it receives no new
    features.

A sweep is a pure function of its :class:`~repro.analysis.runner.CaseSpec`
list, so each spec gets a stable content-derived identity
(:func:`spec_key`) and every finished point is appended — fsynced — to
a manifest file as it lands.  If the sweep process dies (power loss,
OOM kill, ctrl-C), rerunning the same sweep with the same checkpoint
restores every acknowledged point from disk and executes only the
missing specs.  A torn trailing line from the crash itself is skipped
by :func:`~repro.obs.manifest.read_manifests`'s recovery mode and the
interrupted spec simply runs again.

The checkpoint file is an ordinary run-manifest JSONL: each line is a
full :class:`~repro.obs.manifest.RunManifest` whose optional ``case``
field carries the spec key and sweep parameters.  Restored points hold
a summary-level :class:`~repro.core.metrics.RunResult` (totals,
telemetry, abort record — no per-step metrics or per-packet outcomes),
which is exactly what sweep aggregation consumes.
"""

from __future__ import annotations

import functools
import hashlib
from typing import Any, Dict, List, Optional

from repro.core.metrics import RunResult
from repro.faults.report import RunAborted
from repro.obs.manifest import (
    RunManifest,
    append_manifest,
    manifest_from_run_result,
    read_manifests,
)
from repro.analysis.runner import CaseSpec, ExperimentPoint

__all__ = ["SweepCheckpoint", "point_from_manifest", "spec_key"]


def _token(value: Any) -> str:
    """A stable, seed-friendly description of one spec ingredient.

    Factories must be picklable to run in a pool anyway, so they are
    module-level callables or :func:`functools.partial` over them —
    both have deterministic names.  Closures/lambdas fall back to
    their qualname (without the memory address a bare repr would
    leak), which is stable within one source version.
    """
    if isinstance(value, functools.partial):
        args = ",".join(_token(a) for a in value.args)
        kwargs = ",".join(
            f"{k}={_token(v)}" for k, v in sorted(value.keywords.items())
        )
        return f"partial({_token(value.func)};{args};{kwargs})"
    if callable(value):
        module = getattr(value, "__module__", "?")
        name = getattr(value, "__qualname__", None) or getattr(
            value, "__name__", None
        )
        if name is None:
            name = type(value).__name__
        return f"{module}:{name}"
    return repr(value)


def spec_key(spec: CaseSpec) -> str:
    """Stable 16-hex-digit identity of one sweep unit.

    Two specs collide exactly when they would produce the same run:
    same factories, seed, parameters, validation mode, step budget and
    engine.  The key survives process restarts, which is what lets a
    resumed sweep match checkpoint lines to its own spec list.
    """
    material = "|".join(
        (
            _token(spec.problem_factory),
            _token(spec.policy_factory),
            repr(spec.seed),
            repr(spec.params),
            repr(spec.strict_validation),
            repr(spec.max_steps),
            spec.engine,
        )
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


def point_from_manifest(manifest: RunManifest) -> ExperimentPoint:
    """Rebuild a summary-level sweep point from a checkpoint line."""
    case = manifest.case or {}
    result = manifest.result
    abort = (
        RunAborted.from_dict(result["abort"])
        if result.get("abort") is not None
        else None
    )
    run = RunResult(
        problem_name=manifest.workload,
        policy_name=manifest.policy,
        mesh_kind=manifest.mesh.get("kind", "?"),
        dimension=manifest.mesh.get("dimension", 0),
        side=manifest.mesh.get("side", 0),
        k=result.get("k", 0),
        completed=bool(result.get("completed", False)),
        total_steps=result.get("total_steps", 0),
        delivered=result.get("delivered", 0),
        seed=manifest.seed,
        telemetry=manifest.run_telemetry(),
        abort=abort,
    )
    return ExperimentPoint(params=dict(case.get("params", {})), result=run)


class SweepCheckpoint:
    """Append-only sweep progress ledger backed by one JSONL file.

    ``record`` is called by the harness as each point completes and is
    durable on return (``fsync``); ``restore`` reads back every intact
    line, skipping torn or foreign ones and collecting a description
    of each skip in :attr:`errors`.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        #: Problems encountered by the most recent :meth:`restore` —
        #: one human-readable string per skipped line.
        self.errors: List[str] = []

    def record(
        self, key: str, spec: CaseSpec, point: ExperimentPoint
    ) -> None:
        """Durably append one finished point under its spec key."""
        manifest = manifest_from_run_result(
            point.result,
            command="sweep",
            engine=spec.engine,
            case={"key": key, "params": dict(point.params)},
        )
        append_manifest(manifest, self.path, fsync=True)

    def restore(self) -> Dict[str, ExperimentPoint]:
        """Load completed points keyed by spec key.

        Missing file means a fresh sweep (empty dict).  Lines without
        a ``case`` payload (e.g. a shared manifest file that also logs
        individual runs) are ignored rather than treated as errors.
        """
        self.errors = []
        try:
            manifests = read_manifests(self.path, errors=self.errors)
        except FileNotFoundError:
            return {}
        restored: Dict[str, ExperimentPoint] = {}
        for manifest in manifests:
            case = manifest.case
            if not case or "key" not in case:
                continue
            restored[str(case["key"])] = point_from_manifest(manifest)
        return restored


def restore_points(
    checkpoint: Optional[SweepCheckpoint],
    specs: List[CaseSpec],
) -> Dict[int, ExperimentPoint]:
    """Map spec indices to restored points (empty without checkpoint)."""
    if checkpoint is None:
        return {}
    restored = checkpoint.restore()
    if not restored:
        return {}
    return {
        index: restored[key]
        for index, key in enumerate(spec_key(s) for s in specs)
        if key in restored
    }
