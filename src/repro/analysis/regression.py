"""Power-law fits for scaling experiments.

The paper's bounds have power-law shape — ``O(n * sqrt(k))`` in 2-D,
``O(n^(d-1) * k^(1/d))`` in general — so the scaling benchmarks (E13)
fit measured routing times to ``T = c * x^a`` (one factor) or
``T = c * n^a * k^b`` (two factors) in log space and report exponents
with an R^2 quality score.  Plain least squares on logs, solved in
closed form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class PowerLawFit:
    """``T ~ coefficient * x^exponent``."""

    coefficient: float
    exponent: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.coefficient * x**self.exponent

    def __str__(self) -> str:
        return (
            f"T = {self.coefficient:.3g} * x^{self.exponent:.3f} "
            f"(R^2={self.r_squared:.4f})"
        )


@dataclass(frozen=True)
class TwoFactorFit:
    """``T ~ coefficient * n^n_exponent * k^k_exponent``."""

    coefficient: float
    n_exponent: float
    k_exponent: float
    r_squared: float

    def predict(self, n: float, k: float) -> float:
        return self.coefficient * n**self.n_exponent * k**self.k_exponent

    def __str__(self) -> str:
        return (
            f"T = {self.coefficient:.3g} * n^{self.n_exponent:.3f} "
            f"* k^{self.k_exponent:.3f} (R^2={self.r_squared:.4f})"
        )


def _validate_positive(name: str, values: Sequence[float]) -> List[float]:
    result = [float(v) for v in values]
    if any(v <= 0 for v in result):
        raise ValueError(f"{name} must be positive for a log-space fit")
    return result


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Least-squares fit of ``y = c * x^a`` in log space."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points to fit a power law")
    lx = [math.log(v) for v in _validate_positive("xs", xs)]
    ly = [math.log(v) for v in _validate_positive("ys", ys)]
    n = len(lx)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    sxx = sum((x - mean_x) ** 2 for x in lx)
    if sxx == 0:
        raise ValueError("all xs identical; exponent is undetermined")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(lx, ly))
    exponent = sxy / sxx
    intercept = mean_y - exponent * mean_x
    predictions = [intercept + exponent * x for x in lx]
    ss_res = sum((y - p) ** 2 for y, p in zip(ly, predictions))
    ss_tot = sum((y - mean_y) ** 2 for y in ly)
    r_squared = 1.0 if ss_tot == 0 else 1 - ss_res / ss_tot
    return PowerLawFit(
        coefficient=math.exp(intercept),
        exponent=exponent,
        r_squared=r_squared,
    )


def fit_two_factor(
    ns: Sequence[float], ks: Sequence[float], ts: Sequence[float]
) -> TwoFactorFit:
    """Least-squares fit of ``T = c * n^a * k^b`` in log space.

    Solves the 3x3 normal equations directly.
    """
    if not (len(ns) == len(ks) == len(ts)):
        raise ValueError("ns, ks, ts must have equal length")
    if len(ns) < 3:
        raise ValueError("need at least three points for a two-factor fit")
    ln = [math.log(v) for v in _validate_positive("ns", ns)]
    lk = [math.log(v) for v in _validate_positive("ks", ks)]
    lt = [math.log(v) for v in _validate_positive("ts", ts)]
    m = len(ln)

    # Normal equations for [intercept, a, b].
    a11, a12, a13 = float(m), sum(ln), sum(lk)
    a22 = sum(x * x for x in ln)
    a23 = sum(x * y for x, y in zip(ln, lk))
    a33 = sum(y * y for y in lk)
    b1 = sum(lt)
    b2 = sum(x * t for x, t in zip(ln, lt))
    b3 = sum(y * t for y, t in zip(lk, lt))

    matrix = [
        [a11, a12, a13, b1],
        [a12, a22, a23, b2],
        [a13, a23, a33, b3],
    ]
    solution = _solve3(matrix)
    intercept, n_exp, k_exp = solution

    predictions = [
        intercept + n_exp * x + k_exp * y for x, y in zip(ln, lk)
    ]
    mean_t = sum(lt) / m
    ss_res = sum((t - p) ** 2 for t, p in zip(lt, predictions))
    ss_tot = sum((t - mean_t) ** 2 for t in lt)
    r_squared = 1.0 if ss_tot == 0 else 1 - ss_res / ss_tot
    return TwoFactorFit(
        coefficient=math.exp(intercept),
        n_exponent=n_exp,
        k_exponent=k_exp,
        r_squared=r_squared,
    )


def _solve3(augmented: List[List[float]]) -> List[float]:
    """Gaussian elimination with partial pivoting on a 3x4 system."""
    system = [row[:] for row in augmented]
    size = 3
    for col in range(size):
        pivot = max(range(col, size), key=lambda r: abs(system[r][col]))
        if abs(system[pivot][col]) < 1e-12:
            raise ValueError(
                "singular design matrix: vary both n and k in the sweep"
            )
        system[col], system[pivot] = system[pivot], system[col]
        for row in range(size):
            if row == col:
                continue
            factor = system[row][col] / system[col][col]
            for j in range(col, size + 1):
                system[row][j] -= factor * system[col][j]
    return [system[i][size] / system[i][i] for i in range(size)]
