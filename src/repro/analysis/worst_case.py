"""Adversarial instance search.

Section 6.1 reports that Ben-Aroya, Chinn and Schuster [BCS] proved an
``Ω(n^2)`` lower bound for *some* restricted-priority algorithm on
worst-case permutations — i.e. Theorem 20's analysis is tight for the
class.  Their construction is intricate; as a measurable stand-in this
module hunts for bad permutations by local search: start from a random
permutation, repeatedly swap two packets' destinations, keep the swap
when the routing time does not decrease.

The search certifies *existence* ("we found a permutation this much
worse than random") — a lower bound on the worst case, never an upper
bound.  Benchmark E22 reports how far simple search pushes each
algorithm above its typical behavior.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.engine import HotPotatoEngine
from repro.core.policy import RoutingPolicy
from repro.core.problem import RoutingProblem
from repro.core.rng import RngLike, make_rng
from repro.mesh.topology import Mesh
from repro.types import Node

PolicyFactory = Callable[[], RoutingPolicy]


@dataclass
class WorstCaseResult:
    """Outcome of one adversarial search."""

    problem: RoutingProblem
    steps: int
    baseline_steps: int
    evaluations: int

    @property
    def degradation(self) -> float:
        """How much worse the found instance is than the start."""
        if self.baseline_steps == 0:
            return 1.0
        return self.steps / self.baseline_steps

    def __str__(self) -> str:
        return (
            f"worst found: T={self.steps} (start {self.baseline_steps}, "
            f"x{self.degradation:.2f}) after {self.evaluations} evaluations"
        )


def _evaluate(
    destinations: List[Node],
    sources: List[Node],
    mesh: Mesh,
    policy_factory: PolicyFactory,
    seed: int,
) -> int:
    problem = RoutingProblem.from_pairs(
        mesh, zip(sources, destinations), name="adversarial-search"
    )
    result = HotPotatoEngine(problem, policy_factory(), seed=seed).run()
    if not result.completed:
        # A non-terminating instance is "infinitely bad"; keep it.
        return 10**9
    return result.total_steps


def search_worst_permutation(
    mesh: Mesh,
    policy_factory: PolicyFactory,
    *,
    iterations: int = 300,
    seed: RngLike = 0,
    run_seed: int = 0,
) -> WorstCaseResult:
    """Hill-climb over permutations to maximize routing time.

    A proposal swaps the destinations of two random packets (the batch
    remains a permutation); a swap is kept when the time does not
    drop, so the search walks plateaus.
    """
    rng = make_rng(seed)
    sources = list(mesh.nodes())
    destinations = list(sources)
    rng.shuffle(destinations)

    current = _evaluate(destinations, sources, mesh, policy_factory, run_seed)
    baseline = current
    evaluations = 1
    for _ in range(iterations):
        i, j = rng.randrange(len(sources)), rng.randrange(len(sources))
        if i == j:
            continue
        destinations[i], destinations[j] = destinations[j], destinations[i]
        candidate = _evaluate(
            destinations, sources, mesh, policy_factory, run_seed
        )
        evaluations += 1
        if candidate >= current:
            current = candidate
        else:
            destinations[i], destinations[j] = (
                destinations[j],
                destinations[i],
            )
    problem = RoutingProblem.from_pairs(
        mesh, zip(sources, destinations), name="adversarial-permutation"
    )
    return WorstCaseResult(
        problem=problem,
        steps=current,
        baseline_steps=baseline,
        evaluations=evaluations,
    )


def search_with_restarts(
    mesh: Mesh,
    policy_factory: PolicyFactory,
    *,
    restarts: int = 3,
    iterations: int = 200,
    seed: RngLike = 0,
    run_seed: int = 0,
) -> WorstCaseResult:
    """Best of several independent hill climbs."""
    rng = make_rng(seed)
    best: Optional[WorstCaseResult] = None
    for _ in range(max(1, restarts)):
        result = search_worst_permutation(
            mesh,
            policy_factory,
            iterations=iterations,
            seed=rng.getrandbits(32),
            run_seed=run_seed,
        )
        if best is None or result.steps > best.steps:
            best = result
    assert best is not None
    total = sum([restarts * (iterations + 1)])
    return WorstCaseResult(
        problem=best.problem,
        steps=best.steps,
        baseline_steps=best.baseline_steps,
        evaluations=total,
    )
