"""Livelock detection and construction.

Section 1.2 of the paper: "certain chains of deflections may
eventually result back in the original configuration, thus raising the
question whether the algorithm ever terminates.  Such infinite loops
are called *livelock*", and "it is rather easy to come up with a
livelock situation whenever greediness is the only routing policy
[NS1], [Haj]".

Two tools substantiate this computationally:

* :func:`detect_cycle` — watches a *deterministic* run and reports the
  first repeated global state.  A repeat is a proof of livelock: the
  run is a pure function of the state, so it will loop forever.

* :func:`find_greedy_cycle` — explores the **nondeterministic greedy
  transition graph** of a configuration: from each global state, every
  combination of per-node maximal matchings (who advances) and
  deflection assignments (where losers go) that Definition 6 allows.
  A reachable cycle in this graph is a greedy schedule that never
  terminates; it is packaged as a
  :class:`~repro.algorithms.adversarial.SchedulePolicy` whose replay
  the engine re-validates step by step.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults import FaultSchedule

from repro.algorithms.adversarial import SchedulePolicy, schedule_from_moves
from repro.core.engine import HotPotatoEngine
from repro.core.policy import RoutingPolicy
from repro.core.problem import RoutingProblem
from repro.mesh.directions import Direction
from repro.mesh.topology import Mesh
from repro.types import Node, PacketId

#: Global state for the searcher: node of every in-flight packet.
State = Tuple[Node, ...]

#: One step's moves: packet id -> (node before the move, direction).
Moves = Dict[PacketId, Tuple[Node, Direction]]


@dataclass(frozen=True)
class DetectedCycle:
    """A repeated global state observed in a deterministic run."""

    loop_start: int
    period: int

    def __str__(self) -> str:
        return (
            f"livelock: state at step {self.loop_start} recurs every "
            f"{self.period} steps"
        )


def detect_cycle(
    problem: RoutingProblem,
    policy: RoutingPolicy,
    *,
    seed: int = 0,
    max_steps: int = 10_000,
    faults: Optional["FaultSchedule"] = None,
) -> Optional[DetectedCycle]:
    """Run a deterministic policy and report the first state repeat.

    Only meaningful for deterministic policies: with randomized
    tie-breaks, a repeated state does not imply a repeated future.
    Returns None when the run terminates (all delivered) or no repeat
    shows up within ``max_steps``.

    With a ``faults`` schedule the run happens on the masked topology.
    State repeats are only counted once every scheduled event is in its
    terminal regime (past the last window start/end), because before
    that the topology itself is still changing and a repeated packet
    configuration does not imply a repeated future.
    """
    engine = HotPotatoEngine(
        problem,
        policy,
        seed=seed,
        max_steps=max_steps + 1,
        faults=faults,
    )
    settled_at = 0
    if faults is not None:
        edges: List[int] = [0]
        for event in faults.events:
            for key in ("start", "end", "step"):
                value = getattr(event, key, None)
                if value is not None:
                    edges.append(int(value))
        settled_at = max(edges)
    seen: Dict[tuple, int] = {}
    if settled_at == 0:
        seen[engine.global_state()] = 0
    step = 0
    while engine.in_flight and step < max_steps:
        engine.step()
        step += 1
        if not engine.in_flight:
            return None
        if step < settled_at:
            continue
        state = engine.global_state()
        if state in seen:
            return DetectedCycle(
                loop_start=seen[state], period=step - seen[state]
            )
        seen[state] = step
    return None


# ----------------------------------------------------------------------
# Nondeterministic greedy transition graph
# ----------------------------------------------------------------------


def _maximal_matchings(
    packet_ids: Sequence[PacketId],
    good: Dict[PacketId, Tuple[Direction, ...]],
) -> Iterator[Dict[PacketId, Direction]]:
    """All maximal matchings of packets to their good directions.

    Definition 6 allows any of these as the advancing set at a node:
    maximality is exactly "a deflected packet's good arcs are all in
    use by advancing packets".
    """

    def extend(
        index: int, current: Dict[PacketId, Direction]
    ) -> Iterator[Dict[PacketId, Direction]]:
        if index == len(packet_ids):
            used = set(current.values())
            for packet_id in packet_ids:
                if packet_id not in current and any(
                    d not in used for d in good[packet_id]
                ):
                    return  # not maximal
            yield dict(current)
            return
        packet_id = packet_ids[index]
        used = set(current.values())
        for direction in good[packet_id]:
            if direction not in used:
                current[packet_id] = direction
                yield from extend(index + 1, current)
                del current[packet_id]
        yield from extend(index + 1, current)

    yield from extend(0, {})


def _node_options(
    mesh: Mesh,
    node: Node,
    packet_ids: Sequence[PacketId],
    destinations: Sequence[Node],
) -> List[Dict[PacketId, Direction]]:
    """Every greedy-valid complete assignment at one node."""
    good = {
        packet_id: tuple(mesh.good_directions(node, destination))
        for packet_id, destination in zip(packet_ids, destinations)
    }
    out_directions = mesh.out_directions(node)
    options: List[Dict[PacketId, Direction]] = []
    seen = set()
    for matching in _maximal_matchings(list(packet_ids), good):
        free = [d for d in out_directions if d not in matching.values()]
        losers = [p for p in packet_ids if p not in matching]
        for chosen in itertools.permutations(free, len(losers)):
            assignment = dict(matching)
            assignment.update(zip(losers, chosen))
            key = tuple(sorted(assignment.items()))
            if key not in seen:
                seen.add(key)
                options.append(assignment)
    return options


def greedy_successors(
    mesh: Mesh,
    destinations: Sequence[Node],
    state: State,
    *,
    max_successors: int = 4096,
    forbid_delivery: bool = True,
) -> Iterator[Tuple[State, Moves]]:
    """Enumerate greedy one-step transitions from a global state.

    Args:
        destinations: destination of packet ``i`` (index = packet id).
        state: current node of packet ``i``.
        forbid_delivery: skip transitions that put a packet on its
            destination — a livelock cycle cannot contain a delivery,
            so the searcher prunes them.
    """
    by_node: Dict[Node, List[PacketId]] = {}
    for packet_id, node in enumerate(state):
        by_node.setdefault(node, []).append(packet_id)

    per_node_options = [
        _node_options(
            mesh, node, packet_ids, [destinations[p] for p in packet_ids]
        )
        for node, packet_ids in sorted(by_node.items())
    ]

    count = 0
    for combo in itertools.product(*per_node_options):
        moves: Moves = {}
        new_positions = list(state)
        delivered = False
        for assignment in combo:
            for packet_id, direction in assignment.items():
                node = state[packet_id]
                moves[packet_id] = (node, direction)
                target = mesh.neighbor(node, direction)
                assert target is not None
                new_positions[packet_id] = target
                if target == destinations[packet_id]:
                    delivered = True
        if forbid_delivery and delivered:
            continue
        yield (tuple(new_positions), moves)
        count += 1
        if count >= max_successors:
            return


@dataclass
class GreedyLivelock:
    """A constructed greedy livelock: problem + looping schedule."""

    problem: RoutingProblem
    moves_per_step: Tuple[Moves, ...]
    loop_start: int

    @property
    def period(self) -> int:
        return len(self.moves_per_step) - self.loop_start

    def make_policy(self) -> SchedulePolicy:
        """The replayable (and engine-validated) greedy schedule."""
        return schedule_from_moves(self.moves_per_step, self.loop_start)

    def __str__(self) -> str:
        return (
            f"greedy livelock with k={self.problem.k} on "
            f"{self.problem.mesh.side}^{self.problem.mesh.dimension} "
            f"{self.problem.mesh.kind}: enters a {self.period}-step cycle "
            f"after {self.loop_start} steps"
        )


def find_greedy_cycle(
    problem: RoutingProblem,
    *,
    max_states: int = 50_000,
    max_successors: int = 512,
) -> Optional[GreedyLivelock]:
    """Search the greedy transition graph for a reachable cycle.

    Depth-first search from the initial configuration; a transition
    back onto the current DFS path closes a cycle and yields a
    :class:`GreedyLivelock`.  Returns None when the (possibly capped)
    reachable no-delivery subgraph is acyclic.
    """
    mesh = problem.mesh
    destinations = tuple(r.destination for r in problem.requests)
    initial: State = tuple(r.source for r in problem.requests)
    if any(s == d for s, d in zip(initial, destinations)):
        raise ValueError("livelock search requires no trivial requests")

    on_path: Dict[State, int] = {initial: 0}
    finished = set()
    path_moves: List[Moves] = []
    stack: List[Tuple[State, Iterator[Tuple[State, Moves]]]] = [
        (
            initial,
            greedy_successors(
                mesh, destinations, initial, max_successors=max_successors
            ),
        )
    ]
    expanded = 1

    while stack:
        state, successors = stack[-1]
        advanced = False
        for next_state, moves in successors:
            if next_state in on_path:
                path_moves.append(moves)
                return GreedyLivelock(
                    problem=problem,
                    moves_per_step=tuple(path_moves),
                    loop_start=on_path[next_state],
                )
            if next_state in finished:
                continue
            if expanded >= max_states:
                continue
            expanded += 1
            on_path[next_state] = len(path_moves) + 1
            path_moves.append(moves)
            stack.append(
                (
                    next_state,
                    greedy_successors(
                        mesh,
                        destinations,
                        next_state,
                        max_successors=max_successors,
                    ),
                )
            )
            advanced = True
            break
        if not advanced:
            stack.pop()
            finished.add(state)
            del on_path[state]
            if path_moves:
                path_moves.pop()
    return None
