"""Experiment harness: runners, statistics, fits, tables, livelock tools."""

from repro.analysis.checkpoint import (
    SweepCheckpoint,
    point_from_manifest,
    spec_key,
)
from repro.analysis.livelock import (
    DetectedCycle,
    GreedyLivelock,
    detect_cycle,
    find_greedy_cycle,
    greedy_successors,
)
from repro.analysis.regression import (
    PowerLawFit,
    TwoFactorFit,
    fit_power_law,
    fit_two_factor,
)
from repro.analysis.reporting import (
    ExperimentBlock,
    build_report,
    load_results,
    parse_block,
    write_report,
)
from repro.analysis.runner import (
    CaseSpec,
    ExperimentPoint,
    ParallelExecutor,
    SweepResult,
    aggregate_telemetry,
    compare_policies,
    run_case,
    sweep,
)
from repro.analysis.stats import (
    Summary,
    confidence_interval,
    geometric_mean,
    ratio_summary,
    summarize,
)
from repro.analysis.worst_case import (
    WorstCaseResult,
    search_with_restarts,
    search_worst_permutation,
)
from repro.analysis.tables import (
    format_cell,
    format_markdown_table,
    format_table,
)

__all__ = [
    "CaseSpec",
    "DetectedCycle",
    "ExperimentBlock",
    "ExperimentPoint",
    "GreedyLivelock",
    "ParallelExecutor",
    "PowerLawFit",
    "Summary",
    "SweepCheckpoint",
    "SweepResult",
    "TwoFactorFit",
    "WorstCaseResult",
    "aggregate_telemetry",
    "build_report",
    "compare_policies",
    "confidence_interval",
    "detect_cycle",
    "find_greedy_cycle",
    "fit_power_law",
    "fit_two_factor",
    "format_cell",
    "format_markdown_table",
    "format_table",
    "geometric_mean",
    "greedy_successors",
    "load_results",
    "parse_block",
    "point_from_manifest",
    "ratio_summary",
    "spec_key",
    "run_case",
    "search_with_restarts",
    "search_worst_permutation",
    "summarize",
    "sweep",
    "write_report",
]
