"""Summary statistics for experiment results.

Pure-Python implementations (the library core has no hard numpy
dependency); exact enough for the reproduction's tables, which report
means, spreads, and normal-approximation confidence intervals over
seed-replicated runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.2f} std={self.std:.2f} "
            f"min={self.minimum:.2f} med={self.median:.2f} "
            f"max={self.maximum:.2f}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary`; raises on empty input."""
    if not values:
        raise ValueError("cannot summarize an empty sample")
    ordered = sorted(float(v) for v in values)
    n = len(ordered)
    mean = sum(ordered) / n
    variance = sum((v - mean) ** 2 for v in ordered) / n
    mid = n // 2
    median = ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2
    return Summary(
        count=n,
        mean=mean,
        std=math.sqrt(variance),
        minimum=ordered[0],
        median=median,
        maximum=ordered[-1],
    )


def confidence_interval(
    values: Sequence[float], z: float = 1.96
) -> Tuple[float, float]:
    """Normal-approximation CI for the mean (95% by default)."""
    summary = summarize(values)
    if summary.count < 2:
        return (summary.mean, summary.mean)
    half = z * summary.std / math.sqrt(summary.count - 1)
    return (summary.mean - half, summary.mean + half)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (all values must be positive)."""
    if not values:
        raise ValueError("cannot average an empty sample")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def ratio_summary(
    numerators: Sequence[float], denominators: Sequence[float]
) -> Summary:
    """Summary of element-wise ratios (e.g., measured time / bound)."""
    if len(numerators) != len(denominators):
        raise ValueError("ratio inputs must have equal length")
    if any(d == 0 for d in denominators):
        raise ValueError("zero denominator in ratio summary")
    return summarize([n / d for n, d in zip(numerators, denominators)])
