"""Plain-text tables for experiment reports.

The benchmarks print their results as aligned ASCII tables (captured
into ``bench_output.txt`` and EXPERIMENTS.md); this module is the one
formatter they all share, so the reproduction's tables have a uniform
look.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_cell(value: object) -> str:
    """Render one cell: floats get 3 significant decimals, rest ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table with a rule under the header."""
    rendered: List[List[str]] = [[format_cell(h) for h in headers]]
    for row in rows:
        cells = [format_cell(value) for value in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(headers)}"
            )
        rendered.append(cells)
    widths = [
        max(len(row[col]) for row in rendered)
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        cell.ljust(width) for cell, width in zip(rendered[0], widths)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered[1:]:
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render a GitHub-flavored markdown table (for EXPERIMENTS.md)."""
    lines = [
        "| " + " | ".join(format_cell(h) for h in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        cells = [format_cell(value) for value in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(headers)}"
            )
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
