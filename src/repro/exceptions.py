"""Exception hierarchy for the hot-potato routing library.

All library errors derive from :class:`ReproError` so callers can catch
everything from this package with a single ``except`` clause while still
being able to distinguish configuration mistakes from protocol violations
detected at simulation time.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A component was constructed with invalid parameters.

    Examples: a mesh with non-positive side length, a routing problem
    whose packets originate outside the mesh, or a potential function
    attached to the wrong dimension.
    """


class InvalidProblemError(ConfigurationError):
    """A routing problem violates the many-to-many model of Section 2.

    The model requires every origin and destination to be a mesh node
    and no node to originate more packets than its out-degree.
    """


class ProtocolViolationError(ReproError):
    """A routing policy broke the rules of the synchronous model.

    Base class for hot-potato, capacity, and assignment violations.
    The engine raises these the moment a policy's output is invalid, so
    a buggy policy cannot silently corrupt a simulation.
    """


class HotPotatoViolationError(ProtocolViolationError):
    """A policy tried to hold a packet at an intermediate node.

    In hot-potato routing every packet that has not reached its
    destination must leave on the step following its arrival.
    """


class ArcAssignmentError(ProtocolViolationError):
    """A policy produced an invalid packet-to-arc assignment.

    Raised when two packets were assigned the same outgoing arc, when a
    packet was assigned an arc that does not leave its current node, or
    when a packet was left without an arc.
    """


class GreedinessViolationError(ProtocolViolationError):
    """A policy declared greedy (Definition 6) deflected a packet
    although one of its good arcs was not used by an advancing packet.
    """


class RestrictedPriorityViolationError(ProtocolViolationError):
    """A policy declared to *prefer restricted packets* (Definition 18)
    allowed a non-restricted packet to deflect a restricted one.
    """


class CapacityExceededError(ProtocolViolationError):
    """More packets were placed in a node than its degree allows."""


class LivelockSuspectedError(ReproError):
    """A run exceeded its step limit without delivering all packets.

    This does not *prove* a livelock; use
    :mod:`repro.analysis.livelock` to detect an actual state cycle.
    """


class TraceError(ReproError):
    """A recorded trace is inconsistent or cannot be replayed."""
