"""Greedy hot-potato routing on d-dimensional meshes.

A production-grade reproduction of

    A. Ben-Dor, S. Halevi, A. Schuster,
    "Potential Function Analysis of Greedy Hot-Potato Routing",
    13th ACM PODC, 1994 (journal version: Computing Systems, 1998).

The library provides:

* :mod:`repro.mesh` — the d-dimensional mesh/torus substrate, the
  2-neighbor relation, and the Claim 13 isoperimetric machinery;
* :mod:`repro.core` — the synchronous hot-potato engine with protocol
  validation, plus a buffered engine for structured baselines;
* :mod:`repro.algorithms` — the paper's algorithm classes and the
  related-work baselines;
* :mod:`repro.potential` — the Section 4.2 potential function,
  Property 8, surface arcs, every closed-form bound, and run-level
  verification of the full analysis chain behind Theorem 20;
* :mod:`repro.workloads` — batch generators (random, permutations,
  hot spots, adversarial, parity splitting);
* :mod:`repro.analysis` — sweeps, statistics, power-law fits, and the
  livelock searcher;
* :mod:`repro.viz` — text-mode renderings.

Quickstart::

    from repro import (Mesh, RestrictedPriorityPolicy, route,
                       random_many_to_many, theorem20_bound)

    mesh = Mesh(dimension=2, side=16)
    problem = random_many_to_many(mesh, k=64, seed=1)
    result = route(problem, RestrictedPriorityPolicy())
    assert result.total_steps <= theorem20_bound(mesh.side, problem.k)
"""

from repro.algorithms import (
    BlockingGreedyPolicy,
    ClosestFirstPolicy,
    DestinationOrderPolicy,
    DimensionOrderPolicy,
    FewestGoodDirectionsPolicy,
    FixedPriorityPolicy,
    GreedyMatchingPolicy,
    PlainGreedyPolicy,
    RandomizedGreedyPolicy,
    RestrictedPriorityPolicy,
    SchedulePolicy,
    available_policies,
    livelock_instance,
    make_policy,
    register_policy,
)
from repro.core import (
    BufferedEngine,
    HotPotatoEngine,
    Packet,
    Request,
    RestrictedType,
    RoutingPolicy,
    RoutingProblem,
    RunResult,
    route,
)
from repro.exceptions import (
    ArcAssignmentError,
    CapacityExceededError,
    ConfigurationError,
    GreedinessViolationError,
    HotPotatoViolationError,
    InvalidProblemError,
    LivelockSuspectedError,
    ProtocolViolationError,
    ReproError,
    RestrictedPriorityViolationError,
    TraceError,
)
from repro.mesh import Direction, Hypercube, Mesh, Torus
from repro.potential import (
    DistancePotential,
    RestrictedPotential,
    section5_bound,
    theorem17_bound,
    theorem20_bound,
    verify_restricted_run,
)
from repro.workloads import (
    random_many_to_many,
    random_permutation,
    single_target,
    transpose,
)

__version__ = "1.0.0"

__all__ = [
    "ArcAssignmentError",
    "BlockingGreedyPolicy",
    "BufferedEngine",
    "CapacityExceededError",
    "ClosestFirstPolicy",
    "ConfigurationError",
    "DestinationOrderPolicy",
    "DimensionOrderPolicy",
    "Direction",
    "DistancePotential",
    "FewestGoodDirectionsPolicy",
    "FixedPriorityPolicy",
    "GreedinessViolationError",
    "GreedyMatchingPolicy",
    "HotPotatoEngine",
    "HotPotatoViolationError",
    "Hypercube",
    "InvalidProblemError",
    "LivelockSuspectedError",
    "Mesh",
    "Packet",
    "PlainGreedyPolicy",
    "ProtocolViolationError",
    "RandomizedGreedyPolicy",
    "ReproError",
    "Request",
    "RestrictedPotential",
    "RestrictedPriorityPolicy",
    "RestrictedPriorityViolationError",
    "RestrictedType",
    "RoutingPolicy",
    "RoutingProblem",
    "RunResult",
    "SchedulePolicy",
    "Torus",
    "TraceError",
    "available_policies",
    "livelock_instance",
    "make_policy",
    "random_many_to_many",
    "random_permutation",
    "register_policy",
    "route",
    "section5_bound",
    "single_target",
    "theorem17_bound",
    "theorem20_bound",
    "transpose",
    "verify_restricted_run",
]
