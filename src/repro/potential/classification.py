"""Good and bad nodes (Definition 9).

A node is *bad* at a step when it contains more than ``d`` packets,
otherwise *good*.  ``B(t)`` is the number of packets in bad nodes and
``G(t)`` the number in good nodes.  Property 8 says good nodes lose a
potential unit per packet while bad nodes lose one per *missing*
packet; the tension between the two is resolved by the surface-arc
argument (Lemma 12, :mod:`repro.potential.surface`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set

from repro.core.metrics import StepRecord
from repro.types import Node


@dataclass(frozen=True)
class NodeClassification:
    """The good/bad split of one step's occupied nodes."""

    step: int
    loads: Dict[Node, int]
    bad_nodes: Set[Node]

    @property
    def b(self) -> int:
        """``B(t)``: packets in bad nodes."""
        return sum(self.loads[node] for node in self.bad_nodes)

    @property
    def g(self) -> int:
        """``G(t)``: packets in good nodes."""
        return sum(
            load
            for node, load in self.loads.items()
            if node not in self.bad_nodes
        )

    @property
    def total(self) -> int:
        """``L(t) = B(t) + G(t)``: packets in flight."""
        return sum(self.loads.values())


def classify_nodes(record: StepRecord, dimension: int) -> NodeClassification:
    """Compute the Definition 9 classification for one step record."""
    loads: Dict[Node, int] = {}
    for info in record.infos.values():
        loads[info.node] = loads.get(info.node, 0) + 1
    bad = {node for node, load in loads.items() if load > dimension}
    return NodeClassification(step=record.step, loads=loads, bad_nodes=bad)


def node_loads(record: StepRecord) -> Dict[Node, int]:
    """Per-node packet counts of one step."""
    loads: Dict[Node, int] = {}
    for info in record.infos.values():
        loads[info.node] = loads.get(info.node, 0) + 1
    return loads
