"""Surface arcs of the bad-node volume (Definition 11, Lemma 14).

An arc out of a bad node ``S`` is a *surface arc* when the 2-neighbor
of ``S`` in that direction is a good node or does not exist (including
directions pointing straight out of the mesh).  ``F(t)`` counts them.

Geometrically: group the bad nodes by their 2-neighbor equivalence
class and map each class onto its own ``(n/2)^d`` mesh (class
coordinates); within a class, bad nodes form a volume of unit cubes
whose *surface* (in the Claim 13 sense) equals the class's surface-arc
count.  This module computes ``F(t)`` both ways — directly from
Definition 11 and via the class volumes — and the tests assert the two
agree, tying the routing-level quantity to the isoperimetric machinery.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.core.metrics import StepRecord
from repro.mesh.geometry import surface_size
from repro.mesh.topology import Mesh
from repro.mesh.two_neighbors import (
    class_coordinates,
    equivalence_class_label,
    two_neighbor,
)
from repro.potential.classification import classify_nodes
from repro.types import Node


def surface_arcs(mesh: Mesh, bad_nodes: Set[Node]) -> List[Tuple[Node, object]]:
    """Enumerate the surface arcs of a bad-node set (Definition 11).

    Returns ``(node, direction)`` pairs: one per direction of a bad
    node whose 2-neighbor in that direction is good or missing.
    """
    result: List[Tuple[Node, object]] = []
    for node in bad_nodes:
        for direction in mesh.directions:
            neighbor2 = two_neighbor(mesh, node, direction)
            if neighbor2 is None or neighbor2 not in bad_nodes:
                result.append((node, direction))
    return result


def count_surface_arcs(mesh: Mesh, bad_nodes: Set[Node]) -> int:
    """``F(t)`` for a given bad-node set."""
    return len(surface_arcs(mesh, bad_nodes))


def f_of_t(mesh: Mesh, record: StepRecord) -> int:
    """``F(t)`` of a step record: surface arcs of its bad nodes."""
    classification = classify_nodes(record, mesh.dimension)
    return count_surface_arcs(mesh, classification.bad_nodes)


def class_volumes(bad_nodes: Iterable[Node]) -> Dict[Tuple[int, ...], Set[Node]]:
    """Bad nodes per 2-neighbor equivalence class, in class coordinates.

    Within a class, 2-neighbors become ordinary lattice neighbors, so
    each value is a unit-cube volume in the Claim 13 sense.
    """
    volumes: Dict[Tuple[int, ...], Set[Node]] = {}
    for node in bad_nodes:
        label = equivalence_class_label(node)
        volumes.setdefault(label, set()).add(class_coordinates(node))
    return volumes


def count_surface_arcs_via_volumes(bad_nodes: Set[Node]) -> int:
    """``F(t)`` computed as the total surface of the class volumes.

    Equals :func:`count_surface_arcs` (the geometric interpretation of
    Section 3.2); the equality is asserted by tests and keeps the
    Definition 11 bookkeeping honest.
    """
    return sum(
        surface_size(volume) for volume in class_volumes(bad_nodes).values()
    )


def lemma_14_lower_bound(b: int, dimension: int) -> float:
    """Lemma 14: with ``B(t)`` packets in bad nodes, the number of
    surface arcs is at least ``(2d)^(1/d) * B(t)^((d-1)/d)``."""
    if b < 0:
        raise ValueError(f"B(t) must be >= 0, got {b}")
    if b == 0:
        return 0.0
    d = dimension
    return (2 * d) ** (1 / d) * b ** ((d - 1) / d)


def check_lemma_14(mesh: Mesh, record: StepRecord) -> Tuple[int, float, bool]:
    """Evaluate Lemma 14 on one step: ``(F(t), bound, holds)``."""
    classification = classify_nodes(record, mesh.dimension)
    f = count_surface_arcs(mesh, classification.bad_nodes)
    bound = lemma_14_lower_bound(classification.b, mesh.dimension)
    return (f, bound, f >= bound - 1e-9)
