"""Potential-function trackers.

Section 3 of the paper analyzes a greedy algorithm through a potential
``phi_p(t)`` per packet with ``0 <= phi_p(t) <= M`` and ``phi_p = 0``
only at the destination, summed into the global ``Phi(t)``.  A
:class:`PotentialTracker` follows a run as an engine observer and
records, for every step:

* the global potential ``Phi(t)`` at every time ``t``;
* per-node drops ``(load, delta_phi)`` — the inputs to Property 8;

so the lemma-by-lemma verification in
:mod:`repro.potential.verification` can audit a finished run.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List

from repro.core.events import RunObserver
from repro.core.metrics import StepMetrics, StepRecord
from repro.types import Node, PacketId


@dataclass(frozen=True)
class NodeDrop:
    """Potential accounting of one node in one step (Definition 7).

    ``load`` is the number of packets routed at the node this step
    (the paper's ℓ) and ``drop`` is the total potential those packets
    lost during the step (the paper's ΔΦ_S).
    """

    step: int
    node: Node
    load: int
    drop: float


class PotentialTracker(RunObserver, abc.ABC):
    """Base observer computing a per-packet potential along a run.

    Subclasses implement :meth:`initial_phi` (potential of a packet at
    time 0) and :meth:`update` (new potentials after a step record).
    The base class maintains the ``Phi(t)`` history and the per-node
    drop log.
    """

    #: A-priori per-packet bound M; subclasses set it in on_run_start.
    M: float = 0.0

    def __init__(self) -> None:
        self.phi: Dict[PacketId, float] = {}
        self.phi_history: List[float] = []
        self.node_drops: List[List[NodeDrop]] = []
        self._engine = None

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def initial_phi(self, engine) -> Dict[PacketId, float]:
        """Per-packet potential at time 0 (delivered packets get 0)."""

    @abc.abstractmethod
    def update(self, record: StepRecord) -> Dict[PacketId, float]:
        """Per-packet potential after the step described by ``record``.

        Must return a value for every packet in ``record.infos`` (0 for
        those delivered by the step); packets absent from the record
        keep their previous value.
        """

    # ------------------------------------------------------------------
    # Observer plumbing
    # ------------------------------------------------------------------

    def on_run_start(self, engine) -> None:
        self._engine = engine
        self.phi = self.initial_phi(engine)
        self.phi_history = [sum(self.phi.values())]
        self.node_drops = []

    def on_step(self, record: StepRecord, metrics: StepMetrics) -> None:
        new_phi = self.update(record)
        drops: List[NodeDrop] = []
        for node, infos in record.node_groups().items():
            before = sum(self.phi[i.packet_id] for i in infos)
            after = sum(new_phi[i.packet_id] for i in infos)
            drops.append(
                NodeDrop(
                    step=record.step,
                    node=node,
                    load=len(infos),
                    drop=before - after,
                )
            )
        self.node_drops.append(drops)
        self.phi.update(new_phi)
        self.phi_history.append(sum(self.phi.values()))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def total(self) -> float:
        """Current global potential ``Phi``."""
        return self.phi_history[-1] if self.phi_history else 0.0

    @property
    def initial_total(self) -> float:
        """``Phi(0)``."""
        return self.phi_history[0] if self.phi_history else 0.0

    def phi_at(self, time: int) -> float:
        """``Phi(t)`` for ``0 <= t <= num steps``."""
        return self.phi_history[time]

    def is_monotone_nonincreasing(self, tolerance: float = 1e-9) -> bool:
        """True when ``Phi`` never increased along the run
        (the consequence of Corollary 10)."""
        return all(
            later <= earlier + tolerance
            for earlier, later in zip(self.phi_history, self.phi_history[1:])
        )
