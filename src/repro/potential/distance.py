"""The pure-distance potential (diagnostic baseline).

``phi_p(t) = dist_p(t)`` — the distance of packet ``p`` to its
destination.  This is the naive potential: it drops by one for every
advancing packet and *rises* by one for every deflected packet, so it
does **not** satisfy Property 8 in general (a node where deflections
outnumber the slack gains distance-potential).  It is tracked anyway
because:

* its history is exactly the "total remaining distance" curve the
  congestion plots use;
* contrasting it with the Section 4.2 potential (which buys off
  deflections with carried potential) in benchmark E3 shows *why* the
  extra ``C_p`` term is needed.
"""

from __future__ import annotations

from typing import Dict

from repro.core.metrics import StepRecord
from repro.potential.base import PotentialTracker
from repro.types import PacketId


class DistancePotential(PotentialTracker):
    """Tracks ``Phi(t) = sum of distances to destinations``."""

    def initial_phi(self, engine) -> Dict[PacketId, float]:
        self.M = float(engine.mesh.diameter)
        mesh = engine.mesh
        return {
            packet.id: float(mesh.distance(packet.location, packet.destination))
            for packet in engine.packets
        }

    def update(self, record: StepRecord) -> Dict[PacketId, float]:
        return {
            packet_id: float(info.distance_after)
            for packet_id, info in record.infos.items()
        }
