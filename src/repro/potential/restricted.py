"""The Section 4.2 potential function for the two-dimensional mesh.

For algorithms that prefer restricted packets (Definition 18), the
paper defines ``phi_p(t) = dist_p(t) + C_p(t)`` where ``dist_p`` is the
distance to the destination and ``C_p`` is *additional potential*
updated by four rules:

1. initially ``C_p(0) = 2n``;
2. if after step ``t`` the packet is not restricted, or is restricted
   of type B, then ``C_p(t) = 2n``;
3. if after step ``t`` the packet is restricted of type A:
   (a) if it deflected no type-A packet this step,
   ``C_p(t) = C_p(t-1) - 2``;
   (b) if it deflected the type-A packet ``q`` (there is at most one),
   the two packets *switch*: ``C_p(t) = C_q(t-1) - 2``;
4. once delivered, ``C_p = 0``.

With ``M = 4n``, this potential satisfies Property 8 for every
algorithm in the class (Lemma 19), which plugged into Theorem 17 gives
the headline ``8·sqrt(2)·n·sqrt(k)`` bound (Theorem 20).

The tracker below implements the rules verbatim and can additionally
*assert the structural facts* the paper derives (``strict`` mode):

* at most one type-A packet is deflected per node per step per
  advancing packet, and its deflector was type B (Section 4.1
  properties 1-2);
* the carried potential of a type-A packet stays in ``[2, 2n]`` (the
  deflection chain of a type-A packet moves along a fixed direction
  and therefore dies within ``n - 1`` steps);
* ``0 <= phi_p <= M``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.metrics import PacketStepInfo, StepRecord
from repro.core.packet import RestrictedType
from repro.exceptions import ConfigurationError
from repro.mesh.topology import Mesh
from repro.potential.base import PotentialTracker
from repro.types import PacketId


class RestrictedPotential(PotentialTracker):
    """Tracks the paper's ``phi = dist + C`` potential along a run.

    Args:
        strict: assert the structural invariants listed in the module
            docstring.  Enable for algorithms that genuinely prefer
            restricted packets (the invariants are theorems only for
            that class); disable to *observe* the potential under
            out-of-class algorithms, where it may legitimately
            increase.

    Attach as an engine observer::

        potential = RestrictedPotential()
        engine = HotPotatoEngine(problem, policy, observers=[potential],
                                 record_steps=True)
    """

    def __init__(self, strict: bool = True) -> None:
        super().__init__()
        self.strict = strict
        self.C: Dict[PacketId, float] = {}
        self._mesh: Optional[Mesh] = None
        self._2n: float = 0.0
        #: Number of times the switch rule 3(b) fired (for tests).
        self.switch_count: int = 0

    # ------------------------------------------------------------------
    # PotentialTracker interface
    # ------------------------------------------------------------------

    def _check_mesh(self, mesh: Mesh) -> None:
        """Reject topologies the potential is not defined for.

        Subclasses (e.g. the d-dimensional lift testbed) may relax
        this; the published Section 4.2 function is 2-D-mesh only.
        """
        if mesh.dimension != 2 or mesh.kind != "mesh":
            raise ConfigurationError(
                "the Section 4.2 potential is defined for the "
                f"two-dimensional mesh, got {mesh.kind} of dimension "
                f"{mesh.dimension}"
            )

    def initial_phi(self, engine) -> Dict[PacketId, float]:
        mesh = engine.mesh
        self._check_mesh(mesh)
        self._mesh = mesh
        self._2n = float(2 * mesh.side)
        self.M = float(4 * mesh.side)
        self.switch_count = 0
        phi: Dict[PacketId, float] = {}
        for packet in engine.packets:
            if packet.location == packet.destination:
                self.C[packet.id] = 0.0
                phi[packet.id] = 0.0
            else:
                self.C[packet.id] = self._2n
                phi[packet.id] = (
                    mesh.distance(packet.location, packet.destination)
                    + self._2n
                )
        return phi

    def update(self, record: StepRecord) -> Dict[PacketId, float]:
        mesh = self._mesh
        assert mesh is not None, "tracker used before run start"
        new_c: Dict[PacketId, float] = {}
        new_phi: Dict[PacketId, float] = {}

        # Locate, per node, the deflected type-A packet reachable
        # through each direction (its unique good direction).  An
        # advancing packet using that direction "deflects" it in the
        # sense of Definition 5, triggering the switch rule 3(b).
        deflected_type_a = self._deflected_type_a_by_arc(record)

        for packet_id, info in record.infos.items():
            if info.next_node == info.destination:
                new_c[packet_id] = 0.0
                new_phi[packet_id] = 0.0
                continue

            if self._is_type_a_after(info):
                victim = None
                if info.advanced:
                    victim = deflected_type_a.get(
                        (info.node, info.assigned_direction)
                    )
                if victim is not None and victim != packet_id:
                    # Rule 3(b): switch with the deflected type-A packet.
                    new_c[packet_id] = self.C[victim] - 2
                    self.switch_count += 1
                    if self.strict:
                        self._assert_deflector_was_type_b(info)
                else:
                    # Rule 3(a): keep dropping own additional potential.
                    new_c[packet_id] = self.C[packet_id] - 2
            else:
                # Rule 2: non-restricted or type-B packets reset to 2n.
                new_c[packet_id] = self._2n

            phi_value = info.distance_after + new_c[packet_id]
            new_phi[packet_id] = phi_value
            if self.strict:
                self._assert_bounds(record.step, info, new_c[packet_id], phi_value)

        self.C.update(new_c)
        return new_phi

    # ------------------------------------------------------------------
    # Rule plumbing
    # ------------------------------------------------------------------

    def _is_type_a_after(self, info: PacketStepInfo) -> bool:
        """Type A *after* the step: advanced this step, was restricted
        at its start, and is still restricted at the new node."""
        if not info.advanced or not info.restricted:
            return False
        mesh = self._mesh
        assert mesh is not None
        return mesh.is_restricted(info.next_node, info.destination)

    def _deflected_type_a_by_arc(
        self, record: StepRecord
    ) -> Dict[tuple, PacketId]:
        """Map ``(node, direction)`` to the deflected type-A packet whose
        unique good direction that is.

        The paper shows at most one type-A packet per node can want any
        one direction (two would have had to enter the node through the
        same arc); ``strict`` mode asserts it.
        """
        mesh = self._mesh
        assert mesh is not None
        result: Dict[tuple, PacketId] = {}
        for packet_id, info in record.infos.items():
            if info.advanced:
                continue
            if info.restricted_type is not RestrictedType.TYPE_A:
                continue
            (good,) = mesh.good_directions(info.node, info.destination)
            key = (info.node, good)
            if key in result:
                if self.strict:
                    raise AssertionError(
                        f"step {record.step}: two type-A packets "
                        f"({result[key]} and {packet_id}) share good "
                        f"direction {good} at {info.node} — impossible "
                        f"per Section 4.1"
                    )
                continue
            result[key] = packet_id
        return result

    def _assert_deflector_was_type_b(self, info: PacketStepInfo) -> None:
        """Property 2 of Section 4.1: a packet deflecting a type-A
        packet must be restricted of type B."""
        if info.restricted_type is not RestrictedType.TYPE_B:
            raise AssertionError(
                f"packet {info.packet_id} deflected a type-A packet while "
                f"being {info.restricted_type.value}, violating the "
                f"Section 4.1 property (expected type B)"
            )

    def _assert_bounds(
        self,
        step: int,
        info: PacketStepInfo,
        c_value: float,
        phi_value: float,
    ) -> None:
        if not 2 <= c_value <= self._2n:
            raise AssertionError(
                f"step {step}: packet {info.packet_id} carries additional "
                f"potential {c_value} outside [2, {self._2n}] — the "
                f"type-A chain invariant failed"
            )
        if not 0 <= phi_value <= self.M:
            raise AssertionError(
                f"step {step}: packet {info.packet_id} has potential "
                f"{phi_value} outside [0, {self.M}]"
            )

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def additional_potential(self, packet_id: PacketId) -> float:
        """Current ``C_p`` of a packet."""
        return self.C[packet_id]
