"""Numerical reproduction of the Theorem 17 proof machinery.

Two computational counterparts of the proof's internal steps:

* :func:`decay_steps` iterates the Lemma 15 recurrence
  ``Phi(t+2) <= Phi(t) - (2d)^(1/d) * (Phi(t) / 2M)^((d-1)/d)``
  literally, counting steps until the potential hits zero.  This is
  the *exact* consequence of the per-step guarantee, of which the
  closed form ``(4d)^(1-1/d) * k^(1/d) * M`` is the analytic
  upper estimate (via the geometric phase decomposition); the tests
  confirm ``decay_steps <= theorem17_bound`` on a grid.

* :func:`claim16_b0` solves equation (6),
  ``L - B = (2d)^(1/d) * B^((d-1)/d)``, for the balance point ``B_0``
  by bisection, so Claim 16 (``B_0 >= L/2``) can be checked
  numerically for arbitrary ``L`` and ``d`` — including the small-``L``
  regime the paper dispatches with a "tedious case analysis".
"""

from __future__ import annotations

import math


def decay_steps(phi0: float, M: float, dimension: int) -> int:
    """Steps for the Lemma 15 recurrence to drive the potential to 0.

    Iterates ``Phi <- Phi - (2d)^(1/d) * (Phi/2M)^((d-1)/d)`` in
    two-step units, exactly as Lemma 15 guarantees, until ``Phi`` would
    drop below the smallest meaningful value (an in-flight packet
    carries at least one potential unit).

    Raises:
        ValueError: on non-positive ``M`` or negative ``phi0``.
    """
    if M <= 0:
        raise ValueError(f"M must be positive, got {M}")
    if phi0 < 0:
        raise ValueError(f"phi0 must be non-negative, got {phi0}")
    d = dimension
    if d < 1:
        raise ValueError(f"dimension must be >= 1, got {d}")
    phi = float(phi0)
    steps = 0
    while phi >= 1.0:
        drop = (2 * d) ** (1 / d) * (phi / (2 * M)) ** ((d - 1) / d)
        if drop <= 0:
            raise ValueError("non-positive guaranteed drop; bad parameters")
        phi -= drop
        steps += 2
    return steps


def equation6_gap(b: float, L: float, dimension: int) -> float:
    """Left minus right side of equation (6) at ``B = b``:
    ``(L - B) - (2d)^(1/d) * B^((d-1)/d)``.

    Positive while ``B`` is below the balance point, negative above it
    (the left side decreases and the right side increases in ``B``).
    """
    if b < 0 or L < 0:
        raise ValueError("B and L must be non-negative")
    d = dimension
    return (L - b) - (2 * d) ** (1 / d) * b ** ((d - 1) / d)


def claim16_b0(L: float, dimension: int, tolerance: float = 1e-9) -> float:
    """Solve equation (6) for ``B_0`` by bisection on ``[0, L]``.

    ``B_0`` is where the two lower bounds on the two-step potential
    drop — ``L - B`` from good nodes and the surface term from bad
    nodes — balance; the combined guarantee is minimized there.
    """
    if L < 0:
        raise ValueError(f"L must be non-negative, got {L}")
    if L == 0:
        return 0.0
    low, high = 0.0, float(L)
    # gap(0) = L > 0, gap(L) = -(2d)^(1/d) L^((d-1)/d) < 0.
    while high - low > tolerance:
        mid = (low + high) / 2
        if equation6_gap(mid, L, dimension) > 0:
            low = mid
        else:
            high = mid
    return (low + high) / 2


def minimum_step_loss(L: int, dimension: int) -> float:
    """Minimum total Property-8 loss of one step with ``L`` packets.

    Minimizes ``sum(cost(l_i))`` over all ways to split ``L`` packets
    into node loads ``1 <= l_i <= 2d``, where ``cost(l) = l`` for good
    nodes (``l <= d``) and ``2d - l`` for bad ones — a tiny unbounded
    knapsack.  Zero exactly when ``L`` is a sum of full ``2d`` loads.
    """
    if L < 0:
        raise ValueError(f"L must be non-negative, got {L}")
    d = dimension
    best = [0.0] + [math.inf] * L
    for total in range(1, L + 1):
        for load in range(1, min(2 * d, total) + 1):
            cost = load if load <= d else 2 * d - load
            best[total] = min(best[total], best[total - load] + cost)
    return best[L]


def is_feasible_bad_count(B: int, dimension: int) -> bool:
    """Can exactly ``B`` packets sit in bad nodes?

    A bad node holds between ``d + 1`` and ``2d`` packets, so ``B`` is
    feasible iff ``B = 0`` or some node count ``nb`` satisfies
    ``(d+1) * nb <= B <= 2d * nb``.  This discreteness is what the
    paper's small-load case analysis leans on: e.g. ``B = 1, ..., d``
    is impossible.
    """
    if B == 0:
        return True
    d = dimension
    nb = 1
    while (d + 1) * nb <= B:
        if B <= 2 * d * nb:
            return True
        nb += 1
    return False


def verify_claim16_case2(L: int, dimension: int) -> list:
    """Reconstruct the paper's omitted small-load case analysis.

    For ``L < 4d`` the continuous balance point of equation (6) drops
    below ``L/2``, so Claim 16 cannot be proven by the case-1 algebra;
    the paper waves at "an easy (though tedious) case analysis".  The
    reconstruction: for every *feasible* bad-packet count ``B``
    (:func:`is_feasible_bad_count`), the guaranteed two-step potential
    drop is at least

    ``max( (2d)^(1/d) * B^((d-1)/d),                 # Lemmas 12+14
           (L - B) + min_{L'} [ 2*(L - L') + minimum_step_loss(L') ] )``

    where the second line is Corollary 10 at step ``t`` plus the
    *second* step's Property-8 loss: ``L'`` packets survive to step
    ``t + 1`` and each of the ``L - L'`` delivered packets dropped its
    remaining potential ``dist + C >= 3``, i.e. at least 2 beyond the
    unit already counted.  The claim is that this exceeds the
    equation-(7) target ``(2d)^(1/d) * (L/2)^((d-1)/d)``.

    Returns the list of ``(B, guaranteed, target)`` violations (empty
    = the case analysis holds for this ``L``).
    """
    if L < 0:
        raise ValueError(f"L must be non-negative, got {L}")
    d = dimension
    target = guaranteed_two_step_drop(float(L), d)
    violations = []
    second_step = min(
        2 * (L - survivors) + minimum_step_loss(survivors, d)
        for survivors in range(L + 1)
    )
    for B in range(0, L + 1):
        if not is_feasible_bad_count(B, d):
            continue
        surface_term = (2 * d) ** (1 / d) * B ** ((d - 1) / d)
        good_term = (L - B) + second_step
        guaranteed = max(surface_term, good_term)
        if guaranteed < target - 1e-9:
            violations.append((B, guaranteed, target))
    return violations


def guaranteed_two_step_drop(L: float, dimension: int) -> float:
    """The Claim 16 consequence, equation (7):
    ``max(L - B, surface term) >= (2d)^(1/d) * (L/2)^((d-1)/d)``.

    Returns the right-hand side — the per-two-step drop Theorem 17
    plugs into the phase argument.
    """
    if L < 0:
        raise ValueError(f"L must be non-negative, got {L}")
    if L == 0:
        return 0.0
    d = dimension
    return (2 * d) ** (1 / d) * (L / 2) ** ((d - 1) / d)
