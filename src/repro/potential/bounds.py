"""Closed-form running-time bounds from the paper.

Every bound the paper states, as a callable — the benchmarks plot
measured routing times against these reference curves, and the tests
assert the in-class algorithms stay below them.

* Theorem 17 (generic): ``(4d)^(1-1/d) * k^(1/d) * M`` steps for any
  algorithm admitting a Property 8 potential bounded by ``M``.
* Theorem 20 (2-D mesh): ``8 * sqrt(2) * n * sqrt(k)`` for greedy
  algorithms preferring restricted packets (Theorem 17 with ``d = 2``,
  ``M = 4n``).
* Remark after Theorem 20: parity splitting sharpens full loads to
  ``8 n^2`` (one packet per node) and ``16 n^2`` (four per node).
* Section 5 (d-dim mesh): ``4^(d+1-1/d) * d^(1-1/d) * k^(1/d) * n^(d-1)``
  for the generalized class.
"""

from __future__ import annotations

import math


def theorem17_bound(dimension: int, k: int, M: float) -> float:
    """Theorem 17: ``(4d)^(1-1/d) * k^(1/d) * M``.

    The running-time bound for any routing algorithm together with a
    potential function that satisfies Property 8 with per-packet bound
    ``M``.
    """
    if dimension < 1:
        raise ValueError(f"dimension must be >= 1, got {dimension}")
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if M < 0:
        raise ValueError(f"M must be >= 0, got {M}")
    if k == 0:
        return 0.0
    d = dimension
    return (4 * d) ** (1 - 1 / d) * k ** (1 / d) * M


def restricted_potential_M(side: int) -> float:
    """The per-packet bound ``M = 4n`` of the Section 4.2 potential."""
    if side < 2:
        raise ValueError(f"side must be >= 2, got {side}")
    return 4.0 * side


def theorem20_bound(side: int, k: int) -> float:
    """Theorem 20: ``8 * sqrt(2) * n * sqrt(k)`` on the 2-D mesh.

    Upper bound on the routing time of every greedy algorithm that
    prefers restricted packets, for any k-packet problem.  Equals
    :func:`theorem17_bound` with ``d = 2`` and ``M = 4n``.
    """
    if k == 0:
        return 0.0
    return 8 * math.sqrt(2) * side * math.sqrt(k)


def permutation_remark_bound(side: int) -> float:
    """Remark after Theorem 20: full one-per-node loads route in
    ``<= 8 n^2`` steps.

    With ``k = n^2`` (every node the origin of one packet) the problem
    splits by origin parity into two non-interfering problems of
    ``n^2 / 2`` packets each, and ``8*sqrt(2)*n*sqrt(n^2/2) = 8 n^2``.
    """
    return 8.0 * side * side


def four_per_node_remark_bound(side: int) -> float:
    """Remark after Theorem 20: four-per-node loads route in
    ``<= 16 n^2`` steps — within a factor 8 of the trivial lower bound."""
    return 16.0 * side * side


def section5_bound(dimension: int, side: int, k: int) -> float:
    """Section 5: ``4^(d+1-1/d) * d^(1-1/d) * k^(1/d) * n^(d-1)``.

    Upper bound for the d-dimensional class (prefer fewer good
    directions + maximize advancing packets).  For ``d = 2`` this is
    ``32 * sqrt(2) * n * sqrt(k)`` — intentionally looser than
    Theorem 20, whose 2-D-specific potential has better constants.
    """
    if dimension < 2:
        raise ValueError(f"dimension must be >= 2, got {dimension}")
    if k == 0:
        return 0.0
    d = dimension
    return (
        4 ** (d + 1 - 1 / d)
        * d ** (1 - 1 / d)
        * k ** (1 / d)
        * side ** (d - 1)
    )


def trivial_lower_bound(d_max: int) -> int:
    """No algorithm beats the farthest packet's distance."""
    return d_max


def phase_decay_bound(phi0: float, M: float, dimension: int) -> float:
    """The Theorem 17 proof's sharper form
    ``(2d)^((d-1)/d) * phi0^(1/d) * (2M)^((d-1)/d)``.

    Stated in terms of the *measured* initial potential ``phi0``
    instead of the worst case ``phi0 <= k*M``; the potential benchmarks
    report it as the instance-specific bound.
    """
    if phi0 < 0 or M < 0:
        raise ValueError("phi0 and M must be non-negative")
    if phi0 == 0:
        return 0.0
    d = dimension
    return (2 * d) ** ((d - 1) / d) * phi0 ** (1 / d) * (2 * M) ** ((d - 1) / d)
