"""Potential-function analysis machinery (Sections 3-5 of the paper).

Trackers for the Section 4.2 potential ``phi = dist + C`` and the
pure-distance diagnostic, the Definition 9 good/bad classification,
Definition 11 surface arcs, the Claim 13 isoperimetric inequality,
the Property 8 checker, every closed-form bound, and the run-level
verification that audits a live execution against the entire chain of
lemmas behind Theorem 20.
"""

from repro.potential.base import NodeDrop, PotentialTracker
from repro.potential.bounds import (
    four_per_node_remark_bound,
    permutation_remark_bound,
    phase_decay_bound,
    restricted_potential_M,
    section5_bound,
    theorem17_bound,
    theorem20_bound,
    trivial_lower_bound,
)
from repro.potential.classification import (
    NodeClassification,
    classify_nodes,
    node_loads,
)
from repro.potential.ddim import NaiveLiftedPotential, PaidDeflectionPotential
from repro.potential.distance import DistancePotential
from repro.potential.isoperimetric import (
    claim_13_ratio,
    random_blob,
    random_scatter,
)
from repro.potential.property8 import (
    Property8Violation,
    check_property8,
    minimum_margin,
    property8_required_drop,
)
from repro.potential.recurrence import (
    claim16_b0,
    decay_steps,
    guaranteed_two_step_drop,
    is_feasible_bad_count,
    minimum_step_loss,
    verify_claim16_case2,
)
from repro.potential.restricted import RestrictedPotential
from repro.potential.surface import (
    check_lemma_14,
    class_volumes,
    count_surface_arcs,
    count_surface_arcs_via_volumes,
    f_of_t,
    lemma_14_lower_bound,
    surface_arcs,
)
from repro.potential.verification import (
    InequalityViolation,
    VerificationReport,
    verify_restricted_run,
)

__all__ = [
    "DistancePotential",
    "InequalityViolation",
    "NaiveLiftedPotential",
    "NodeClassification",
    "NodeDrop",
    "PotentialTracker",
    "PaidDeflectionPotential",
    "Property8Violation",
    "RestrictedPotential",
    "VerificationReport",
    "check_lemma_14",
    "claim16_b0",
    "check_property8",
    "claim_13_ratio",
    "class_volumes",
    "classify_nodes",
    "count_surface_arcs",
    "count_surface_arcs_via_volumes",
    "decay_steps",
    "f_of_t",
    "four_per_node_remark_bound",
    "guaranteed_two_step_drop",
    "is_feasible_bad_count",
    "lemma_14_lower_bound",
    "minimum_margin",
    "minimum_step_loss",
    "node_loads",
    "permutation_remark_bound",
    "phase_decay_bound",
    "property8_required_drop",
    "random_blob",
    "random_scatter",
    "restricted_potential_M",
    "section5_bound",
    "surface_arcs",
    "theorem17_bound",
    "theorem20_bound",
    "trivial_lower_bound",
    "verify_claim16_case2",
    "verify_restricted_run",
]
