"""Isoperimetric machinery: Claim 13 and its role in Lemma 14.

Claim 13 — any volume ``V`` of d-dimensional unit cubes has surface at
least ``2d * V^((d-1)/d)`` — is proven in :mod:`repro.mesh.geometry`
terms (projections, the Shearer entropy inequality, AM-GM).  Here we
add the routing-side corollary (Lemma 14) and generators of random
volumes used to stress the inequality in tests and benchmark E6.
"""

from __future__ import annotations

import random
from typing import Set

from repro.mesh.geometry import (
    Volume,
    isoperimetric_lower_bound,
    surface_size,
    verify_claim_13,
    verify_projection_product_bound,
    verify_projection_surface_bound,
)
from repro.types import Node


def random_blob(
    dimension: int,
    size: int,
    rng: random.Random,
    spread: float = 0.5,
) -> Volume:
    """Grow a random connected volume of ``size`` unit cubes.

    Starts from the origin and repeatedly attaches a random free face
    of the current volume; ``spread`` biases between breadth (compact
    blobs, near the isoperimetric optimum) and depth (stringy blobs,
    far from it).
    """
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    origin: Node = (0,) * dimension
    volume: Set[Node] = {origin}
    frontier = [origin]
    while len(volume) < size:
        base = (
            frontier[-1]
            if rng.random() > spread
            else frontier[rng.randrange(len(frontier))]
        )
        candidates = []
        for axis in range(dimension):
            for sign in (1, -1):
                cell = list(base)
                cell[axis] += sign
                cell_t = tuple(cell)
                if cell_t not in volume:
                    candidates.append(cell_t)
        if not candidates:
            frontier.remove(base)
            continue
        chosen = rng.choice(candidates)
        volume.add(chosen)
        frontier.append(chosen)
    return volume


def random_scatter(
    dimension: int,
    size: int,
    box: int,
    rng: random.Random,
) -> Volume:
    """A uniformly random (possibly disconnected) volume inside a box.

    Disconnected volumes have *larger* surface, so they probe the easy
    side of Claim 13; the adversarial side is compact blobs.
    """
    if size > box**dimension:
        raise ValueError(
            f"cannot place {size} cells in a box of {box ** dimension}"
        )
    volume: Set[Node] = set()
    while len(volume) < size:
        volume.add(tuple(rng.randrange(box) for _ in range(dimension)))
    return volume


def claim_13_ratio(volume: Volume) -> float:
    """``surface / bound`` — at least 1.0 when Claim 13 holds.

    Exactly 1.0 for perfect cubes (the extremal shape).
    """
    if not volume:
        return float("inf")
    dimension = len(next(iter(volume)))
    bound = isoperimetric_lower_bound(len(volume), dimension)
    return surface_size(volume) / bound


__all__ = [
    "Volume",
    "claim_13_ratio",
    "isoperimetric_lower_bound",
    "random_blob",
    "random_scatter",
    "surface_size",
    "verify_claim_13",
    "verify_projection_product_bound",
    "verify_projection_surface_bound",
]
