"""Property 8: the per-node potential-loss requirement.

For a node holding ``l`` packets at a step, the paper requires the
potential function to lose

* at least ``l`` units when ``l <= d`` (good nodes pay per packet),
* at least ``2d - l`` units when ``l > d`` (bad nodes pay per
  *missing* packet; note the requirement can be negative for
  ``l > 2d``, which cannot occur since node load is capped by the
  degree ``2d``).

This module checks the requirement against the
:class:`~repro.potential.base.NodeDrop` log of a tracked run, node by
node and step by step — turning the hypothesis of Theorem 17 into a
measured, falsifiable statement about an actual execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.potential.base import NodeDrop


def property8_required_drop(load: int, dimension: int) -> int:
    """The minimum potential loss Property 8 demands of a node."""
    if load < 0:
        raise ValueError(f"load must be >= 0, got {load}")
    if load <= dimension:
        return load
    return 2 * dimension - load


@dataclass(frozen=True)
class Property8Violation:
    """One node-step where the potential lost less than required."""

    step: int
    node: tuple
    load: int
    drop: float
    required: float

    def __str__(self) -> str:
        return (
            f"step {self.step}, node {self.node}: load {self.load} "
            f"dropped {self.drop} < required {self.required}"
        )


def check_property8(
    node_drops: Iterable[Sequence[NodeDrop]],
    dimension: int,
    tolerance: float = 1e-9,
) -> List[Property8Violation]:
    """Audit a full run's node-drop log against Property 8.

    Returns all violations (empty list = the property held everywhere,
    i.e. the Theorem 17 hypothesis was satisfied on this run).
    """
    violations: List[Property8Violation] = []
    for step_drops in node_drops:
        for entry in step_drops:
            required = property8_required_drop(entry.load, dimension)
            if entry.drop < required - tolerance:
                violations.append(
                    Property8Violation(
                        step=entry.step,
                        node=entry.node,
                        load=entry.load,
                        drop=entry.drop,
                        required=required,
                    )
                )
    return violations


def minimum_margin(
    node_drops: Iterable[Sequence[NodeDrop]], dimension: int
) -> float:
    """The smallest ``drop - required`` over all node-steps.

    Non-negative exactly when Property 8 holds; the benchmarks report
    it as the tightness of Lemma 19.
    """
    margin = float("inf")
    for step_drops in node_drops:
        for entry in step_drops:
            required = property8_required_drop(entry.load, dimension)
            margin = min(margin, entry.drop - required)
    return margin
