"""Run-level verification of the paper's analysis chain.

Given a routing problem and an in-class algorithm (greedy + prefers
restricted packets), this module runs the simulation with the
Section 4.2 potential attached and audits every inequality in the
paper's argument against the measured execution:

* **Property 8 / Lemma 19** — per-node potential drops;
* **Corollary 10** — ``Phi(t+1) <= Phi(t) - G(t)``;
* **Lemma 12** — ``Phi(t+2) <= Phi(t) - F(t)``;
* **Lemma 14** — ``F(t) >= (2d)^(1/d) * B(t)^((d-1)/d)``;
* **Lemma 15** — ``Phi(t) - Phi(t+2) >= (2d)^(1/d) * (Phi(t)/2M)^((d-1)/d)``;
* **Theorem 20** — the final running time against ``8*sqrt(2)*n*sqrt(k)``.

The report carries every violation found (all lists empty on a
conforming run) plus tightness statistics used by benchmarks E2-E5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.engine import HotPotatoEngine
from repro.core.metrics import RunResult
from repro.core.policy import RoutingPolicy
from repro.core.problem import RoutingProblem
from repro.potential.bounds import theorem20_bound
from repro.potential.classification import classify_nodes
from repro.potential.property8 import Property8Violation, check_property8
from repro.potential.restricted import RestrictedPotential
from repro.potential.surface import count_surface_arcs, lemma_14_lower_bound


@dataclass(frozen=True)
class InequalityViolation:
    """A step where one of the analysis inequalities failed."""

    name: str
    step: int
    lhs: float
    rhs: float

    def __str__(self) -> str:
        return f"{self.name} failed at step {self.step}: {self.lhs} vs {self.rhs}"


@dataclass
class VerificationReport:
    """Outcome of auditing one run against the paper's inequalities."""

    result: RunResult
    phi_history: List[float]
    M: float
    property8_violations: List[Property8Violation] = field(default_factory=list)
    corollary10_violations: List[InequalityViolation] = field(default_factory=list)
    lemma12_violations: List[InequalityViolation] = field(default_factory=list)
    lemma14_violations: List[InequalityViolation] = field(default_factory=list)
    lemma15_violations: List[InequalityViolation] = field(default_factory=list)
    monotone: bool = True
    theorem20_limit: float = 0.0
    #: Per-step (B(t), G(t), F(t)) series for plots and tables.
    bgf_series: List[Tuple[int, int, int]] = field(default_factory=list)
    switch_count: int = 0

    @property
    def all_hold(self) -> bool:
        """True when every audited inequality held on every step."""
        return (
            self.monotone
            and not self.property8_violations
            and not self.corollary10_violations
            and not self.lemma12_violations
            and not self.lemma14_violations
            and not self.lemma15_violations
            and self.result.total_steps <= self.theorem20_limit
        )

    @property
    def bound_ratio(self) -> float:
        """Measured routing time over the Theorem 20 bound (< 1 in class)."""
        if self.theorem20_limit == 0:
            return 0.0
        return self.result.total_steps / self.theorem20_limit

    def summary(self) -> str:
        status = "ALL INEQUALITIES HOLD" if self.all_hold else "VIOLATIONS FOUND"
        return (
            f"{self.result.summary()} | Phi(0)={self.phi_history[0]:.0f} "
            f"M={self.M:.0f} T/bound={self.bound_ratio:.3f} | {status}"
        )


TOLERANCE = 1e-9


def verify_restricted_run(
    problem: RoutingProblem,
    policy: RoutingPolicy,
    *,
    seed: int = 0,
    max_steps: Optional[int] = None,
) -> VerificationReport:
    """Run ``policy`` on ``problem`` and audit the full analysis chain.

    The policy must be greedy and prefer restricted packets for the
    audit to be meaningful (the potential tracker's strict invariants
    are theorems only for that class); the run itself enforces both
    properties through the engine validators.
    """
    tracker = RestrictedPotential(strict=True)
    engine = HotPotatoEngine(
        problem,
        policy,
        seed=seed,
        observers=[tracker],
        record_steps=True,
        max_steps=max_steps,
    )
    result = engine.run()
    mesh = problem.mesh
    d = mesh.dimension
    phi = tracker.phi_history

    report = VerificationReport(
        result=result,
        phi_history=list(phi),
        M=tracker.M,
        theorem20_limit=theorem20_bound(mesh.side, problem.k),
        monotone=tracker.is_monotone_nonincreasing(),
        switch_count=tracker.switch_count,
    )
    report.property8_violations = check_property8(tracker.node_drops, d)

    records = result.records or []
    for index, record in enumerate(records):
        classification = classify_nodes(record, d)
        f_t = count_surface_arcs(mesh, classification.bad_nodes)
        b_t = classification.b
        g_t = classification.g
        report.bgf_series.append((record.step, b_t, f_t))

        # Corollary 10: Phi(t+1) <= Phi(t) - G(t).
        if phi[index + 1] > phi[index] - g_t + TOLERANCE:
            report.corollary10_violations.append(
                InequalityViolation(
                    "Corollary 10",
                    record.step,
                    phi[index + 1],
                    phi[index] - g_t,
                )
            )

        # Lemma 12: Phi(t+2) <= Phi(t) - F(t).
        later = index + 2 if index + 2 < len(phi) else len(phi) - 1
        if phi[later] > phi[index] - f_t + TOLERANCE:
            report.lemma12_violations.append(
                InequalityViolation(
                    "Lemma 12", record.step, phi[later], phi[index] - f_t
                )
            )

        # Lemma 14: F(t) >= (2d)^(1/d) * B(t)^((d-1)/d).
        lower = lemma_14_lower_bound(b_t, d)
        if f_t < lower - TOLERANCE:
            report.lemma14_violations.append(
                InequalityViolation("Lemma 14", record.step, f_t, lower)
            )

        # Lemma 15: Phi(t) - Phi(t+2) >= (2d)^(1/d) * (Phi(t)/2M)^((d-1)/d).
        required = (2 * d) ** (1 / d) * (
            phi[index] / (2 * tracker.M)
        ) ** ((d - 1) / d)
        if phi[index] - phi[later] < required - TOLERANCE:
            report.lemma15_violations.append(
                InequalityViolation(
                    "Lemma 15",
                    record.step,
                    phi[index] - phi[later],
                    required,
                )
            )

    return report
