"""Testbed for d-dimensional potential functions (Section 5).

The paper only sketches its d-dimensional potential — "each packet has
a load of spare potential from which it throws as it advances ...
chosen so that it can compensate for all the packets it may deflect" —
and defers the "fairly complex technical details" to [Hal] and [BHS],
which are not publicly available.  This module makes the difficulty
*measurable* instead of hand-waving it away:

* :class:`NaiveLiftedPotential` transplants the 2-D rules verbatim to
  ``d > 2`` (spare potential drops only on restricted, i.e.
  one-good-direction, chains).  A short argument shows it **must**
  fail Property 8: at a node with three packets in 3-D where two
  advance and deflect a two-good-direction packet, nobody is
  restricted, so no spare is thrown and the node loses only
  ``2 - 1 = 1 < 3`` units.

* :class:`PaidDeflectionPotential` adds the natural repair: every
  advancing packet that uses an arc good for a deflected packet with
  ``g`` good directions throws ``2/g`` spare units (so each deflection
  is collectively compensated by 2, its distance gain plus its missed
  advance).  This fixes the local accounting — Property 8 holds at
  conflict sites — but the *reset* of a deflected packet's spare is no
  longer inherited by anyone (the 2-D switch rule has no analogue when
  the deflectors are in different scarcity classes), so monotonicity
  of the global potential is not guaranteed by construction.  The
  testbed measures both failure modes.

Benchmark E20 runs the census; the honest conclusion it reproduces is
the paper's own: a correct d-dimensional potential genuinely needs the
complex machinery of [BHS], and the naive transplants fail in exactly
the ways the testbed pinpoints.
"""

from __future__ import annotations

from typing import Dict

from repro.core.metrics import StepRecord
from repro.exceptions import ConfigurationError
from repro.mesh.topology import Mesh
from repro.potential.restricted import RestrictedPotential
from repro.types import PacketId


class NaiveLiftedPotential(RestrictedPotential):
    """The 2-D rules applied verbatim on a d-dimensional mesh.

    Always constructed non-strict: its purpose is to *count* Property 8
    violations, not to assert their absence.
    """

    def __init__(self) -> None:
        super().__init__(strict=False)

    def _check_mesh(self, mesh: Mesh) -> None:
        if mesh.kind != "mesh":
            raise ConfigurationError(
                f"the lift testbed needs a mesh, got {mesh.kind}"
            )


class PaidDeflectionPotential(NaiveLiftedPotential):
    """Naive lift plus per-deflection payments by the deflectors.

    On top of the inherited rules, every advancing packet pays
    ``2 / g`` additional potential for each packet it helps deflect
    (``g`` = the victim's number of good directions), floored at zero
    spare.  This realizes the paper's "compensate for all the packets
    it may deflect" idea in its simplest form.
    """

    def update(self, record: StepRecord) -> Dict[PacketId, float]:
        new_phi = super().update(record)
        mesh = self._mesh
        assert mesh is not None

        # Charge deflectors: for every deflected packet, each advancing
        # packet using one of its good arcs pays 2/g.
        groups = record.node_groups()
        for node, infos in groups.items():
            advancing_by_direction = {
                info.assigned_direction: info
                for info in infos
                if info.advanced
            }
            for info in infos:
                if info.advanced:
                    continue
                good = mesh.good_directions(node, info.destination)
                g = len(good)
                if g == 0:
                    continue
                for direction in good:
                    payer = advancing_by_direction.get(direction)
                    if payer is None:
                        continue
                    pid = payer.packet_id
                    payment = min(2.0 / g, self.C[pid])
                    self.C[pid] -= payment
                    if new_phi.get(pid, 0.0) > 0.0:
                        new_phi[pid] = max(0.0, new_phi[pid] - payment)
        return new_phi
