"""Routing problems: the many-to-many batch model of Section 2.

A :class:`RoutingProblem` is a mesh together with a batch of
(source, destination) requests that all start at time 0.  The model
requires every endpoint to be a mesh node and **no node to originate
more packets than its out-degree** — otherwise the first step could
not move all packets out, breaking the hot-potato discipline.

Neither "every node sends" nor "every node receives" is required, and
a node may be the destination of many packets.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

from repro.core.packet import Packet
from repro.exceptions import InvalidProblemError
from repro.mesh.topology import Mesh
from repro.types import Node


@dataclass(frozen=True)
class Request:
    """A single routing request: move one packet from source to destination."""

    source: Node
    destination: Node


@dataclass(frozen=True)
class RoutingProblem:
    """A validated many-to-many batch routing problem.

    Attributes:
        mesh: the network to route on.
        requests: the packet batch; index in this tuple is the packet id.
        name: optional human-readable label used in reports.
    """

    mesh: Mesh
    requests: Tuple[Request, ...]
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        origins: Counter = Counter()
        for index, request in enumerate(self.requests):
            if not self.mesh.contains(request.source):
                raise InvalidProblemError(
                    f"request {index}: source {request.source} is not a mesh node"
                )
            if not self.mesh.contains(request.destination):
                raise InvalidProblemError(
                    f"request {index}: destination {request.destination} "
                    f"is not a mesh node"
                )
            origins[request.source] += 1
        for node, count in origins.items():
            capacity = self.mesh.degree(node)
            if count > capacity:
                raise InvalidProblemError(
                    f"node {node} originates {count} packets but has "
                    f"out-degree {capacity}"
                )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_pairs(
        cls,
        mesh: Mesh,
        pairs: Iterable[Sequence[Node]],
        name: str = "",
    ) -> "RoutingProblem":
        """Build a problem from an iterable of ``(source, destination)``."""
        requests = tuple(Request(tuple(s), tuple(d)) for s, d in pairs)
        return cls(mesh=mesh, requests=requests, name=name)

    def make_packets(self) -> List[Packet]:
        """Instantiate fresh :class:`Packet` objects for a run."""
        return [
            Packet(id=index, source=req.source, destination=req.destination)
            for index, req in enumerate(self.requests)
        ]

    # ------------------------------------------------------------------
    # Properties the paper's bounds are stated in terms of
    # ------------------------------------------------------------------

    @property
    def k(self) -> int:
        """Number of packets in the batch (the paper's ``k``)."""
        return len(self.requests)

    @property
    def d_max(self) -> int:
        """Maximum source-to-destination distance over the batch."""
        if not self.requests:
            return 0
        return max(
            self.mesh.distance(r.source, r.destination) for r in self.requests
        )

    @property
    def total_distance(self) -> int:
        """Sum of source-to-destination distances (a trivial work lower bound)."""
        return sum(
            self.mesh.distance(r.source, r.destination) for r in self.requests
        )

    def is_permutation(self) -> bool:
        """True when every node is the source and the destination of at
        most one packet (the permutation-routing special case)."""
        sources = Counter(r.source for r in self.requests)
        destinations = Counter(r.destination for r in self.requests)
        return all(c <= 1 for c in sources.values()) and all(
            c <= 1 for c in destinations.values()
        )

    def is_single_target(self) -> bool:
        """True when all packets share one destination."""
        return len({r.destination for r in self.requests}) <= 1

    def subproblem(self, indices: Sequence[int], name: str = "") -> "RoutingProblem":
        """Restrict the batch to the given request indices."""
        requests = tuple(self.requests[i] for i in indices)
        return RoutingProblem(mesh=self.mesh, requests=requests, name=name)

    def __len__(self) -> int:
        return len(self.requests)

    def describe(self) -> str:
        """One-line summary used by the experiment harness."""
        label = self.name or "problem"
        return (
            f"{label}: k={self.k} on {self.mesh.kind} "
            f"n={self.mesh.side} d={self.mesh.dimension} "
            f"(d_max={self.d_max})"
        )
