"""Policy adapters: the array kernel's view of a routing policy.

The object kernel calls ``policy.assign(view)`` per node per step; the
array kernel cannot, because the whole point is to avoid materializing
``NodeView``/``Packet`` objects on the hot path.  Instead,
:func:`adapter_for` maps each *supported* policy class onto a small
declarative description — priority-code kind, matching pipeline,
tie-break and deflection rules — that the array kernel replays with
integer columns.  The mapping is by exact class (``type(policy) is``),
never ``isinstance``: a subclass with an overridden ``priority_key``
would silently diverge from the declarative description, so it must
fall back to ``backend="object"``.

Adapters also decide *how* the kernel may run:

* a policy that consumes the sanctioned RNG during stepping (random
  tie-break or random deflection) forces the columnar pure-Python
  path, which visits nodes in the object kernel's exact order and
  replays every draw through ``policy._rng`` — the stream stays
  bit-identical;
* RNG-free policies are fully vectorizable: per-node decisions are
  pure functions of the node's rows, so visit order is immaterial and
  a single argsort over ``node * codes + code`` composite keys
  reproduces the per-node priority orders;
* ``RandomRankPolicy`` under dynamic injection draws ranks lazily on
  first sight; the columnar path reproduces the draw order (node visit
  order x id order within a node), while the batch case (all ranks
  pre-drawn in ``prepare``) vectorizes.
"""

from __future__ import annotations

import random
from typing import Any, Optional, Union

from repro.core.policy import BufferedPolicy, RoutingPolicy
from repro.types import PacketId

__all__ = ["PolicyAdapter", "adapter_for"]

#: Priority-code kinds understood by the array kernel.
CODE_UNIFORM = "uniform"
CODE_RESTRICTED = "restricted"
CODE_RANK = "rank"


class PolicyAdapter:
    """Declarative description of one policy for the array kernel."""

    __slots__ = (
        "policy",
        "buffered",
        "has_injection",
        "code_kind",
        "prefer_type_a",
        "tie_break",
        "deflection",
        "first_fit",
    )

    def __init__(
        self,
        policy: Union[RoutingPolicy, BufferedPolicy],
        *,
        buffered: bool,
        has_injection: bool,
        code_kind: str = CODE_UNIFORM,
        prefer_type_a: bool = True,
        tie_break: str = "id",
        deflection: str = "ordered",
        first_fit: bool = False,
    ) -> None:
        self.policy = policy
        self.buffered = buffered
        self.has_injection = has_injection
        self.code_kind = code_kind
        self.prefer_type_a = prefer_type_a
        self.tie_break = tie_break
        self.deflection = deflection
        self.first_fit = first_fit

    @property
    def rng(self) -> Optional[random.Random]:
        """The policy's sanctioned per-run RNG (set by ``prepare``)."""
        rng: Optional[random.Random] = getattr(self.policy, "_rng", None)
        return rng

    def rank_of(self, packet_id: PacketId) -> float:
        """The packet's persistent random rank (``CODE_RANK`` only).

        Delegates to the policy's own lazy accessor so draws for
        unseen ids advance the sanctioned stream exactly as the object
        kernel would.
        """
        rank: Any = getattr(self.policy, "_rank")
        return float(rank(packet_id))

    @property
    def consumes_rng(self) -> bool:
        """True when stepping draws from the policy RNG."""
        return self.tie_break == "random" or self.deflection == "random"

    @property
    def vectorizable(self) -> bool:
        """True when per-node decisions are order-independent.

        RNG draws and lazy rank draws are consumed in node-visit
        order, so either forces the columnar path; everything else is
        a pure function of a node's rows and vectorizes.
        """
        if self.consumes_rng:
            return False
        if self.code_kind == CODE_RANK and self.has_injection:
            return False
        return True


def adapter_for(
    policy: Union[RoutingPolicy, BufferedPolicy],
    *,
    buffered: bool,
    has_injection: bool,
) -> PolicyAdapter:
    """Build the adapter for a policy, or raise ValueError.

    Raises:
        ValueError: when the policy class has no declarative
            description (use ``backend="object"`` for it).
    """
    # Function-level import: repro.core must stay importable without
    # repro.algorithms (which itself imports repro.core).
    from repro.algorithms.dimension_order import DimensionOrderPolicy
    from repro.algorithms.plain_greedy import (
        MaximalGreedyPolicy,
        PlainGreedyPolicy,
        RandomizedGreedyPolicy,
    )
    from repro.algorithms.random_rank import RandomRankPolicy
    from repro.algorithms.restricted import RestrictedPriorityPolicy

    if buffered:
        if type(policy) is DimensionOrderPolicy:
            return PolicyAdapter(
                policy, buffered=True, has_injection=has_injection
            )
        raise ValueError(
            f"backend='soa' does not support buffered policy "
            f"{policy.name!r}; use backend='object'"
        )
    if type(policy) is DimensionOrderPolicy:
        raise ValueError(
            "DimensionOrderPolicy is a buffered policy; "
            "backend='soa' only accepts it on buffered engines"
        )
    if type(policy) is RestrictedPriorityPolicy:
        return PolicyAdapter(
            policy,
            buffered=False,
            has_injection=has_injection,
            code_kind=CODE_RESTRICTED,
            prefer_type_a=policy.prefer_type_a,
            tie_break=policy.tie_break,
            deflection=policy.deflection,
        )
    if type(policy) is RandomRankPolicy:
        return PolicyAdapter(
            policy,
            buffered=False,
            has_injection=has_injection,
            code_kind=CODE_RANK,
            tie_break=policy.tie_break,
            deflection=policy.deflection,
        )
    if type(policy) is PlainGreedyPolicy or (
        type(policy) is RandomizedGreedyPolicy
    ):
        return PolicyAdapter(
            policy,
            buffered=False,
            has_injection=has_injection,
            tie_break=policy.tie_break,
            deflection=policy.deflection,
        )
    if type(policy) is MaximalGreedyPolicy:
        return PolicyAdapter(
            policy,
            buffered=False,
            has_injection=has_injection,
            deflection=policy.deflection,
            first_fit=True,
        )
    raise ValueError(
        f"backend='soa' does not support policy {policy.name!r}; "
        f"use backend='object'"
    )
