"""Structure-of-arrays step kernel (``backend="soa"``).

A flat-column twin of :meth:`repro.core.kernel.StepKernel.run_lean`:
packet state lives in parallel integer columns, *rank* is one stable
argsort over composite priority keys, *arc_assign* is batched
good-direction selection over precomputed arc-index tables.  Proven
bit-identical to the object kernel (same summaries, telemetry, packet
outcomes, RNG stream) by the golden fixtures and the soa differential
suite.

Select it through the engine façades::

    HotPotatoEngine(problem, policy, backend="soa")
    BufferedEngine(problem, policy, backend="soa")
    DynamicEngine(mesh, policy, traffic, backend="soa")

numpy accelerates the kernel when importable; without it a columnar
pure-Python fallback runs the same loop (see :mod:`._compat`).
"""

from repro.core.soa._compat import numpy_available
from repro.core.soa.adapters import PolicyAdapter, adapter_for
from repro.core.soa.columns import PacketColumns
from repro.core.soa.kernel import SoaKernel

__all__ = [
    "PacketColumns",
    "PolicyAdapter",
    "SoaKernel",
    "adapter_for",
    "numpy_available",
]
