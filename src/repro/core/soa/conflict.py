"""Integer-encoded per-node conflict resolution for the array kernel.

These helpers replay the object kernel's per-node decision pipeline —
``priority_maximum_matching`` / ``greedy_maximal_matching`` followed by
:func:`repro.algorithms.deflect` — on flat integer state: packets are
row indices, directions are canonical direction indices, and a packet's
good-direction set is a bitmask.  Every ordering contract of the object
pipeline is preserved bit-for-bit:

* adjacency is scanned in ascending bit order, matching the canonical
  direction order that ``NodeView.good_directions`` yields;
* the Kuhn augmentation tracks visited directions per left vertex as a
  *bitmask* (membership tests only — determinism-lint DET102 stays
  clean by construction: there is no set to iterate);
* free directions are enumerated in canonical order before the
  deflection rule permutes or consumes them, and ``random`` deflection
  shuffles through the caller-supplied policy RNG so the sanctioned
  stream advances exactly as in the object kernel.

This is the array kernel's inner loop for contended nodes, so the
matching routines are written allocation-light: direction state lives
in small lists indexed by direction (at most ``2 * dimension`` slots)
and int bitmasks, and the ubiquitous uncontended case — a row whose
lowest good direction is still free — short-circuits past the
augmentation machinery entirely.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

__all__ = ["bits_of", "kuhn_match", "first_fit_match", "resolve_node"]


def bits_of(mask: int) -> List[int]:
    """Set bit indices of ``mask`` in ascending (canonical) order."""
    out: List[int] = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return out


def kuhn_match(
    order: Sequence[int], good: Sequence[int], out_mask: int
) -> Dict[int, int]:
    """Maximum matching with priority order, on bitmask adjacency.

    ``order`` lists row indices highest-priority first; ``good[row]``
    is the row's good-direction bitmask (a subset of ``out_mask``).
    Mirrors
    :func:`repro.algorithms.matching.priority_maximum_matching`:
    earlier rows keep their matches, later rows may only augment.

    The augmentation explores directions in ascending bit order, so a
    row whose lowest good direction is untaken receives exactly that
    direction — that case is assigned directly, and only genuinely
    contended rows run the recursive augmentation.
    """
    match_of_dir: List[int] = [-1] * out_mask.bit_length()
    match: Dict[int, int] = {}
    taken = 0
    visited = 0

    def try_augment(row: int) -> bool:
        nonlocal taken, visited
        mask = good[row]
        while mask:
            low = mask & -mask
            mask ^= low
            if visited & low:
                continue
            visited |= low
            direction = low.bit_length() - 1
            holder = match_of_dir[direction]
            if holder < 0 or try_augment(holder):
                if holder < 0:
                    taken |= low
                match_of_dir[direction] = row
                match[row] = direction
                return True
        return False

    for row in order:
        good_mask = good[row]
        low = good_mask & -good_mask
        if not taken & low:
            # Lowest good direction still free (or no good direction
            # at all): identical to what the augmentation would do.
            if good_mask:
                direction = low.bit_length() - 1
                match_of_dir[direction] = row
                match[row] = direction
                taken |= low
            continue
        visited = 0
        try_augment(row)
    return match


def first_fit_match(
    order: Sequence[int], good: Sequence[int]
) -> Dict[int, int]:
    """First-fit maximal matching on bitmask adjacency.

    Mirrors :func:`repro.algorithms.matching.greedy_maximal_matching`:
    each row in ``order`` takes its first (canonical-order) good
    direction not already taken.
    """
    taken = 0
    match: Dict[int, int] = {}
    for row in order:
        mask = good[row]
        while mask:
            low = mask & -mask
            mask ^= low
            if not taken & low:
                taken |= low
                match[row] = low.bit_length() - 1
                break
    return match


def resolve_node(
    ordered: Sequence[int],
    id_ordered: Sequence[int],
    good: Sequence[int],
    entry: Sequence[int],
    out_mask: int,
    first_fit: bool,
    deflection: str,
    rng: Optional[random.Random],
) -> Dict[int, int]:
    """One node's full assignment: matching plus deflection.

    Args:
        ordered: the node's rows in priority order (post tie-break and
            priority sort) — the matching order for the Kuhn pipeline.
        id_ordered: the same rows in packet-id order — the matching
            order for the first-fit pipeline (``MaximalGreedyPolicy``
            matches in id order regardless of deflection ordering).
        good: row -> good-direction bitmask (global, indexed by row).
        entry: row -> entry-direction index, ``-1`` for none (used by
            the ``reverse`` rule; the canonical encoding makes the
            opposite direction ``entry ^ 1``).
        out_mask: bitmask of directions with an outgoing arc.
        first_fit: select the first-fit pipeline instead of Kuhn.
        deflection: ``"ordered"`` | ``"random"`` | ``"reverse"``.
        rng: the policy's sanctioned RNG; required for ``random``.

    Returns row -> direction index.  The caller is responsible for the
    completeness check (every row assigned) exactly like the object
    kernel's staging loop.
    """
    if first_fit:
        assignment = first_fit_match(id_ordered, good)
        source = id_ordered
    else:
        assignment = kuhn_match(ordered, good, out_mask)
        source = ordered
    if len(assignment) == len(source) and deflection != "random":
        # Fully matched and no RNG to advance ("random" shuffles the
        # free list even when nobody needs deflecting, so it cannot
        # take this shortcut).
        return assignment
    unmatched = [row for row in source if row not in assignment]
    used = 0
    for direction in assignment.values():
        used |= 1 << direction
    free = bits_of(out_mask & ~used)
    if deflection == "random":
        if rng is None:
            raise ValueError("random deflection requires the policy RNG")
        rng.shuffle(free)
    elif deflection == "reverse":
        remaining: List[int] = []
        for row in unmatched:
            arrived = entry[row]
            if arrived >= 0:
                back = arrived ^ 1
                if back in free:
                    assignment[row] = back
                    free.remove(back)
                    continue
            remaining.append(row)
        unmatched = remaining
    for row, direction in zip(unmatched, free):
        assignment[row] = direction
    return assignment
