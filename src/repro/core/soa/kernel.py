"""The structure-of-arrays step kernel: `run_lean` on flat columns.

:class:`SoaKernel` drives a configured :class:`StepKernel` through the
same synchronous loop as :meth:`StepKernel.run_lean`, but with packet
state held in flat columns (:class:`PacketColumns`) instead of
``Packet`` objects, and per-step work expressed as array operations:

* *rank* becomes one stable argsort over composite ``node * codes +
  priority_code`` keys (the per-node priority orders fall out of the
  segmentation of the sorted order);
* *arc_assign* becomes a batched good-direction selection: good masks
  and distances for every packet arrive from ``d`` gathers into the
  mesh's per-axis packed tables
  (:meth:`~repro.mesh.topology.Mesh.arc_tables`), single-packet nodes
  are resolved wholesale, and only genuinely contended nodes fall back
  to the integer matching pipeline of :mod:`.conflict`.

Two execution paths share the loop structure:

* the **vectorized** numpy path, used when numpy is importable and the
  policy is RNG-free during stepping (see
  :attr:`~.adapters.PolicyAdapter.vectorizable`);
* the **columnar** pure-Python path — the no-numpy fallback, and the
  mandatory path for RNG-consuming policies, where node visit order is
  part of the seeded contract.  It walks the same integer columns with
  scalar loops, visiting nodes in the object kernel's exact order
  (insertion or sorted) and running the full decision template at
  every node so the sanctioned RNG stream advances identically.

Both paths are bit-identical to the object kernel: same
:class:`StepSummary` stream, same :class:`RunTelemetry` counters, same
packet outcomes, same ``on_deliver`` callback order (ascending packet
id within a step), same final ``in_flight``/distance state.  The proof
harness lives in ``tests/integration/test_soa_differential.py`` and
the golden-fixture suite.

The kernel's clock and delivery counters stay authoritative on the
wrapped :class:`StepKernel` (``time``, ``delivered_total``), so engine
callbacks (``on_deliver`` reading ``engine.time``) and post-run logic
(timeout handling, result building) work unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.kernel import PhaseSink, StepKernel, StepSummary
from repro.core.packet import Packet
from repro.core.soa import _compat
from repro.core.soa.adapters import (
    CODE_RANK,
    CODE_RESTRICTED,
    PolicyAdapter,
)
from repro.core.soa.columns import PacketColumns
from repro.core.soa.conflict import resolve_node
from repro.exceptions import ArcAssignmentError
from repro.mesh.tables import ArcTables
from repro.types import Node

__all__ = ["SoaKernel"]


def _table_views(tables: ArcTables, np: Any) -> Dict[str, Any]:
    """Numpy views of the flat tables, cached on the tables object."""
    views = tables.backend_views
    if views is None or views.get("kind") != "numpy":
        views = {
            "kind": "numpy",
            "coords": [
                np.asarray(column, dtype=np.int64)
                for column in tables.coords
            ],
            "packed": [
                np.asarray(table, dtype=np.int64)
                for table in tables.packed
            ],
            "nbr": np.asarray(tables.neighbor_flat, dtype=np.int64),
        }
        tables.backend_views = views
    return views


class SoaKernel:
    """Array twin of :meth:`StepKernel.run_lean` for one configured run.

    Args:
        kernel: the configured object kernel whose state (``time``,
            ``in_flight``, ``delivered_total``, distance table) this
            run advances.  Faults, watchdogs and path recording are
            object-kernel-only features and are rejected.
        adapter: the policy's declarative description
            (:func:`~.adapters.adapter_for`).
        force_python: skip the numpy path even when available (the
            fallback differential tests use this).
    """

    def __init__(
        self,
        kernel: StepKernel,
        adapter: PolicyAdapter,
        *,
        force_python: bool = False,
    ) -> None:
        if kernel.faults is not None or kernel.watchdog is not None:
            raise ValueError(
                "SoaKernel does not support faults or watchdogs; "
                "use the object kernel"
            )
        if kernel.record_paths:
            raise ValueError("SoaKernel does not support record_paths")
        if kernel.buffered != adapter.buffered:
            raise ValueError(
                "adapter/kernel discipline mismatch "
                f"(kernel buffered={kernel.buffered})"
            )
        self.kernel = kernel
        self.adapter = adapter
        self.tables = kernel.mesh.arc_tables()
        np = _compat.np
        self.vectorized = (
            np is not None and not force_python and adapter.vectorizable
        )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(
        self, until: int, profiler: Optional[PhaseSink] = None
    ) -> None:
        """Run steps until ``kernel.time == until`` (or drained).

        Mirrors :meth:`StepKernel.run_lean` / ``run_profiled``: batch
        kernels (no injection source) stop early once ``in_flight``
        drains; injecting kernels run the full horizon.  On return the
        wrapped kernel's ``in_flight`` and distance table hold the
        surviving packets, bit-identical to the object loop.
        """
        if self.vectorized:
            self._run_vectorized(until, profiler)
        else:
            self._run_columnar(until, profiler)

    # ------------------------------------------------------------------
    # Shared pieces
    # ------------------------------------------------------------------

    def _admit_batch(
        self, loads: Dict[Node, int]
    ) -> Tuple[int, List[Packet], int]:
        """The inject phase against precomputed loads.

        Returns ``(generated, new_packets, backlog)``; the caller
        appends the new packets to its columns.
        """
        source = self.kernel.injection
        if source is None:
            return 0, [], 0
        admit_batch = getattr(source, "admit_batch", None)
        if admit_batch is None:
            raise ValueError(
                f"injection source {type(source).__name__} does not "
                "support the array kernel (no admit_batch)"
            )
        generated, new_packets = admit_batch(self.kernel.time, loads)
        return generated, new_packets, source.backlog_size()

    def _writeback(
        self, columns: PacketColumns
    ) -> None:
        """Restore the object kernel's end-of-run state from columns."""
        kernel = self.kernel
        distance = kernel.mesh.distance
        packets = columns.unpack()
        kernel.in_flight = packets
        kernel._dist = {
            packet.id: distance(packet.location, packet.destination)
            for packet in packets
        }

    def _note_step(
        self,
        step_index: int,
        generated: int,
        injected: int,
        backlog: int,
        routed: int,
        moved: int,
        advancing: int,
        delivered_count: int,
        total_distance: int,
        max_load: int,
        bad_nodes: int,
        packets_in_bad: int,
    ) -> None:
        """Telemetry + summary emission, same arithmetic as run_lean."""
        kernel = self.kernel
        kernel.delivered_total += delivered_count
        tel = kernel.telemetry
        if tel is not None:
            tel.steps += 1
            tel.packet_steps += routed
            tel.generated += generated
            tel.injected += injected
            tel.delivered += delivered_count
            tel.advances += advancing
            tel.deflections += moved - advancing
            if routed > tel.max_in_flight:
                tel.max_in_flight = routed
            if max_load > tel.max_node_load:
                tel.max_node_load = max_load
            if backlog > tel.max_backlog:
                tel.max_backlog = backlog
        emit = kernel.emit
        if emit is not None:
            emit(
                StepSummary(
                    step=step_index,
                    generated=generated,
                    injected=injected,
                    routed=routed,
                    moved=moved,
                    advancing=advancing,
                    delivered=delivered_count,
                    delivered_total=kernel.delivered_total,
                    total_distance=total_distance,
                    max_node_load=max_load,
                    bad_nodes=bad_nodes,
                    packets_in_bad_nodes=packets_in_bad,
                    backlog=backlog,
                )
            )

    # ------------------------------------------------------------------
    # Columnar pure-Python path
    # ------------------------------------------------------------------

    def _run_columnar(
        self, until: int, profiler: Optional[PhaseSink]
    ) -> None:
        """Scalar loops over integer columns.

        Node visit order, per-node decision templates and every RNG
        draw replicate the object kernel exactly — this path carries
        the policies whose stepping consumes the sanctioned stream.
        """
        kernel = self.kernel
        adapter = self.adapter
        tables = self.tables
        dimension = tables.dimension
        side1 = tables.side + 1
        shift = tables.shift
        mask_all = tables.good_mask_all
        packed = tables.packed
        tcoords = tables.coords
        nbr = tables.neighbor_flat
        out_mask_t = tables.out_mask
        index_node = tables.index_node
        two_d = tables.num_directions
        buffered = kernel.buffered
        sorted_order = kernel.sorted_order
        set_entry = kernel.set_entry_direction
        on_deliver = kernel.on_deliver
        stop_when_empty = kernel.injection is None
        first_fit = adapter.first_fit
        deflection = adapter.deflection
        shuffle_ties = adapter.tie_break == "random"
        code_kind = adapter.code_kind
        prefer_type_a = adapter.prefer_type_a
        clock = profiler.clock if profiler is not None else None

        columns = PacketColumns.pack(kernel.in_flight, tables)
        ids = columns.ids
        pos = columns.pos
        dest = columns.dest
        dcs = columns.dest_coords
        entry = columns.entry
        rl = columns.restricted_last
        al = columns.advanced_last
        hops = columns.hops
        adv = columns.advances
        defl = columns.deflections
        by_id = columns.by_id

        while kernel.time < until:
            if stop_when_empty and not pos:
                break
            t0 = clock() if clock is not None else 0
            loads: Dict[Node, int] = {}
            for node_idx in pos:
                node = index_node[node_idx]
                loads[node] = loads.get(node, 0) + 1
            generated, new_packets, backlog = self._admit_batch(loads)
            for packet in new_packets:
                columns.append(packet)
            injected = len(new_packets)
            t1 = clock() if clock is not None else 0

            step_index = kernel.time
            m = len(pos)
            routed = m
            # Good masks + distances: d gathers into the packed tables.
            acc = [0] * m
            for axis in range(dimension):
                coord = tcoords[axis]
                dc = dcs[axis]
                table = packed[axis]
                for row in range(m):
                    acc[row] += table[coord[pos[row]] * side1 + dc[row]]
            gm = [value & mask_all for value in acc]
            total_distance = 0
            for value in acc:
                total_distance += value >> shift
            # Grouping preserves the object kernel's node visit order:
            # dict insertion order is first-seen row order, and sorted
            # node indices coincide with sorted node tuples because
            # the numbering is lexicographic.
            groups: Dict[int, List[int]] = {}
            for row in range(m):
                groups.setdefault(pos[row], []).append(row)
            node_list = sorted(groups) if sorted_order else list(groups)
            t2 = clock() if clock is not None else 0

            pending: Dict[int, int] = {}
            advancing = 0
            max_load = 0
            bad_nodes = 0
            packets_in_bad = 0
            rng = adapter.rng
            for node_idx in node_list:
                rows = groups[node_idx]
                load = len(rows)
                if load > max_load:
                    max_load = load
                if load > dimension:
                    bad_nodes += 1
                    packets_in_bad += load
                if buffered:
                    chosen: Dict[int, int] = {}
                    coords_here = [
                        tcoords[axis][node_idx]
                        for axis in range(dimension)
                    ]
                    for row in rows:
                        direction = -1
                        for axis in range(dimension):
                            here = coords_here[axis]
                            there = dcs[axis][row]
                            if here < there:
                                direction = 2 * axis
                                break
                            if here > there:
                                direction = 2 * axis + 1
                                break
                        if direction < 0:
                            continue
                        if direction not in chosen:
                            chosen[direction] = row
                    for direction, row in chosen.items():
                        pending[row] = direction
                        if gm[row] >> direction & 1:
                            advancing += 1
                    continue
                # Hot-potato: replicate the greedy template, including
                # tie-break shuffles and priority sorts, at every node
                # (the object kernel runs it even for lone packets, so
                # the RNG stream advances there too).
                ordered = list(rows)
                if shuffle_ties:
                    if rng is None:
                        raise ValueError(
                            "policy RNG missing; was prepare() run?"
                        )
                    rng.shuffle(ordered)
                if code_kind == CODE_RESTRICTED:
                    a_code = 0 if prefer_type_a else 1
                    b_code = 1 - a_code

                    def restricted_code(row: int) -> int:
                        mask = gm[row]
                        if mask & (mask - 1):
                            return 2
                        if rl[row] and al[row]:
                            return a_code
                        return b_code

                    ordered.sort(key=restricted_code)
                elif code_kind == CODE_RANK:
                    rank_of = adapter.rank_of

                    def rank_key(row: int) -> Tuple[float, int]:
                        return (rank_of(ids[row]), ids[row])

                    ordered.sort(key=rank_key)
                assignment = resolve_node(
                    ordered,
                    rows,
                    gm,
                    entry,
                    out_mask_t[node_idx],
                    first_fit,
                    deflection,
                    rng,
                )
                if len(assignment) != load:
                    raise ArcAssignmentError(
                        f"step {step_index}: inconsistent assignment "
                        f"at {index_node[node_idx]} (soa kernel check)"
                    )
                for row, direction in assignment.items():
                    pending[row] = direction
                    if gm[row] >> direction & 1:
                        advancing += 1
            t3 = clock() if clock is not None else 0

            # Move, in row (= packet id = in_flight) order.
            kernel.time += 1
            moved = len(pending)
            if buffered:
                for row, direction in pending.items():
                    next_pos = nbr[pos[row] * two_d + direction]
                    if next_pos < 0:
                        raise ArcAssignmentError(
                            f"step {step_index}: inconsistent buffered "
                            f"assignment at {index_node[pos[row]]} "
                            f"(soa kernel check)"
                        )
                    pos[row] = next_pos
                    hops[row] += 1
                    if gm[row] >> direction & 1:
                        adv[row] += 1
                    else:
                        defl[row] += 1
            else:
                for row in range(m):
                    direction = pending[row]
                    mask = gm[row]
                    rl[row] = not mask & (mask - 1)
                    advanced = bool(mask >> direction & 1)
                    al[row] = advanced
                    pos[row] = nbr[pos[row] * two_d + direction]
                    if set_entry:
                        entry[row] = direction
                    hops[row] += 1
                    if advanced:
                        adv[row] += 1
                    else:
                        defl[row] += 1
            t4 = clock() if clock is not None else 0

            # Deliver, ascending row order (= in_flight order).
            now = kernel.time
            delivered_count = 0
            keep: Optional[List[bool]] = None
            for row in range(len(pos)):
                if pos[row] == dest[row]:
                    if keep is None:
                        keep = [True] * len(pos)
                    keep[row] = False
                    delivered_count += 1
                    packet = columns.writeback_row(row)
                    del by_id[packet.id]
                    packet.delivered_at = now
                    if on_deliver is not None:
                        on_deliver(packet)
            if keep is not None:
                columns.compact(keep)
                ids = columns.ids
                pos = columns.pos
                dest = columns.dest
                dcs = columns.dest_coords
                entry = columns.entry
                rl = columns.restricted_last
                al = columns.advanced_last
                hops = columns.hops
                adv = columns.advances
                defl = columns.deflections
            t5 = clock() if clock is not None else 0
            if profiler is not None:
                profiler.record_step(
                    t1 - t0, t2 - t1, t3 - t2, t4 - t3, t5 - t4
                )

            self._note_step(
                step_index,
                generated,
                injected,
                backlog,
                routed,
                moved,
                advancing,
                delivered_count,
                total_distance,
                max_load,
                bad_nodes,
                packets_in_bad,
            )

        self._writeback(columns)

    # ------------------------------------------------------------------
    # Vectorized numpy path
    # ------------------------------------------------------------------

    def _run_vectorized(
        self, until: int, profiler: Optional[PhaseSink]
    ) -> None:
        """The numpy path: one argsort + gathers per step.

        Only legal for RNG-free policies, where per-node decisions are
        pure functions of each node's rows (visit order immaterial).
        """
        np = _compat.np
        assert np is not None
        kernel = self.kernel
        adapter = self.adapter
        tables = self.tables
        views = _table_views(tables, np)
        coords_v: List[Any] = views["coords"]
        packed_v: List[Any] = views["packed"]
        nbr_v: Any = views["nbr"]
        dimension = tables.dimension
        side1 = tables.side + 1
        shift = tables.shift
        mask_all = tables.good_mask_all
        out_mask_t = tables.out_mask
        index_node = tables.index_node
        two_d = tables.num_directions
        buffered = kernel.buffered
        set_entry = kernel.set_entry_direction
        on_deliver = kernel.on_deliver
        source = kernel.injection
        stop_when_empty = source is None
        first_fit = adapter.first_fit
        deflection = adapter.deflection
        code_kind = adapter.code_kind
        prefer_type_a = adapter.prefer_type_a
        directions = tables.directions
        clock = profiler.clock if profiler is not None else None

        columns = PacketColumns.pack(kernel.in_flight, tables)
        by_id = columns.by_id
        ids = np.asarray(columns.ids, dtype=np.int64)
        pos = np.asarray(columns.pos, dtype=np.int64)
        dest = np.asarray(columns.dest, dtype=np.int64)
        dcs = [
            np.asarray(column, dtype=np.int64)
            for column in columns.dest_coords
        ]
        entry = np.asarray(columns.entry, dtype=np.int64)
        rl = np.asarray(columns.restricted_last, dtype=bool)
        al = np.asarray(columns.advanced_last, dtype=bool)
        hops = np.asarray(columns.hops, dtype=np.int64)
        adv = np.asarray(columns.advances, dtype=np.int64)
        defl = np.asarray(columns.deflections, dtype=np.int64)
        rank_col: Any = None
        if code_kind == CODE_RANK:
            rank_of = adapter.rank_of
            rank_col = np.asarray(
                [rank_of(packet_id) for packet_id in columns.ids],
                dtype=np.float64,
            )

        while kernel.time < until:
            if stop_when_empty and pos.shape[0] == 0:
                break
            t0 = clock() if clock is not None else 0
            generated = injected = backlog = 0
            if source is not None:
                node_ids, node_counts = np.unique(
                    pos, return_counts=True
                )
                loads: Dict[Node, int] = {
                    index_node[node_idx]: count
                    for node_idx, count in zip(
                        node_ids.tolist(), node_counts.tolist()
                    )
                }
                generated, new_packets, backlog = self._admit_batch(
                    loads
                )
                injected = len(new_packets)
                if new_packets:
                    extra = PacketColumns(tables)
                    for packet in new_packets:
                        extra.append(packet)
                    by_id.update(extra.by_id)
                    ids = np.concatenate(
                        [ids, np.asarray(extra.ids, dtype=np.int64)]
                    )
                    pos = np.concatenate(
                        [pos, np.asarray(extra.pos, dtype=np.int64)]
                    )
                    dest = np.concatenate(
                        [dest, np.asarray(extra.dest, dtype=np.int64)]
                    )
                    dcs = [
                        np.concatenate(
                            [
                                dcs[axis],
                                np.asarray(
                                    extra.dest_coords[axis],
                                    dtype=np.int64,
                                ),
                            ]
                        )
                        for axis in range(dimension)
                    ]
                    entry = np.concatenate(
                        [entry, np.asarray(extra.entry, dtype=np.int64)]
                    )
                    rl = np.concatenate(
                        [
                            rl,
                            np.asarray(
                                extra.restricted_last, dtype=bool
                            ),
                        ]
                    )
                    al = np.concatenate(
                        [
                            al,
                            np.asarray(
                                extra.advanced_last, dtype=bool
                            ),
                        ]
                    )
                    hops = np.concatenate(
                        [hops, np.asarray(extra.hops, dtype=np.int64)]
                    )
                    adv = np.concatenate(
                        [
                            adv,
                            np.asarray(extra.advances, dtype=np.int64),
                        ]
                    )
                    defl = np.concatenate(
                        [
                            defl,
                            np.asarray(
                                extra.deflections, dtype=np.int64
                            ),
                        ]
                    )
            t1 = clock() if clock is not None else 0

            step_index = kernel.time
            m = int(pos.shape[0])
            routed = m
            # Good masks + distances: d gathers, one add chain.
            acc = packed_v[0][coords_v[0][pos] * side1 + dcs[0]]
            for axis in range(1, dimension):
                acc = acc + packed_v[axis][
                    coords_v[axis][pos] * side1 + dcs[axis]
                ]
            gm = acc & mask_all
            total_distance = int((acc >> shift).sum())

            if buffered:
                (
                    moved,
                    advancing,
                    max_load,
                    bad_nodes,
                    packets_in_bad,
                    delivered_rows,
                ) = self._step_buffered_vectorized(
                    np, pos, dest, dcs, gm, hops, adv, defl,
                    coords_v, nbr_v, dimension, two_d, step_index,
                )
            else:
                # Node load stats + priority order from one stable sort.
                if code_kind == CODE_RESTRICTED:
                    single = (gm & (gm - 1)) == 0
                    a_code = 0 if prefer_type_a else 1
                    restricted_codes = np.where(
                        rl & al, a_code, 1 - a_code
                    )
                    code = np.where(single, restricted_codes, 2)
                    order = np.argsort(pos * 4 + code, kind="stable")
                elif code_kind == CODE_RANK:
                    order = np.lexsort((rank_col, pos))
                else:
                    order = np.argsort(pos, kind="stable")
                spos = pos[order]
                if m:
                    head = np.empty(m, dtype=bool)
                    head[0] = True
                    np.not_equal(spos[1:], spos[:-1], out=head[1:])
                    starts = np.flatnonzero(head)
                    counts = np.diff(np.append(starts, m))
                    max_load = int(counts.max())
                    bad = counts > dimension
                    bad_nodes = int(bad.sum())
                    packets_in_bad = int(counts[bad].sum())
                else:
                    starts = np.empty(0, dtype=np.int64)
                    counts = np.empty(0, dtype=np.int64)
                    max_load = bad_nodes = packets_in_bad = 0

                dirs = np.empty(m, dtype=np.int64)
                singles = counts == 1
                srows = order[starts[singles]]
                if srows.size:
                    low = gm[srows] & -gm[srows]
                    dirs[srows] = np.log2(
                        low.astype(np.float64)
                    ).astype(np.int64)
                multi = np.flatnonzero(~singles)
                if multi.size:
                    order_l = order.tolist()
                    gm_l = gm.tolist()
                    entry_l = entry.tolist()
                    starts_l = starts[multi].tolist()
                    counts_l = counts[multi].tolist()
                    nodes_l = spos[starts[multi]].tolist()
                    assigned_rows: List[int] = []
                    assigned_dirs: List[int] = []
                    for seg_start, seg_count, node_idx in zip(
                        starts_l, counts_l, nodes_l
                    ):
                        segment = order_l[
                            seg_start : seg_start + seg_count
                        ]
                        assignment = resolve_node(
                            segment,
                            segment,
                            gm_l,
                            entry_l,
                            out_mask_t[node_idx],
                            first_fit,
                            deflection,
                            None,
                        )
                        if len(assignment) != seg_count:
                            raise ArcAssignmentError(
                                f"step {step_index}: inconsistent "
                                f"assignment at "
                                f"{index_node[node_idx]} "
                                f"(soa kernel check)"
                            )
                        for row, direction in assignment.items():
                            assigned_rows.append(row)
                            assigned_dirs.append(direction)
                    dirs[
                        np.asarray(assigned_rows, dtype=np.int64)
                    ] = np.asarray(assigned_dirs, dtype=np.int64)

                adv_now = ((gm >> dirs) & 1).astype(bool)
                advancing = int(adv_now.sum())
                moved = m
                # Move: flags, position, counters — all columns.
                rl = (gm & (gm - 1)) == 0
                al = adv_now
                pos = nbr_v[pos * two_d + dirs]
                if set_entry:
                    entry = dirs
                hops = hops + 1
                adv = adv + adv_now
                defl = defl + ~adv_now
                delivered_rows = np.flatnonzero(pos == dest)
            t4 = clock() if clock is not None else 0

            kernel.time += 1
            now = kernel.time
            delivered_count = int(delivered_rows.size)
            if delivered_count:
                # Ascending row order = in_flight order, so delivery
                # callbacks fire exactly as in the object loop.
                entry_live = set_entry and not buffered
                for row in delivered_rows.tolist():
                    packet = by_id.pop(int(ids[row]))
                    packet.location = index_node[int(pos[row])]
                    if entry_live:
                        packet.entry_direction = directions[
                            int(entry[row])
                        ]
                    packet.restricted_last_step = bool(rl[row])
                    packet.advanced_last_step = bool(al[row])
                    packet.hops = int(hops[row])
                    packet.advances = int(adv[row])
                    packet.deflections = int(defl[row])
                    packet.delivered_at = now
                    if on_deliver is not None:
                        on_deliver(packet)
                keep = np.ones(pos.shape[0], dtype=bool)
                keep[delivered_rows] = False
                ids = ids[keep]
                pos = pos[keep]
                dest = dest[keep]
                dcs = [column[keep] for column in dcs]
                entry = entry[keep]
                rl = rl[keep]
                al = al[keep]
                hops = hops[keep]
                adv = adv[keep]
                defl = defl[keep]
                if rank_col is not None:
                    rank_col = rank_col[keep]
            t5 = clock() if clock is not None else 0
            if profiler is not None:
                # rank (sort + stats) and arc_assign (direction
                # resolution) are fused in the array step; attribute
                # the fused span to rank and the move/flag updates to
                # move, so phase totals still sum to the step time.
                profiler.record_step(t1 - t0, t4 - t1, 0, 0, t5 - t4)

            self._note_step(
                step_index,
                generated,
                injected,
                backlog,
                routed,
                moved,
                advancing,
                delivered_count,
                total_distance,
                max_load,
                bad_nodes,
                packets_in_bad,
            )

        # Restore object-kernel state from the arrays.
        columns.ids = [int(value) for value in ids.tolist()]
        columns.pos = [int(value) for value in pos.tolist()]
        columns.dest = [int(value) for value in dest.tolist()]
        columns.dest_coords = [
            [int(value) for value in column.tolist()] for column in dcs
        ]
        columns.entry = [int(value) for value in entry.tolist()]
        columns.restricted_last = [bool(value) for value in rl.tolist()]
        columns.advanced_last = [bool(value) for value in al.tolist()]
        columns.hops = [int(value) for value in hops.tolist()]
        columns.advances = [int(value) for value in adv.tolist()]
        columns.deflections = [int(value) for value in defl.tolist()]
        self._writeback(columns)

    def _step_buffered_vectorized(
        self,
        np: Any,
        pos: Any,
        dest: Any,
        dcs: List[Any],
        gm: Any,
        hops: Any,
        adv: Any,
        defl: Any,
        coords_v: List[Any],
        nbr_v: Any,
        dimension: int,
        two_d: int,
        step_index: int,
    ) -> Tuple[int, int, int, int, int, Any]:
        """One buffered (dimension-order) step on arrays, in place.

        Mutates ``pos``/``hops``/``adv``/``defl`` for the winning rows
        and returns ``(moved, advancing, max_load, bad_nodes,
        packets_in_bad, delivered_rows)``.
        """
        m = int(pos.shape[0])
        if m:
            _, counts = np.unique(pos, return_counts=True)
            max_load = int(counts.max())
            bad = counts > dimension
            bad_nodes = int(bad.sum())
            packets_in_bad = int(counts[bad].sum())
        else:
            max_load = bad_nodes = packets_in_bad = 0
        # Dimension-order next hop: first differing axis, plain
        # comparison (deliberately wrap-unaware, like the policy).
        dirv = np.full(m, -1, dtype=np.int64)
        for axis in reversed(range(dimension)):
            here = coords_v[axis][pos]
            there = dcs[axis]
            dirv = np.where(
                here < there,
                2 * axis,
                np.where(here > there, 2 * axis + 1, dirv),
            )
        valid = np.flatnonzero(dirv >= 0)
        # One packet per (node, direction): the lowest row (= lowest
        # id) wins, matching the policy's first-seen rule.
        keys = pos[valid] * two_d + dirv[valid]
        _, first = np.unique(keys, return_index=True)
        winners = valid[first]
        win_dirs = dirv[winners]
        advancing = int(((gm[winners] >> win_dirs) & 1).sum())
        next_pos = nbr_v[pos[winners] * two_d + win_dirs]
        if next_pos.size and int(next_pos.min()) < 0:
            raise ArcAssignmentError(
                f"step {step_index}: inconsistent buffered assignment "
                f"(soa kernel check)"
            )
        advanced = ((gm[winners] >> win_dirs) & 1).astype(bool)
        pos[winners] = next_pos
        hops[winners] += 1
        adv[winners] += advanced
        defl[winners] += ~advanced
        delivered_rows = np.flatnonzero(pos == dest)
        return (
            int(winners.size),
            advancing,
            max_load,
            bad_nodes,
            packets_in_bad,
            delivered_rows,
        )
