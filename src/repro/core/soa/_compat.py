"""Optional-numpy gate for the array kernel.

The core package keeps no hard numpy dependency: the structure-of-
arrays kernel vectorizes with numpy when it is importable and falls
back to a columnar pure-Python loop otherwise.  All soa modules read
``_compat.np`` at kernel construction time, so tests can monkeypatch
it to ``None`` to force the fallback without uninstalling numpy.
"""

from __future__ import annotations

from types import ModuleType
from typing import Optional

np: Optional[ModuleType]
try:  # pragma: no cover - exercised via the no-numpy CI leg
    import numpy

    np = numpy
except ImportError:  # pragma: no cover - exercised via the no-numpy CI leg
    np = None


def numpy_available() -> bool:
    """True when the vectorized numpy path can be used."""
    return np is not None
