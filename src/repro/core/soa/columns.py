"""Structure-of-arrays packet state: pack / unpack against ``Packet``.

:class:`PacketColumns` holds the mutable per-packet state of a run as
parallel plain-Python lists — one column per field, one row per
in-flight packet, rows in ``StepKernel.in_flight`` order (ascending
packet id; the kernel maintains that invariant).  Node locations are
stored as :class:`~repro.mesh.tables.ArcTables` node indices and entry
directions as canonical direction indices (``-1`` for none), so the
step kernels operate on integers only.

The columns are the interchange format between the object and array
worlds: :meth:`pack` snapshots live ``Packet`` objects (without
mutating them), :meth:`writeback_row` / :meth:`unpack` write column
state back into the same objects.  The numpy path converts these lists
to arrays on entry and back on exit; the pure-Python fallback loops
over them directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.core.packet import Packet
from repro.mesh.tables import ArcTables, direction_index
from repro.types import PacketId

__all__ = ["PacketColumns"]


class PacketColumns:
    """Flat per-packet state columns (rows in packet-id order)."""

    __slots__ = (
        "tables",
        "ids",
        "pos",
        "dest",
        "dest_coords",
        "entry",
        "restricted_last",
        "advanced_last",
        "hops",
        "advances",
        "deflections",
        "by_id",
    )

    def __init__(self, tables: ArcTables) -> None:
        self.tables = tables
        self.ids: List[PacketId] = []
        #: Node index of the packet's current location.
        self.pos: List[int] = []
        #: Node index of the packet's destination.
        self.dest: List[int] = []
        #: Per axis, the (1-based) destination coordinate — the gather
        #: key into the per-axis packed goodness/distance tables.
        self.dest_coords: List[List[int]] = [
            [] for _ in range(tables.dimension)
        ]
        #: Canonical direction index of ``entry_direction``; -1 = None.
        self.entry: List[int] = []
        self.restricted_last: List[bool] = []
        self.advanced_last: List[bool] = []
        self.hops: List[int] = []
        self.advances: List[int] = []
        self.deflections: List[int] = []
        #: The live Packet object behind each id, for delivery
        #: callbacks and final unpacking.
        self.by_id: Dict[PacketId, Packet] = {}

    def __len__(self) -> int:
        return len(self.ids)

    @classmethod
    def pack(
        cls, packets: Iterable[Packet], tables: ArcTables
    ) -> "PacketColumns":
        """Snapshot live packets into columns (packets unmodified)."""
        columns = cls(tables)
        for packet in packets:
            columns.append(packet)
        return columns

    def append(self, packet: Packet) -> None:
        """Add one packet as the last row."""
        node_index = self.tables.node_index
        self.ids.append(packet.id)
        self.pos.append(node_index[packet.location])
        self.dest.append(node_index[packet.destination])
        for axis in range(self.tables.dimension):
            self.dest_coords[axis].append(packet.destination[axis])
        entry = packet.entry_direction
        self.entry.append(-1 if entry is None else direction_index(entry))
        self.restricted_last.append(packet.restricted_last_step)
        self.advanced_last.append(packet.advanced_last_step)
        self.hops.append(packet.hops)
        self.advances.append(packet.advances)
        self.deflections.append(packet.deflections)
        self.by_id[packet.id] = packet

    def writeback_row(self, row: int) -> Packet:
        """Write row state back into its Packet object and return it."""
        tables = self.tables
        packet = self.by_id[self.ids[row]]
        packet.location = tables.index_node[self.pos[row]]
        entry = self.entry[row]
        packet.entry_direction = (
            None if entry < 0 else tables.directions[entry]
        )
        packet.restricted_last_step = self.restricted_last[row]
        packet.advanced_last_step = self.advanced_last[row]
        packet.hops = self.hops[row]
        packet.advances = self.advances[row]
        packet.deflections = self.deflections[row]
        return packet

    def unpack(self) -> List[Packet]:
        """Write every row back and return the packets in row order."""
        return [self.writeback_row(row) for row in range(len(self.ids))]

    def compact(self, keep: List[bool]) -> None:
        """Drop rows whose ``keep`` flag is False (delivered packets).

        The corresponding ``by_id`` entries must already have been
        popped by the caller's delivery processing.
        """
        selected = [row for row, flag in enumerate(keep) if flag]
        self.ids = [self.ids[row] for row in selected]
        self.pos = [self.pos[row] for row in selected]
        self.dest = [self.dest[row] for row in selected]
        self.dest_coords = [
            [column[row] for row in selected]
            for column in self.dest_coords
        ]
        self.entry = [self.entry[row] for row in selected]
        self.restricted_last = [
            self.restricted_last[row] for row in selected
        ]
        self.advanced_last = [self.advanced_last[row] for row in selected]
        self.hops = [self.hops[row] for row in selected]
        self.advances = [self.advances[row] for row in selected]
        self.deflections = [self.deflections[row] for row in selected]
