"""Routing-policy interfaces.

A hot-potato routing algorithm, per Section 2, is a per-node scheme
applied uniformly at every node in every step.  The library models it
as a :class:`RoutingPolicy` whose :meth:`~RoutingPolicy.assign` method
maps a :class:`~repro.core.node_view.NodeView` to a direction for every
packet at the node.  The engine enforces the model rules (distinct
arcs, nobody stays); the *declared properties* of a policy (greedy,
prefers-restricted) are checked by optional validators.
"""

from __future__ import annotations

import abc
import random
from typing import Dict

from repro.core.node_view import NodeView
from repro.core.problem import RoutingProblem
from repro.mesh.directions import Direction
from repro.mesh.topology import Mesh
from repro.types import PacketId

Assignment = Dict[PacketId, Direction]


class RoutingPolicy(abc.ABC):
    """A uniform per-node, per-step routing rule (hot-potato).

    Subclasses set the declaration flags truthfully; the engine's
    validators then check the corresponding property at every node in
    every step:

    * ``declares_greedy`` — Definition 6: a deflected packet's good
      arcs are all used by advancing packets.
    * ``declares_restricted_priority`` — Definition 18: a
      non-restricted packet never deflects a restricted one.
    * ``declares_max_advance`` — the Section 5 requirement: the number
      of advancing packets at each node is maximum possible.
    """

    #: Short identifier used by the registry and in result tables.
    name: str = "abstract"

    declares_greedy: bool = False
    declares_restricted_priority: bool = False
    declares_max_advance: bool = False

    def prepare(
        self, mesh: Mesh, problem: RoutingProblem, rng: random.Random
    ) -> None:
        """Hook called once before a run starts.

        Policies that need precomputed global data (e.g., the
        Brassil–Cruz destination ranking) or a private random stream
        set it up here.  The default does nothing.
        """

    @abc.abstractmethod
    def assign(self, view: NodeView) -> Assignment:
        """Assign an outgoing direction to every packet in ``view``.

        Must return a mapping with exactly one entry per packet in
        ``view.packets``; values must be distinct directions that have
        an arc out of ``view.node``.  The engine validates all of this
        and raises :class:`~repro.exceptions.ArcAssignmentError` on any
        violation.
        """

    def describe(self) -> str:
        """One-line description for reports."""
        flags = []
        if self.declares_greedy:
            flags.append("greedy")
        if self.declares_restricted_priority:
            flags.append("prefers-restricted")
        if self.declares_max_advance:
            flags.append("max-advance")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return f"{self.name}{suffix}"


class BufferedPolicy(abc.ABC):
    """A store-and-forward routing rule (used by the buffered engine).

    Unlike hot-potato policies, a buffered policy may keep packets
    queued at a node; each step it proposes at most one packet per
    outgoing arc.  This is the interface for the structured baselines
    the paper contrasts greedy hot-potato routing with.
    """

    name: str = "abstract-buffered"

    def prepare(
        self, mesh: Mesh, problem: RoutingProblem, rng: random.Random
    ) -> None:
        """Hook called once before a run starts."""

    @abc.abstractmethod
    def forward(self, view: NodeView) -> Assignment:
        """Choose which queued packets to send and where.

        Returns a partial mapping (packets omitted stay buffered);
        values must be distinct directions with arcs out of the node.
        """
