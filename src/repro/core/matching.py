"""Bipartite matching of packets to good directions.

The greedy algorithms in this library reduce each node's per-step
decision to a matching problem: packets on one side, the node's
outgoing directions on the other, with an edge when the direction is
*good* for the packet (Definition 5).  Facts the analysis relies on:

* any **maximal** matching yields a greedy step (Definition 6): a
  packet left unmatched has every good direction matched, i.e. used by
  a packet advancing through it;
* a **maximum** matching additionally maximizes the number of advancing
  packets at the node, the extra requirement of the Section 5
  d-dimensional algorithm class;
* computing the maximum matching with Kuhn's augmenting-path algorithm,
  feeding packets in *priority order*, matches a priority-maximal set
  of packets (the matched set is the lexicographically best basis of
  the transversal matroid).  Feeding restricted packets first therefore
  implements "prefers restricted packets" (Definition 18): a restricted
  packet has a single good direction, so once matched it can never be
  rerouted by an augmenting path, and an arc held by a restricted
  packet is a dead end for later augmenting paths.

Node-local problems are tiny (at most ``2d`` packets and ``2d``
directions), so the simple O(V·E) Kuhn algorithm is the right tool.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Sequence, Set, Tuple, TypeVar

Left = TypeVar("Left", bound=Hashable)
Right = TypeVar("Right", bound=Hashable)


def priority_maximum_matching(
    adjacency: Mapping[Left, Sequence[Right]],
    order: Sequence[Left],
) -> Dict[Left, Right]:
    """Maximum bipartite matching honoring a priority order.

    Args:
        adjacency: for each left vertex, the right vertices it may
            match (a packet's good directions).
        order: all left vertices, highest priority first.  Vertices are
            offered augmenting paths in this order; once matched, a
            vertex stays matched (its assigned right vertex may still
            be swapped for another of *its own* options by later
            augmenting paths).

    Returns:
        A maximum matching as a left-to-right mapping.

    Raises:
        ValueError: if ``order`` does not cover ``adjacency`` exactly.
    """
    if set(order) != set(adjacency):
        raise ValueError("order must list exactly the adjacency keys")
    match_of_right: Dict[Right, Left] = {}
    match_of_left: Dict[Left, Right] = {}

    def try_augment(left: Left, visited: Set[Right]) -> bool:
        for right in adjacency[left]:
            if right in visited:
                continue
            visited.add(right)
            holder = match_of_right.get(right)
            if holder is None or try_augment(holder, visited):
                match_of_right[right] = left
                match_of_left[left] = right
                return True
        return False

    for left in order:
        try_augment(left, set())
    return match_of_left


def greedy_maximal_matching(
    adjacency: Mapping[Left, Sequence[Right]],
    order: Sequence[Left],
) -> Dict[Left, Right]:
    """Maximal (not necessarily maximum) matching by one greedy pass.

    Each left vertex in ``order`` takes its first still-free option.
    Provided for experiments contrasting maximal-only greedy steps with
    the maximum-matching steps required by the Section 5 algorithms.
    """
    if set(order) != set(adjacency):
        raise ValueError("order must list exactly the adjacency keys")
    taken: Set[Right] = set()
    result: Dict[Left, Right] = {}
    for left in order:
        for right in adjacency[left]:
            if right not in taken:
                taken.add(right)
                result[left] = right
                break
    return result


def is_maximal_matching(
    adjacency: Mapping[Left, Sequence[Right]],
    matching: Mapping[Left, Right],
) -> bool:
    """Check that no unmatched left vertex has an unmatched option.

    This is exactly the greediness condition (Definition 6) at the
    node level: a deflected packet may exist only if all its good
    directions are in use.
    """
    used = set(matching.values())
    for left, options in adjacency.items():
        if left in matching:
            continue
        if any(right not in used for right in options):
            return False
    return True


def maximum_matching_size(
    adjacency: Mapping[Left, Sequence[Right]],
) -> int:
    """Size of a maximum matching (used by the max-advance validator)."""
    order = list(adjacency)
    return len(priority_maximum_matching(adjacency, order))


def assign_leftovers(
    unmatched: Sequence[Left],
    free_rights: Sequence[Right],
) -> List[Tuple[Left, Right]]:
    """Pair deflected packets with unused directions, in the given orders.

    The caller guarantees ``len(free_rights) >= len(unmatched)`` (a
    mesh node has at least as many out-arcs as packets); a shortfall is
    a protocol violation and raises ValueError.
    """
    if len(free_rights) < len(unmatched):
        raise ValueError(
            f"{len(unmatched)} packets to deflect but only "
            f"{len(free_rights)} free directions"
        )
    return list(zip(unmatched, free_rights))
