"""Step records, per-step metrics, and run results.

The engine produces one :class:`StepRecord` per synchronous step.  The
record is the ground truth every analysis consumes: the potential
function updates, the Property 8 checker, the surface-arc counter and
all the validators read packet movements from it rather than keeping
private state, so they can also be replayed from a stored trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple, Union

from repro.core.packet import RestrictedType
from repro.mesh.directions import Direction
from repro.types import Node, PacketId, Step

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.report import RunAborted
    from repro.obs.telemetry import RunTelemetry


@dataclass(frozen=True)
class PacketStepInfo:
    """What one packet did during one step."""

    packet_id: PacketId
    node: Node
    destination: Node
    entry_direction: Optional[Direction]
    assigned_direction: Direction
    next_node: Node
    distance_before: int
    distance_after: int
    num_good: int
    restricted: bool
    restricted_type: RestrictedType

    @property
    def advanced(self) -> bool:
        """True when the step took the packet closer to its destination."""
        return self.distance_after < self.distance_before

    @property
    def deflected(self) -> bool:
        """True when the step took the packet away from its destination.

        On the mesh every hop changes the distance by exactly one, so a
        packet either advances or is deflected.
        """
        return not self.advanced


@dataclass(frozen=True)
class StepRecord:
    """Complete account of one synchronous step.

    Attributes:
        step: the step index ``t`` (the move happens from time ``t`` to
            time ``t + 1``).
        infos: movement info for every packet in flight during the step.
        delivered_after: packets whose move this step ended at their
            destination; they are absorbed at time ``t + 1``.
    """

    step: Step
    infos: Mapping[PacketId, PacketStepInfo]
    delivered_after: Tuple[PacketId, ...] = ()

    def node_groups(self) -> Dict[Node, List[PacketStepInfo]]:
        """Group the per-packet infos by the node they were routed at."""
        groups: Dict[Node, List[PacketStepInfo]] = {}
        for info in self.infos.values():
            groups.setdefault(info.node, []).append(info)
        for infos in groups.values():
            infos.sort(key=lambda i: i.packet_id)
        return groups

    @property
    def num_advancing(self) -> int:
        return sum(1 for info in self.infos.values() if info.advanced)

    @property
    def num_deflected(self) -> int:
        return sum(1 for info in self.infos.values() if info.deflected)


@dataclass(frozen=True)
class StepMetrics:
    """Aggregate statistics of one step, cheap enough to always collect."""

    step: Step
    in_flight: int
    advancing: int
    deflected: int
    delivered_total: int
    total_distance: int
    max_node_load: int
    bad_nodes: int
    packets_in_bad_nodes: int
    packets_in_good_nodes: int

    @property
    def b(self) -> int:
        """The paper's ``B(t)``: packets in bad nodes (Definition 9)."""
        return self.packets_in_bad_nodes

    @property
    def g(self) -> int:
        """The paper's ``G(t)``: packets in good nodes (Definition 9)."""
        return self.packets_in_good_nodes


@dataclass
class PacketOutcome:
    """Per-packet summary at the end of a run."""

    packet_id: PacketId
    source: Node
    destination: Node
    shortest_distance: int
    delivered_at: Optional[Step]
    hops: int
    advances: int
    deflections: int
    #: Step at which a fault event removed the packet, or None.
    dropped_at: Optional[Step] = None

    @property
    def delivered(self) -> bool:
        return self.delivered_at is not None

    @property
    def dropped(self) -> bool:
        return self.dropped_at is not None

    @property
    def stretch(self) -> Optional[float]:
        """Hops divided by shortest distance (1.0 means a shortest path).

        None for undelivered packets or zero-distance requests.
        """
        if self.delivered_at is None or self.shortest_distance == 0:
            return None
        return self.hops / self.shortest_distance


@dataclass
class RunResult:
    """Outcome of one simulation run.

    ``total_steps`` is the paper's running time: the number of steps
    that elapse until the last packet reaches its destination.  When
    ``completed`` is False the run hit its step limit with packets
    still in flight and ``total_steps`` is the limit.

    ``seed`` is the integer engine seed when one was given, or a
    reproducible ``"rng-state:..."`` digest when the caller handed the
    engine a ``random.Random`` instance (see
    :func:`repro.core.engine.describe_seed`).

    ``telemetry`` carries the run's lean-path counters
    (:class:`~repro.obs.telemetry.RunTelemetry`); identical whichever
    kernel loop ran, and ``None`` only for results deserialized from
    payloads that predate it.

    ``abort`` is the structured termination record
    (:class:`~repro.faults.report.RunAborted`) when a watchdog or step
    budget ended the run early; ``None`` for runs that drained
    normally.  ``completed`` is False whenever ``abort`` is set.
    """

    problem_name: str
    policy_name: str
    mesh_kind: str
    dimension: int
    side: int
    k: int
    completed: bool
    total_steps: int
    delivered: int
    step_metrics: List[StepMetrics] = field(default_factory=list)
    outcomes: List[PacketOutcome] = field(default_factory=list)
    records: Optional[List[StepRecord]] = None
    seed: Optional[Union[int, str]] = None
    telemetry: Optional["RunTelemetry"] = None
    abort: Optional["RunAborted"] = None

    @property
    def max_load_seen(self) -> int:
        """Largest per-node packet count observed during the run."""
        if not self.step_metrics:
            return 0
        return max(m.max_node_load for m in self.step_metrics)

    @property
    def total_deflections(self) -> int:
        return sum(o.deflections for o in self.outcomes)

    @property
    def total_advances(self) -> int:
        return sum(o.advances for o in self.outcomes)

    @property
    def average_delivery_time(self) -> float:
        """Mean ``delivered_at`` over delivered packets (0 when none)."""
        times = [o.delivered_at for o in self.outcomes if o.delivered_at is not None]
        if not times:
            return 0.0
        return sum(times) / len(times)

    @property
    def average_stretch(self) -> float:
        """Mean path stretch over delivered positive-distance packets."""
        stretches = [o.stretch for o in self.outcomes if o.stretch is not None]
        if not stretches:
            return 1.0
        return sum(stretches) / len(stretches)

    @property
    def total_dropped(self) -> int:
        """Packets removed by fault events during the run."""
        return sum(1 for o in self.outcomes if o.dropped_at is not None)

    @property
    def undelivered_ids(self) -> List[PacketId]:
        """Ids of packets neither delivered nor dropped, ascending."""
        return sorted(
            o.packet_id
            for o in self.outcomes
            if o.delivered_at is None and o.dropped_at is None
        )

    def summary(self) -> str:
        """One-line result summary for tables and logs."""
        if self.completed:
            status = "ok"
        elif self.abort is None or self.abort.reason == "step-limit":
            status = "TIMEOUT"
        else:
            status = self.abort.reason.upper()
        return (
            f"{self.policy_name} on {self.problem_name}: "
            f"T={self.total_steps} ({status}), k={self.k}, "
            f"delivered={self.delivered}, "
            f"deflections={self.total_deflections}, "
            f"stretch={self.average_stretch:.2f}"
        )
