"""The shared synchronous step kernel.

Every engine in the library executes the same per-step pipeline —
*inject → rank → arc-assign → move → deliver* — and the paper's
potential arguments (Theorem 17 in particular) are agnostic to which
engine runs it.  :class:`StepKernel` owns the one canonical
implementation of that pipeline; the four public engines
(:class:`~repro.core.engine.HotPotatoEngine`,
:class:`~repro.core.buffered_engine.BufferedEngine`,
:class:`~repro.dynamic.engine.DynamicEngine`,
:class:`~repro.dynamic.buffered.BufferedDynamicEngine`) are thin
configurations of it.

The kernel has two code paths with identical observable semantics:

* :meth:`StepKernel.run_lean` — the zero-observer main loop (formerly
  ``HotPotatoEngine._run_fast``): no :class:`StepRecord`/
  :class:`PacketStepInfo` construction, packet distances tracked
  incrementally, neighbor lookups served from the mesh's precomputed
  per-node arc tables.
* :meth:`StepKernel.step_instrumented` — one step that builds the full
  :class:`StepRecord`, runs validators per node, and returns a
  :class:`StepSummary`, for anything that layers on top (trace capture,
  potential accounting, protocol validation).

Everything that used to be a baked-in difference between engines is a
constructor knob:

* ``buffered`` — store-and-forward semantics: the policy's
  :meth:`~repro.core.policy.BufferedPolicy.forward` may return a
  *partial* assignment and unassigned packets wait in place.
* ``node_order`` — ``"insertion"`` visits occupied nodes in first-seen
  packet order (the batch hot-potato engine's historical order),
  ``"sorted"`` visits them in sorted node order (the buffered and
  dynamic engines' historical order).  The order is part of the
  deterministic contract: policies with private RNG streams consume
  them per node visit, so changing it changes runs.
* ``injection`` — an :class:`InjectionSource` that feeds new packets in
  at the top of every step (the dynamic engines); ``None`` for batch.
* ``set_entry_direction`` — whether moves record the entry arc on the
  packet.  The batch hot-potato engine always did; the dynamic engines
  historically never did, and policies with ``deflection="reverse"``
  read the field, so this stays configurable to preserve results.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections import defaultdict
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
)

from repro.core.metrics import (
    PacketOutcome,
    PacketStepInfo,
    RunResult,
    StepMetrics,
    StepRecord,
)
from repro.core.node_view import NodeView
from repro.core.packet import Packet
from repro.core.policy import Assignment, BufferedPolicy, RoutingPolicy
from repro.core.problem import RoutingProblem
from repro.core.validation import CapacityValidator, StepValidator
from repro.exceptions import ArcAssignmentError
from repro.mesh.directions import Direction
from repro.mesh.topology import Mesh
from repro.types import Node, PacketId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.report import RunAborted
    from repro.faults.state import ActiveFaults
    from repro.faults.watchdog import RunWatchdog
    from repro.obs.telemetry import RunTelemetry

AnyPolicy = Union[RoutingPolicy, BufferedPolicy]

#: Per-packet pending move: (next node, direction, advanced, restricted).
_PendingMove = Tuple[Node, Direction, bool, bool]


def default_step_limit(problem: RoutingProblem) -> int:
    """A generous default step budget, shared by all batch engines.

    Greedy algorithms on meshes are known to finish within
    ``2(k - 1) + d_max`` steps ([BTS], discussed in Section 6.1); the
    default allows eight times that plus slack so that a timeout
    genuinely signals something wrong (or an intentional livelock).
    """
    return max(256, 8 * (2 * problem.k + problem.d_max) + 64)


@dataclass(frozen=True)
class StepSummary:
    """Everything one kernel step produced, engine-agnostically.

    The batch engines convert summaries to
    :class:`~repro.core.metrics.StepMetrics`; the dynamic engines
    convert them to :class:`~repro.dynamic.stats.StepSample`.  ``moved``
    equals ``routed`` under hot-potato semantics and may be smaller
    under buffered semantics (unassigned packets wait).
    """

    step: int
    generated: int
    injected: int
    routed: int
    moved: int
    advancing: int
    delivered: int
    delivered_total: int
    total_distance: int
    max_node_load: int
    bad_nodes: int
    packets_in_bad_nodes: int
    backlog: int
    #: Packets removed by fault events this step (0 without faults).
    dropped: int = 0


def step_metrics_from_summary(summary: StepSummary) -> StepMetrics:
    """The batch engines' :class:`StepMetrics` view of a step."""
    return StepMetrics(
        step=summary.step,
        in_flight=summary.routed,
        advancing=summary.advancing,
        deflected=summary.moved - summary.advancing,
        delivered_total=summary.delivered_total,
        total_distance=summary.total_distance,
        max_node_load=summary.max_node_load,
        bad_nodes=summary.bad_nodes,
        packets_in_bad_nodes=summary.packets_in_bad_nodes,
        packets_in_good_nodes=summary.routed - summary.packets_in_bad_nodes,
    )


class InjectionSource(ABC):
    """Feeds new packets into a kernel run (the dynamic engines).

    Implementations own the demand process and the packet-id counter;
    the kernel only sees packets appended to ``in_flight``.  Concrete
    sources live in :mod:`repro.dynamic.sources` — the core layer
    defines the interface so it never imports the dynamic layer.
    """

    def prepare(self, mesh: Mesh, rng: random.Random) -> None:
        """Called once before the first step."""

    @abstractmethod
    def admit(self, time: int, in_flight: List[Packet]) -> Tuple[int, int]:
        """Generate demand for ``time`` and inject what fits.

        Injected packets are appended to ``in_flight`` (the kernel
        seeds their distance bookkeeping from the list tail).  Returns
        ``(generated, injected)`` counts for this step.
        """

    def backlog_size(self) -> int:
        """Packets generated but not yet injected (0 when unbuffered)."""
        return 0


def lean_equivalent(
    validators: Sequence[StepValidator],
    observers: Sequence[object],
    record_steps: bool,
) -> bool:
    """True when :meth:`StepKernel.run_lean` is observably identical to
    repeated instrumented steps: nobody consumes the per-step records
    (no recording, no step-consuming observers) and no validator beyond
    the capacity check runs.  Observers that declare
    ``needs_steps = False`` (run-boundary consumers like
    :class:`~repro.obs.manifest.JsonlRunLogger`) do not disqualify the
    lean loop — they only see ``on_run_start``/``on_run_end``, which
    the engines fire on both paths.  The capacity check itself can
    never fire on a validated problem — arrivals are bounded by
    in-degree — and an inconsistent assignment is re-raised through the
    strict checker, so the lean loop surfaces the exact
    instrumented-loop errors."""
    return (
        not record_steps
        and all(not getattr(o, "needs_steps", True) for o in observers)
        and all(type(v) is CapacityValidator for v in validators)
    )


class PhaseSink(Protocol):
    """Where :meth:`StepKernel.run_profiled` reads its clock and writes
    per-step phase durations.

    The kernel deliberately owns no clock: wall time in engine code is
    a determinism hazard (lint rule DET106), so the concrete sink —
    :class:`repro.obs.profiler.PhaseProfiler` — supplies the timestamp
    source from the sanctioned :mod:`repro.obs.clock` module and the
    kernel only does arithmetic on the integers it returns.
    """

    def clock(self) -> int:
        """A monotonic nanosecond timestamp."""
        ...

    def record_step(
        self,
        inject: int,
        rank: int,
        arc_assign: int,
        move: int,
        deliver: int,
    ) -> None:
        """Accumulate one step's per-phase durations (nanoseconds)."""
        ...


class StepKernel:
    """One synchronous routing loop, configured per engine.

    The kernel owns the mutable simulation state — ``time``,
    ``in_flight``, the cumulative delivery count and the incremental
    per-packet distance table — while the engine that wraps it owns
    run-level concerns: policy preparation, result construction,
    observers, timeout policy, statistics.

    Args:
        mesh: the network.
        policy: a :class:`~repro.core.policy.RoutingPolicy` (with
            ``buffered=False``) or :class:`BufferedPolicy` (``True``).
        buffered: store-and-forward semantics (partial assignments,
            waiting allowed, no per-packet step flags).
        node_order: ``"insertion"`` or ``"sorted"`` (see module docs).
        injection: optional per-step packet source (dynamic engines).
        set_entry_direction: record each move's arc on the packet.
        record_paths: append each move to ``packet.path``.
        emit: per-step :class:`StepSummary` sink used by the lean loop
            (the instrumented step *returns* its summary instead).
        on_deliver: called with each packet the moment it is absorbed
            (the dynamic engines record latency statistics here).
        telemetry: optional :class:`~repro.obs.telemetry.RunTelemetry`
            whose integer counters every loop updates inline — the
            lean loops from local variables, the instrumented step from
            its summary — with bit-identical values on all paths.
        faults: optional :class:`~repro.faults.state.ActiveFaults`.
            When set, every step starts with the fault phase (mask
            advance + packet drops) and routing consults the masked
            mesh view; ``run_lean`` transparently switches to its
            guarded twin.  ``None`` leaves every loop untouched —
            the no-fault paths stay bit-identical to before.
        watchdog: optional :class:`~repro.faults.watchdog.RunWatchdog`
            checked at the top of every step by the run loops; a
            verdict lands in :attr:`abort` and the loop exits.
    """

    def __init__(
        self,
        mesh: Mesh,
        policy: AnyPolicy,
        *,
        buffered: bool = False,
        node_order: str = "insertion",
        injection: Optional[InjectionSource] = None,
        set_entry_direction: bool = True,
        record_paths: bool = False,
        emit: Optional[Callable[[StepSummary], None]] = None,
        on_deliver: Optional[Callable[[Packet], None]] = None,
        telemetry: Optional["RunTelemetry"] = None,
        faults: Optional["ActiveFaults"] = None,
        watchdog: Optional["RunWatchdog"] = None,
    ) -> None:
        if node_order not in ("insertion", "sorted"):
            raise ValueError(
                f"node_order must be 'insertion' or 'sorted', "
                f"got {node_order!r}"
            )
        if buffered and not hasattr(policy, "forward"):
            raise TypeError(
                f"buffered kernel needs a BufferedPolicy with .forward(); "
                f"got {type(policy).__name__}"
            )
        if not buffered and not hasattr(policy, "assign"):
            raise TypeError(
                f"hot-potato kernel needs a RoutingPolicy with .assign(); "
                f"got {type(policy).__name__}"
            )
        self.mesh = mesh
        self.policy = policy
        self.buffered = buffered
        self.sorted_order = node_order == "sorted"
        self.injection = injection
        self.set_entry_direction = set_entry_direction
        self.record_paths = record_paths
        self.emit = emit
        self.on_deliver = on_deliver
        self.telemetry = telemetry
        self.faults = faults
        self.watchdog = watchdog
        #: Set by a watchdog verdict; run loops exit when it appears.
        self.abort: Optional["RunAborted"] = None

        self.time = 0
        self.in_flight: List[Packet] = []
        self.delivered_total = 0
        self._dist: Dict[PacketId, int] = {}

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def seed_packets(
        self, packets: Iterable[Packet], delivered_total: int = 0
    ) -> None:
        """Install the initial in-flight population (batch engines).

        ``delivered_total`` carries zero-distance requests the engine
        absorbed at time 0, so cumulative delivery counts include them.
        """
        self.in_flight = list(packets)
        self.delivered_total = delivered_total
        distance = self.mesh.distance
        self._dist = {
            p.id: distance(p.location, p.destination) for p in self.in_flight
        }

    def snapshot(self) -> Dict[str, Any]:
        """The kernel-owned run state as a JSON-safe dict (packets by
        id reference; see :mod:`repro.snapshot.state`).  Engines embed
        this in their full snapshots alongside the packet objects."""
        from repro.snapshot.state import kernel_state

        return kernel_state(self)

    def resume_from(
        self,
        payload: Dict[str, Any],
        packets_by_id: Dict[PacketId, Packet],
    ) -> None:
        """Overwrite this kernel with checkpointed state; the inverse
        of :meth:`snapshot` given the restored packet objects."""
        from repro.snapshot.state import restore_kernel_state

        restore_kernel_state(self, payload, packets_by_id)

    def _decide(self) -> Callable[[NodeView], Assignment]:
        """The per-node decision function for this discipline."""
        if self.buffered:
            assert isinstance(self.policy, BufferedPolicy)
            return self.policy.forward
        assert isinstance(self.policy, RoutingPolicy)
        return self.policy.assign

    def _admit(self) -> Tuple[int, int, int]:
        """Run the injection phase; returns (generated, injected, backlog)."""
        source = self.injection
        if source is None:
            return 0, 0, 0
        before = len(self.in_flight)
        generated, injected = source.admit(self.time, self.in_flight)
        if injected:
            distance = self.mesh.distance
            dist = self._dist
            for packet in self.in_flight[before:]:
                dist[packet.id] = distance(packet.location, packet.destination)
        return generated, injected, source.backlog_size()

    def _apply_faults(self) -> int:
        """The fault phase: advance the mask, remove this step's victims.

        Runs at the very top of a step, before injection, on both the
        guarded lean loop and the instrumented step.  Victim selection
        (packets at failed nodes, plus scheduled drop events, lowest
        ids first) is delegated to
        :meth:`~repro.faults.state.ActiveFaults.select_drops`; this
        method applies the removal to the kernel's state.  Returns the
        number of packets dropped.
        """
        faults = self.faults
        if faults is None:
            return 0
        faults.advance(self.time)
        victims = faults.select_drops(self.time, self.in_flight)
        if not victims:
            return 0
        victim_ids = {p.id for p in victims}
        self.in_flight = [
            p for p in self.in_flight if p.id not in victim_ids
        ]
        dist = self._dist
        now = self.time
        for packet in victims:
            packet.dropped_at = now
            del dist[packet.id]
            faults.dropped_ids.append(packet.id)
        return len(victims)

    # ------------------------------------------------------------------
    # The lean loop (formerly HotPotatoEngine._run_fast)
    # ------------------------------------------------------------------

    def run_lean(self, until: int) -> None:
        """Run steps until ``time == until`` with zero instrumentation.

        Semantically identical to repeated :meth:`step_instrumented`
        calls (same packet outcomes, same :class:`StepSummary` values,
        same policy RNG stream) but with the per-step allocation churn
        stripped out: no :class:`PacketStepInfo`/:class:`StepRecord`
        objects, packet distances tracked incrementally where the mesh
        guarantees the ±1-per-hop invariant (``Mesh.unit_deflections``;
        a good hop is always exactly -1, but e.g. an odd-side torus
        deflection can leave the wrapped distance unchanged, so those
        meshes recompute after deflections), and neighbor lookups
        served from the mesh's precomputed per-node arc tables.
        Delivery is decided by destination comparison — never by the
        distance counter.

        Batch kernels (no injection) stop early once ``in_flight``
        drains; injecting kernels run the full horizon.

        With faults or a watchdog configured the call transparently
        dispatches to :meth:`_run_lean_guarded`; this loop itself
        never checks for them, so pristine runs pay nothing.
        """
        if self.faults is not None or self.watchdog is not None:
            self._run_lean_guarded(until)
            return
        mesh = self.mesh
        dimension = mesh.dimension
        node_arcs = mesh.node_arcs
        unit_deflections = mesh.unit_deflections
        distance = mesh.distance
        decide = self._decide()
        buffered = self.buffered
        sorted_order = self.sorted_order
        set_entry = self.set_entry_direction
        record_paths = self.record_paths
        emit = self.emit
        on_deliver = self.on_deliver
        stop_when_empty = self.injection is None
        dist = self._dist
        tel = self.telemetry

        while self.time < until:
            if stop_when_empty and not self.in_flight:
                break
            generated, injected, backlog = self._admit()
            step_index = self.time
            groups: Dict[Node, List[Packet]] = defaultdict(list)
            for packet in self.in_flight:
                groups[packet.location].append(packet)
            routed = len(self.in_flight)

            # Phase 1 — per-node decisions.  The visit order (insertion
            # vs. sorted, see the class docs) must stay in lockstep with
            # step_instrumented so both paths consume any policy RNG
            # identically.
            pending: Dict[PacketId, _PendingMove] = {}
            advancing = 0
            total_distance = 0
            max_load = 0
            bad_nodes = 0
            packets_in_bad = 0
            node_items: Iterable[Tuple[Node, List[Packet]]] = (
                [(node, groups[node]) for node in sorted(groups)]
                if sorted_order
                else groups.items()
            )
            # No pre-assign capacity raise here: under hot-potato rules
            # a load above the node's degree makes a consistent
            # assignment impossible (pigeonhole), so the bad-assignment
            # fallback below raises the same ArcAssignmentError the
            # instrumented loop would — after the policy ran, with the
            # same RNG consumption.
            for node, packets in node_items:
                load = len(packets)
                arcs = node_arcs(node)
                if load > max_load:
                    max_load = load
                if load > dimension:
                    bad_nodes += 1
                    packets_in_bad += load
                view = NodeView(mesh, node, step_index, packets)
                assignment = decide(view)
                by_direction = arcs.by_direction
                good_map = view._good
                seen = set()
                if buffered:
                    for packet_id, direction in assignment.items():
                        next_node = by_direction.get(direction)
                        if (
                            packet_id not in good_map
                            or direction in seen
                            or next_node is None
                        ):
                            # Rebuild through the strict checker so the
                            # error matches the instrumented path.
                            self.build_infos(view, assignment)
                            raise ArcAssignmentError(
                                f"step {step_index}: inconsistent buffered "
                                f"assignment at {node} (kernel check)"
                            )
                        seen.add(direction)
                        advanced = direction in good_map[packet_id]
                        pending[packet_id] = (
                            next_node,
                            direction,
                            advanced,
                            False,
                        )
                        if advanced:
                            advancing += 1
                    for packet in view.packets:
                        total_distance += dist[packet.id]
                else:
                    for packet in view.packets:
                        direction = assignment.get(packet.id)
                        next_node = (
                            by_direction.get(direction)
                            if direction is not None
                            else None
                        )
                        if (
                            direction is None
                            or direction in seen
                            or next_node is None
                            or len(assignment) != load
                        ):
                            # Bad policy output: rebuild through the
                            # strict checker so the error matches the
                            # instrumented path.
                            self.build_infos(view, assignment)
                            raise ArcAssignmentError(
                                f"step {step_index}: inconsistent assignment "
                                f"at {node} (kernel fast-path check)"
                            )
                        seen.add(direction)
                        good = good_map[packet.id]
                        advanced = direction in good
                        pending[packet.id] = (
                            next_node,
                            direction,
                            advanced,
                            len(good) == 1,
                        )
                        if advanced:
                            advancing += 1
                        total_distance += dist[packet.id]

            # Phase 2 — move, in in_flight order, so delivery order and
            # the next step's grouping are identical to the
            # instrumented path.
            self.time += 1
            now = self.time
            delivered_count = 0
            remaining: List[Packet] = []
            if buffered:
                pending_get = pending.get
                for packet in self.in_flight:
                    entry = pending_get(packet.id)
                    if entry is not None:
                        next_node, direction, advanced, _ = entry
                        packet.location = next_node
                        packet.hops += 1
                        if advanced:
                            # A good hop reduces the distance by exactly
                            # one (Definition 5), on every mesh kind.
                            packet.advances += 1
                            dist[packet.id] -= 1
                        else:
                            packet.deflections += 1
                            if unit_deflections:
                                dist[packet.id] += 1
                            else:
                                dist[packet.id] = distance(
                                    next_node, packet.destination
                                )
                        if record_paths:
                            packet.path.append(next_node)
                    if packet.location == packet.destination:
                        packet.delivered_at = now
                        delivered_count += 1
                        del dist[packet.id]
                        if on_deliver is not None:
                            on_deliver(packet)
                    else:
                        remaining.append(packet)
            else:
                for packet in self.in_flight:
                    next_node, direction, advanced, restricted = pending[
                        packet.id
                    ]
                    packet.restricted_last_step = restricted
                    packet.advanced_last_step = advanced
                    packet.location = next_node
                    if set_entry:
                        packet.entry_direction = direction
                    packet.hops += 1
                    if advanced:
                        packet.advances += 1
                        dist[packet.id] -= 1
                    else:
                        packet.deflections += 1
                        if unit_deflections:
                            dist[packet.id] += 1
                        else:
                            # E.g. odd-side torus: a bad hop out of a
                            # maximal per-axis offset leaves the wrapped
                            # distance unchanged, so recompute exactly.
                            dist[packet.id] = distance(
                                next_node, packet.destination
                            )
                    if record_paths:
                        packet.path.append(next_node)
                    if next_node == packet.destination:
                        packet.delivered_at = now
                        delivered_count += 1
                        del dist[packet.id]
                        if on_deliver is not None:
                            on_deliver(packet)
                    else:
                        remaining.append(packet)
            self.in_flight = remaining
            self.delivered_total += delivered_count

            if tel is not None:
                # Inline note_summary: same arithmetic, no summary
                # object on the hot path.
                tel.steps += 1
                tel.packet_steps += routed
                tel.generated += generated
                tel.injected += injected
                tel.delivered += delivered_count
                tel.advances += advancing
                tel.deflections += len(pending) - advancing
                if routed > tel.max_in_flight:
                    tel.max_in_flight = routed
                if max_load > tel.max_node_load:
                    tel.max_node_load = max_load
                if backlog > tel.max_backlog:
                    tel.max_backlog = backlog

            if emit is not None:
                emit(
                    StepSummary(
                        step=step_index,
                        generated=generated,
                        injected=injected,
                        routed=routed,
                        moved=len(pending),
                        advancing=advancing,
                        delivered=delivered_count,
                        delivered_total=self.delivered_total,
                        total_distance=total_distance,
                        max_node_load=max_load,
                        bad_nodes=bad_nodes,
                        packets_in_bad_nodes=packets_in_bad,
                        backlog=backlog,
                    )
                )

    # ------------------------------------------------------------------
    # The guarded lean loop (faults + watchdog)
    # ------------------------------------------------------------------

    def _run_lean_guarded(self, until: int) -> None:
        """The lean loop's fault/watchdog-aware twin.

        Same per-step semantics as :meth:`run_lean` — same node visit
        order, same policy RNG stream, same summary arithmetic — plus
        three guarded phases:

        * a watchdog check at the top of every step (a verdict lands
          in :attr:`abort` and the loop exits);
        * the fault phase (:meth:`_apply_faults`) before injection;
        * graceful degradation — when masking leaves a node with fewer
          live out arcs than packets, the excess packets (highest ids)
          wait in place for the step instead of making a consistent
          hot-potato assignment impossible.  Waiting only ever happens
          while something is actually down; a pristine mask keeps the
          strict pigeonhole error of the plain loop.

        Routing consults the masked mesh view, so policies never see a
        down arc.  With an empty schedule the masked tables *are* the
        base tables and every branch below reduces to the plain lean
        loop — the chaos-differential suite pins that bit-identity.
        """
        faults = self.faults
        watchdog = self.watchdog
        mesh = self.mesh
        mesh_v = faults.view if faults is not None else mesh
        dimension = mesh.dimension
        node_arcs = mesh_v.node_arcs
        unit_deflections = mesh.unit_deflections
        distance = mesh.distance
        decide = self._decide()
        buffered = self.buffered
        sorted_order = self.sorted_order
        set_entry = self.set_entry_direction
        record_paths = self.record_paths
        emit = self.emit
        on_deliver = self.on_deliver
        stop_when_empty = self.injection is None
        dist = self._dist
        tel = self.telemetry

        while self.time < until:
            if stop_when_empty and not self.in_flight:
                break
            if watchdog is not None:
                verdict = watchdog.check(self)
                if verdict is not None:
                    self.abort = verdict
                    break
            dropped_now = self._apply_faults()
            generated, injected, backlog = self._admit()
            step_index = self.time
            groups: Dict[Node, List[Packet]] = defaultdict(list)
            for packet in self.in_flight:
                groups[packet.location].append(packet)
            routed = len(self.in_flight)

            pending: Dict[PacketId, _PendingMove] = {}
            advancing = 0
            total_distance = 0
            max_load = 0
            bad_nodes = 0
            packets_in_bad = 0
            node_items: Iterable[Tuple[Node, List[Packet]]] = (
                [(node, groups[node]) for node in sorted(groups)]
                if sorted_order
                else groups.items()
            )
            for node, packets in node_items:
                load = len(packets)
                arcs = node_arcs(node)
                if load > max_load:
                    max_load = load
                if load > dimension:
                    bad_nodes += 1
                    packets_in_bad += load
                view = NodeView(mesh_v, node, step_index, packets)
                good_map = view._good
                for packet in view.packets:
                    total_distance += dist[packet.id]
                decide_view = view
                if (
                    not buffered
                    and faults is not None
                    and faults.anything_down
                    and load > arcs.degree
                ):
                    # Graceful degradation (only reachable while the
                    # mask actually hides something): the excess
                    # packets wait in place this step.
                    live = arcs.degree
                    for packet in view.packets[live:]:
                        packet.advanced_last_step = False
                        packet.restricted_last_step = (
                            len(good_map[packet.id]) == 1
                        )
                    decide_view = NodeView(
                        mesh_v, node, step_index, list(view.packets[:live])
                    )
                    if not decide_view.packets:
                        continue
                assignment = decide(decide_view)
                by_direction = arcs.by_direction
                seen = set()
                if buffered:
                    if faults is not None and faults.anything_down:
                        # Store-and-forward degradation: a forward onto
                        # an arc that exists but is currently down just
                        # waits (the packet stays buffered), exactly as
                        # if the policy had not forwarded it.  Arcs that
                        # leave the mesh outright still fall through to
                        # the strict check below.
                        base_bd = mesh.node_arcs(node).by_direction
                        assignment = {
                            pid: d
                            for pid, d in assignment.items()
                            if by_direction.get(d) is not None
                            or base_bd.get(d) is None
                        }
                    for packet_id, direction in assignment.items():
                        next_node = by_direction.get(direction)
                        if (
                            packet_id not in good_map
                            or direction in seen
                            or next_node is None
                        ):
                            self.build_infos(decide_view, assignment)
                            raise ArcAssignmentError(
                                f"step {step_index}: inconsistent buffered "
                                f"assignment at {node} (kernel check)"
                            )
                        seen.add(direction)
                        advanced = direction in good_map[packet_id]
                        pending[packet_id] = (
                            next_node,
                            direction,
                            advanced,
                            False,
                        )
                        if advanced:
                            advancing += 1
                else:
                    load_movable = len(decide_view.packets)
                    for packet in decide_view.packets:
                        direction = assignment.get(packet.id)
                        next_node = (
                            by_direction.get(direction)
                            if direction is not None
                            else None
                        )
                        if (
                            direction is None
                            or direction in seen
                            or next_node is None
                            or len(assignment) != load_movable
                        ):
                            self.build_infos(decide_view, assignment)
                            raise ArcAssignmentError(
                                f"step {step_index}: inconsistent assignment "
                                f"at {node} (kernel fast-path check)"
                            )
                        seen.add(direction)
                        good = good_map[packet.id]
                        advanced = direction in good
                        pending[packet.id] = (
                            next_node,
                            direction,
                            advanced,
                            len(good) == 1,
                        )
                        if advanced:
                            advancing += 1

            # Move phase: one interleaved pass in in_flight order, as in
            # the lean loop, with waiting packets (absent from
            # ``pending``) left in place.
            self.time += 1
            now = self.time
            delivered_count = 0
            remaining: List[Packet] = []
            pending_get = pending.get
            for packet in self.in_flight:
                entry = pending_get(packet.id)
                if entry is not None:
                    next_node, direction, advanced, restricted = entry
                    if not buffered:
                        packet.restricted_last_step = restricted
                        packet.advanced_last_step = advanced
                    packet.location = next_node
                    if set_entry:
                        packet.entry_direction = direction
                    packet.hops += 1
                    if advanced:
                        packet.advances += 1
                        dist[packet.id] -= 1
                    else:
                        packet.deflections += 1
                        if unit_deflections:
                            dist[packet.id] += 1
                        else:
                            dist[packet.id] = distance(
                                next_node, packet.destination
                            )
                    if record_paths:
                        packet.path.append(next_node)
                if packet.location == packet.destination:
                    packet.delivered_at = now
                    delivered_count += 1
                    del dist[packet.id]
                    if on_deliver is not None:
                        on_deliver(packet)
                else:
                    remaining.append(packet)
            self.in_flight = remaining
            self.delivered_total += delivered_count

            if tel is not None:
                tel.steps += 1
                tel.packet_steps += routed
                tel.generated += generated
                tel.injected += injected
                tel.delivered += delivered_count
                tel.dropped += dropped_now
                tel.advances += advancing
                tel.deflections += len(pending) - advancing
                if routed > tel.max_in_flight:
                    tel.max_in_flight = routed
                if max_load > tel.max_node_load:
                    tel.max_node_load = max_load
                if backlog > tel.max_backlog:
                    tel.max_backlog = backlog

            if emit is not None:
                emit(
                    StepSummary(
                        step=step_index,
                        generated=generated,
                        injected=injected,
                        routed=routed,
                        moved=len(pending),
                        advancing=advancing,
                        delivered=delivered_count,
                        delivered_total=self.delivered_total,
                        total_distance=total_distance,
                        max_node_load=max_load,
                        bad_nodes=bad_nodes,
                        packets_in_bad_nodes=packets_in_bad,
                        backlog=backlog,
                        dropped=dropped_now,
                    )
                )

    # ------------------------------------------------------------------
    # The profiled loop (lean semantics + phase timing)
    # ------------------------------------------------------------------

    def run_profiled(self, until: int, profiler: PhaseSink) -> None:
        """:meth:`run_lean` with per-phase wall-clock accounting.

        Routing semantics are byte-for-byte those of the lean loop —
        same decisions, same RNG consumption, same emitted summaries
        and telemetry — plus timestamp reads around each pipeline
        phase, reported to ``profiler`` once per step.  The only
        structural difference is that move and deliver run as two
        passes over ``in_flight`` instead of one interleaved pass, so
        each phase is separately timeable; per-packet move effects are
        independent and delivery scans both ways in ``in_flight``
        order, so the split is unobservable (the differential tests
        pin profiled == lean == instrumented).

        Kept next to :meth:`run_lean` deliberately: any change to one
        loop must be mirrored in the other.

        Profiling a faulted or watchdog-guarded run is not supported —
        the engines route those through the guarded lean loop or the
        instrumented step instead.
        """
        if self.faults is not None or self.watchdog is not None:
            raise ValueError(
                "run_profiled does not support faults or watchdogs; "
                "drop the profiler or the fault schedule"
            )
        mesh = self.mesh
        dimension = mesh.dimension
        node_arcs = mesh.node_arcs
        unit_deflections = mesh.unit_deflections
        distance = mesh.distance
        decide = self._decide()
        buffered = self.buffered
        sorted_order = self.sorted_order
        set_entry = self.set_entry_direction
        record_paths = self.record_paths
        emit = self.emit
        on_deliver = self.on_deliver
        stop_when_empty = self.injection is None
        dist = self._dist
        tel = self.telemetry
        clock = profiler.clock

        while self.time < until:
            if stop_when_empty and not self.in_flight:
                break
            t_start = clock()
            generated, injected, backlog = self._admit()
            t_injected = clock()

            step_index = self.time
            groups: Dict[Node, List[Packet]] = defaultdict(list)
            for packet in self.in_flight:
                groups[packet.location].append(packet)
            routed = len(self.in_flight)
            pending: Dict[PacketId, _PendingMove] = {}
            advancing = 0
            total_distance = 0
            max_load = 0
            bad_nodes = 0
            packets_in_bad = 0
            node_items: Iterable[Tuple[Node, List[Packet]]] = (
                [(node, groups[node]) for node in sorted(groups)]
                if sorted_order
                else groups.items()
            )
            rank_ns = clock() - t_injected  # grouping is decision prep
            assign_ns = 0
            for node, packets in node_items:
                load = len(packets)
                arcs = node_arcs(node)
                if load > max_load:
                    max_load = load
                if load > dimension:
                    bad_nodes += 1
                    packets_in_bad += load
                t_node = clock()
                view = NodeView(mesh, node, step_index, packets)
                assignment = decide(view)
                t_decided = clock()
                rank_ns += t_decided - t_node
                by_direction = arcs.by_direction
                good_map = view._good
                seen = set()
                if buffered:
                    for packet_id, direction in assignment.items():
                        next_node = by_direction.get(direction)
                        if (
                            packet_id not in good_map
                            or direction in seen
                            or next_node is None
                        ):
                            self.build_infos(view, assignment)
                            raise ArcAssignmentError(
                                f"step {step_index}: inconsistent buffered "
                                f"assignment at {node} (kernel check)"
                            )
                        seen.add(direction)
                        advanced = direction in good_map[packet_id]
                        pending[packet_id] = (
                            next_node,
                            direction,
                            advanced,
                            False,
                        )
                        if advanced:
                            advancing += 1
                    for packet in view.packets:
                        total_distance += dist[packet.id]
                else:
                    for packet in view.packets:
                        direction = assignment.get(packet.id)
                        next_node = (
                            by_direction.get(direction)
                            if direction is not None
                            else None
                        )
                        if (
                            direction is None
                            or direction in seen
                            or next_node is None
                            or len(assignment) != load
                        ):
                            self.build_infos(view, assignment)
                            raise ArcAssignmentError(
                                f"step {step_index}: inconsistent assignment "
                                f"at {node} (kernel fast-path check)"
                            )
                        seen.add(direction)
                        good = good_map[packet.id]
                        advanced = direction in good
                        pending[packet.id] = (
                            next_node,
                            direction,
                            advanced,
                            len(good) == 1,
                        )
                        if advanced:
                            advancing += 1
                        total_distance += dist[packet.id]
                assign_ns += clock() - t_decided

            # Move pass (phase 4), then delivery pass (phase 5), both
            # in in_flight order — together equivalent to the lean
            # loop's single interleaved pass.
            self.time += 1
            now = self.time
            t_move = clock()
            if buffered:
                pending_get = pending.get
                for packet in self.in_flight:
                    entry = pending_get(packet.id)
                    if entry is None:
                        continue
                    next_node, direction, advanced, _ = entry
                    packet.location = next_node
                    packet.hops += 1
                    if advanced:
                        packet.advances += 1
                        dist[packet.id] -= 1
                    else:
                        packet.deflections += 1
                        if unit_deflections:
                            dist[packet.id] += 1
                        else:
                            dist[packet.id] = distance(
                                next_node, packet.destination
                            )
                    if record_paths:
                        packet.path.append(next_node)
            else:
                for packet in self.in_flight:
                    next_node, direction, advanced, restricted = pending[
                        packet.id
                    ]
                    packet.restricted_last_step = restricted
                    packet.advanced_last_step = advanced
                    packet.location = next_node
                    if set_entry:
                        packet.entry_direction = direction
                    packet.hops += 1
                    if advanced:
                        packet.advances += 1
                        dist[packet.id] -= 1
                    else:
                        packet.deflections += 1
                        if unit_deflections:
                            dist[packet.id] += 1
                        else:
                            dist[packet.id] = distance(
                                next_node, packet.destination
                            )
                    if record_paths:
                        packet.path.append(next_node)
            t_moved = clock()

            delivered_count = 0
            remaining: List[Packet] = []
            for packet in self.in_flight:
                if packet.location == packet.destination:
                    packet.delivered_at = now
                    delivered_count += 1
                    del dist[packet.id]
                    if on_deliver is not None:
                        on_deliver(packet)
                else:
                    remaining.append(packet)
            self.in_flight = remaining
            self.delivered_total += delivered_count
            t_delivered = clock()
            profiler.record_step(
                t_injected - t_start,
                rank_ns,
                assign_ns,
                t_moved - t_move,
                t_delivered - t_moved,
            )

            if tel is not None:
                tel.steps += 1
                tel.packet_steps += routed
                tel.generated += generated
                tel.injected += injected
                tel.delivered += delivered_count
                tel.advances += advancing
                tel.deflections += len(pending) - advancing
                if routed > tel.max_in_flight:
                    tel.max_in_flight = routed
                if max_load > tel.max_node_load:
                    tel.max_node_load = max_load
                if backlog > tel.max_backlog:
                    tel.max_backlog = backlog

            if emit is not None:
                emit(
                    StepSummary(
                        step=step_index,
                        generated=generated,
                        injected=injected,
                        routed=routed,
                        moved=len(pending),
                        advancing=advancing,
                        delivered=delivered_count,
                        delivered_total=self.delivered_total,
                        total_distance=total_distance,
                        max_node_load=max_load,
                        bad_nodes=bad_nodes,
                        packets_in_bad_nodes=packets_in_bad,
                        backlog=backlog,
                    )
                )

    # ------------------------------------------------------------------
    # The instrumented step (formerly _route/_apply_assignment/_move)
    # ------------------------------------------------------------------

    def step_instrumented(
        self, validators: Sequence[StepValidator] = ()
    ) -> Tuple[StepRecord, StepSummary]:
        """Execute one step, building the full record and validating."""
        dropped_now = self._apply_faults()
        generated, injected, backlog = self._admit()
        step_index = self.time
        mesh = self.mesh
        faults = self.faults
        mesh_v = faults.view if faults is not None else mesh
        dimension = mesh.dimension
        decide = self._decide()
        dist = self._dist

        groups: Dict[Node, List[Packet]] = defaultdict(list)
        for packet in self.in_flight:
            groups[packet.location].append(packet)
        routed = len(self.in_flight)

        infos: Dict[PacketId, PacketStepInfo] = {}
        total_distance = 0
        max_load = 0
        bad_nodes = 0
        packets_in_bad = 0
        # Visit nodes in the configured order.  With "insertion",
        # in_flight is kept in ascending packet-id order by the move
        # phase, so the first packet seen at each node — and hence the
        # node visit order — is a pure function of the previous step's
        # outcome: deterministic and reproducible without re-sorting
        # every node tuple each step (which profiling showed as
        # measurable overhead on large meshes).
        node_items: Iterable[Tuple[Node, List[Packet]]] = (
            [(node, groups[node]) for node in sorted(groups)]
            if self.sorted_order
            else groups.items()
        )
        for node, node_packets in node_items:
            load = len(node_packets)
            if load > max_load:
                max_load = load
            if load > dimension:
                bad_nodes += 1
                packets_in_bad += load
            view = NodeView(mesh_v, node, step_index, node_packets)
            for packet in view.packets:
                total_distance += dist[packet.id]
            decide_view = view
            if (
                not self.buffered
                and faults is not None
                and faults.anything_down
                and load > mesh_v.node_arcs(node).degree
            ):
                # Graceful degradation, mirroring _run_lean_guarded:
                # excess packets (highest ids) wait in place.
                live = mesh_v.node_arcs(node).degree
                good_map = view._good
                for packet in view.packets[live:]:
                    packet.advanced_last_step = False
                    packet.restricted_last_step = (
                        len(good_map[packet.id]) == 1
                    )
                decide_view = NodeView(
                    mesh_v, node, step_index, list(view.packets[:live])
                )
                if not decide_view.packets:
                    continue
            assignment = decide(decide_view)
            if (
                self.buffered
                and faults is not None
                and faults.anything_down
            ):
                # Store-and-forward degradation, mirroring the guarded
                # lean loop: forwards onto down-but-real arcs wait.
                live_bd = mesh_v.node_arcs(node).by_direction
                base_bd = mesh.node_arcs(node).by_direction
                assignment = {
                    pid: d
                    for pid, d in assignment.items()
                    if live_bd.get(d) is not None or base_bd.get(d) is None
                }
            node_infos = self.build_infos(decide_view, assignment)
            for validator in validators:
                validator.validate_node(decide_view, node_infos)
            for info in node_infos:
                infos[info.packet_id] = info

        delivered = self._move_instrumented(infos)
        record = StepRecord(
            step=step_index, infos=infos, delivered_after=delivered
        )
        summary = StepSummary(
            step=step_index,
            generated=generated,
            injected=injected,
            routed=routed,
            moved=len(infos),
            advancing=record.num_advancing,
            delivered=len(delivered),
            delivered_total=self.delivered_total,
            total_distance=total_distance,
            max_node_load=max_load,
            bad_nodes=bad_nodes,
            packets_in_bad_nodes=packets_in_bad,
            backlog=backlog,
            dropped=dropped_now,
        )
        if self.telemetry is not None:
            self.telemetry.note_summary(summary)
        return record, summary

    def build_infos(
        self, view: NodeView, assignment: Assignment
    ) -> List[PacketStepInfo]:
        """Validate one node's policy output and build its step infos.

        Under hot-potato semantics the assignment must cover every
        packet in the view; under buffered semantics it may be partial
        (omitted packets wait), but must not name packets that are not
        present.  Either way directions must be distinct arcs out of
        the node.  Raises :class:`ArcAssignmentError` on any violation.
        """
        policy_name = self.policy.name
        packet_ids = {p.id for p in view.packets}
        if self.buffered:
            extra = set(assignment) - packet_ids
            if extra:
                raise ArcAssignmentError(
                    f"step {view.step}: policy {policy_name!r} forwarded "
                    f"unknown packets {sorted(extra)} at {view.node}"
                )
        elif set(assignment) != packet_ids:
            missing = packet_ids - set(assignment)
            extra = set(assignment) - packet_ids
            raise ArcAssignmentError(
                f"step {view.step}: policy {policy_name!r} returned a "
                f"bad assignment at {view.node}: missing={sorted(missing)} "
                f"extra={sorted(extra)}"
            )
        seen_directions = set()
        infos: List[PacketStepInfo] = []
        for packet in view.packets:
            if self.buffered and packet.id not in assignment:
                continue  # stays buffered this step
            direction = assignment[packet.id]
            if direction in seen_directions:
                raise ArcAssignmentError(
                    f"step {view.step}: direction {direction} assigned to "
                    f"two packets at {view.node}"
                )
            seen_directions.add(direction)
            # Resolved through the view's mesh: on faulted runs that is
            # the masked FaultView, so an assignment onto a down arc
            # fails here exactly like one that leaves the mesh.
            # Distances are served by the underlying geometry either way.
            next_node = view.mesh.neighbor(view.node, direction)
            if next_node is None:
                raise ArcAssignmentError(
                    f"step {view.step}: packet {packet.id} assigned "
                    f"direction {direction} which leaves the mesh "
                    f"at {view.node}"
                )
            distance_before = view.mesh.distance(view.node, packet.destination)
            distance_after = view.mesh.distance(next_node, packet.destination)
            infos.append(
                PacketStepInfo(
                    packet_id=packet.id,
                    node=view.node,
                    destination=packet.destination,
                    entry_direction=packet.entry_direction,
                    assigned_direction=direction,
                    next_node=next_node,
                    distance_before=distance_before,
                    distance_after=distance_after,
                    num_good=view.num_good(packet),
                    restricted=view.is_restricted(packet),
                    restricted_type=view.restricted_type(packet),
                )
            )
        return infos

    def _move_instrumented(
        self, infos: Dict[PacketId, PacketStepInfo]
    ) -> Tuple[PacketId, ...]:
        """Apply a step's moves; absorb arrivals; advance the clock."""
        self.time += 1
        now = self.time
        buffered = self.buffered
        # Waiting is possible under buffered semantics and under fault
        # degradation; only the plain hot-potato step insists on a
        # total assignment.
        partial = buffered or self.faults is not None
        set_entry = self.set_entry_direction
        on_deliver = self.on_deliver
        dist = self._dist
        delivered: List[PacketId] = []
        remaining: List[Packet] = []
        for packet in self.in_flight:
            info = infos.get(packet.id) if partial else infos[packet.id]
            if info is not None:
                if not buffered:
                    packet.restricted_last_step = info.restricted
                    packet.advanced_last_step = info.advanced
                packet.location = info.next_node
                if set_entry:
                    packet.entry_direction = info.assigned_direction
                packet.hops += 1
                if info.advanced:
                    packet.advances += 1
                else:
                    packet.deflections += 1
                dist[packet.id] = info.distance_after
                if self.record_paths:
                    packet.path.append(info.next_node)
            if packet.location == packet.destination:
                packet.delivered_at = now
                delivered.append(packet.id)
                del dist[packet.id]
                if on_deliver is not None:
                    on_deliver(packet)
            else:
                remaining.append(packet)
        self.in_flight = remaining
        self.delivered_total += len(delivered)
        return tuple(delivered)


def build_run_result(
    problem: RoutingProblem,
    policy_name: str,
    packets: Sequence[Packet],
    kernel: StepKernel,
    step_metrics: List[StepMetrics],
    records: Optional[List[StepRecord]],
    seed: Optional[Union[int, str]],
    abort: Optional["RunAborted"] = None,
) -> RunResult:
    """Assemble the :class:`RunResult` both batch engines return.

    A run counts as ``completed`` only when nothing is left in flight
    *and* no abort verdict was issued: a run whose last packets were
    dropped by faults still completed (every packet's fate is known),
    while a step-limit/no-progress/partition abort is structurally
    incomplete even though the engine returned normally.
    """
    mesh = problem.mesh
    delivered_times = [
        p.delivered_at for p in packets if p.delivered_at is not None
    ]
    total_steps = max(delivered_times) if delivered_times else 0
    completed = not kernel.in_flight and abort is None
    if not completed:
        total_steps = kernel.time
    outcomes = [
        PacketOutcome(
            packet_id=p.id,
            source=p.source,
            destination=p.destination,
            shortest_distance=mesh.distance(p.source, p.destination),
            delivered_at=p.delivered_at,
            hops=p.hops,
            advances=p.advances,
            deflections=p.deflections,
            dropped_at=p.dropped_at,
        )
        for p in packets
    ]
    return RunResult(
        problem_name=problem.name or "problem",
        policy_name=policy_name,
        mesh_kind=mesh.kind,
        dimension=mesh.dimension,
        side=mesh.side,
        k=problem.k,
        completed=completed,
        total_steps=total_steps,
        delivered=len(delivered_times),
        step_metrics=step_metrics,
        outcomes=outcomes,
        records=records,
        seed=seed,
        telemetry=kernel.telemetry,
        abort=abort,
    )
