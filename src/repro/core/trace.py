"""Run traces: capture, determinism checks, and replay.

A :class:`Trace` is the full movement history of a run — the problem,
the policy name and seed, and every :class:`StepRecord`.  Traces back
the offline analyses (potential verification over a finished run) and
the determinism tests: re-running the same problem/policy/seed must
reproduce the trace exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.engine import HotPotatoEngine
from repro.core.events import RunObserver
from repro.core.metrics import RunResult, StepMetrics, StepRecord
from repro.core.policy import RoutingPolicy
from repro.core.problem import RoutingProblem
from repro.exceptions import TraceError
from repro.types import Node, PacketId


@dataclass
class Trace:
    """Everything needed to audit or replay a finished run."""

    problem: RoutingProblem
    policy_name: str
    seed: Optional[int]
    records: List[StepRecord] = field(default_factory=list)
    result: Optional[RunResult] = None

    @property
    def num_steps(self) -> int:
        return len(self.records)

    def positions_at(self, time: int) -> Dict[PacketId, Node]:
        """Reconstruct in-flight packet positions at the given time.

        Time 0 is the initial placement; time ``t`` is after ``t``
        steps.  Delivered packets are omitted.
        """
        if time < 0 or time > len(self.records):
            raise TraceError(
                f"time {time} outside trace range 0..{len(self.records)}"
            )
        positions = {
            index: request.source
            for index, request in enumerate(self.problem.requests)
            if request.source != request.destination
        }
        for record in self.records[:time]:
            for info in record.infos.values():
                positions[info.packet_id] = info.next_node
            for packet_id in record.delivered_after:
                positions.pop(packet_id, None)
        return positions

    def verify_consistency(self) -> None:
        """Check the trace's internal movement consistency.

        Every packet's ``node`` in step ``t`` must equal its
        ``next_node`` from step ``t - 1``, moves must follow mesh arcs,
        and delivered packets must not reappear.

        Raises:
            TraceError: on the first inconsistency found.
        """
        mesh = self.problem.mesh
        expected: Dict[PacketId, Node] = {
            index: request.source
            for index, request in enumerate(self.problem.requests)
            if request.source != request.destination
        }
        for record in self.records:
            for packet_id, info in record.infos.items():
                if packet_id not in expected:
                    raise TraceError(
                        f"step {record.step}: packet {packet_id} moves but "
                        f"was already delivered or never existed"
                    )
                if info.node != expected[packet_id]:
                    raise TraceError(
                        f"step {record.step}: packet {packet_id} recorded at "
                        f"{info.node} but previous step put it at "
                        f"{expected[packet_id]}"
                    )
                if not mesh.is_arc((info.node, info.next_node)):
                    raise TraceError(
                        f"step {record.step}: packet {packet_id} moved along "
                        f"non-arc {(info.node, info.next_node)}"
                    )
                expected[packet_id] = info.next_node
            for packet_id in record.delivered_after:
                info = record.infos.get(packet_id)
                if info is None or info.next_node != info.destination:
                    raise TraceError(
                        f"step {record.step}: packet {packet_id} marked "
                        f"delivered but did not reach its destination"
                    )
                expected.pop(packet_id, None)


class TraceRecorder(RunObserver):
    """Observer that accumulates a :class:`Trace` during a run."""

    def __init__(
        self, problem: RoutingProblem, policy_name: str, seed: Optional[int]
    ) -> None:
        self.trace = Trace(problem=problem, policy_name=policy_name, seed=seed)

    def on_step(self, record: StepRecord, metrics: StepMetrics) -> None:
        self.trace.records.append(record)

    def on_run_end(self, result: RunResult) -> None:
        self.trace.result = result


def record_run(
    problem: RoutingProblem,
    policy: RoutingPolicy,
    *,
    seed: int = 0,
    **engine_kwargs: Any,
) -> Trace:
    """Run a problem under a policy and return the full trace."""
    recorder = TraceRecorder(problem, policy.name, seed)
    engine = HotPotatoEngine(
        problem,
        policy,
        seed=seed,
        observers=[recorder],
        **engine_kwargs,
    )
    engine.run()
    return recorder.trace


def traces_equal(a: Trace, b: Trace) -> bool:
    """True when two traces describe identical movement histories."""
    if a.num_steps != b.num_steps:
        return False
    for record_a, record_b in zip(a.records, b.records):
        if record_a.delivered_after != record_b.delivered_after:
            return False
        if set(record_a.infos) != set(record_b.infos):
            return False
        for packet_id, info_a in record_a.infos.items():
            info_b = record_b.infos[packet_id]
            if (
                info_a.node != info_b.node
                or info_a.next_node != info_b.next_node
                or info_a.assigned_direction != info_b.assigned_direction
            ):
                return False
    return True
