"""The synchronous hot-potato routing engine.

Implements the model of Section 2 of the paper exactly:

* time advances in discrete steps; step ``t`` moves packets from their
  time-``t`` nodes to time-``t+1`` nodes;
* at the start of each step, packets located at their destination are
  absorbed (they have *reached* the destination and leave the network);
* every remaining packet at a node must be assigned a distinct
  outgoing arc — no buffering, no two packets on one directed link;
* the per-node decision may use only locally visible information (the
  packets' destinations and entry arcs).

The engine validates every assignment the policy produces and raises a
:class:`~repro.exceptions.ProtocolViolationError` subclass on the first
violation, so experiment data can be trusted end to end.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.events import RunObserver
from repro.core.metrics import (
    PacketOutcome,
    PacketStepInfo,
    RunResult,
    StepMetrics,
    StepRecord,
)
from repro.core.node_view import NodeView
from repro.core.packet import Packet
from repro.core.policy import Assignment, RoutingPolicy
from repro.core.problem import RoutingProblem
from repro.core.rng import RngLike, make_rng
from repro.core.validation import (
    CapacityValidator,
    StepValidator,
    validators_for,
)
from repro.exceptions import (
    ArcAssignmentError,
    LivelockSuspectedError,
)
from repro.mesh.directions import Direction
from repro.types import Node, PacketId

#: One in-flight packet's routing-relevant state in a global snapshot.
StateEntry = Tuple[PacketId, Node, Optional[Direction], bool, bool]


def describe_seed(seed: RngLike) -> Union[int, str]:
    """A reproducible description of an engine seed for :class:`RunResult`.

    Integer seeds pass through; ``None`` is the library's deterministic
    default stream (seed 0); a caller-provided ``random.Random``
    carries hidden state, so its description is a digest of that state
    — two engines handed equal-state generators report the same value,
    and the value never silently collides with a plain integer seed.
    """
    if isinstance(seed, int):
        return seed
    if seed is None:
        return 0  # make_rng(None) is the deterministic seed-0 stream
    digest = hashlib.sha256(repr(seed.getstate()).encode("utf-8")).hexdigest()
    return f"rng-state:{digest[:16]}"


def default_step_limit(problem: RoutingProblem) -> int:
    """A generous default step budget.

    Greedy algorithms on meshes are known to finish within
    ``2(k - 1) + d_max`` steps ([BTS], discussed in Section 6.1); the
    default allows eight times that plus slack so that a timeout
    genuinely signals something wrong (or an intentional livelock).
    """
    return max(256, 8 * (2 * problem.k + problem.d_max) + 64)


class HotPotatoEngine:
    """Runs one routing problem under one policy.

    Args:
        problem: the batch to route (carries its mesh).
        policy: the per-node routing rule.
        seed: RNG seed (or Random instance) handed to the policy.
        validators: protocol checks run at every node; defaults to the
            stack implied by the policy's declarations.
        observers: run observers (potential trackers, tracers, ...).
        max_steps: step budget; defaults to :func:`default_step_limit`.
        record_steps: keep every :class:`StepRecord` in the result
            (needed by the potential analyses; costs memory).
        record_paths: store each packet's node path on the packet.
        raise_on_timeout: raise :class:`LivelockSuspectedError` instead
            of returning an incomplete result when the budget runs out.
        fast_path: ``None`` (default) lets :meth:`run` pick the lean
            no-recording loop automatically when it is equivalent
            (no step records, no observers, capacity-only validators);
            ``False`` forces the fully instrumented loop; ``True``
            additionally raises ``ValueError`` when the run is not
            fast-path eligible (useful in tests and benchmarks).
    """

    def __init__(
        self,
        problem: RoutingProblem,
        policy: RoutingPolicy,
        *,
        seed: RngLike = 0,
        validators: Optional[Sequence[StepValidator]] = None,
        observers: Iterable[RunObserver] = (),
        max_steps: Optional[int] = None,
        record_steps: bool = False,
        record_paths: bool = False,
        raise_on_timeout: bool = False,
        fast_path: Optional[bool] = None,
    ) -> None:
        self.problem = problem
        self.mesh = problem.mesh
        self.policy = policy
        self.rng = make_rng(seed)
        self._seed = describe_seed(seed)
        self.validators: List[StepValidator] = (
            list(validators)
            if validators is not None
            else validators_for(policy)
        )
        self.observers: List[RunObserver] = list(observers)
        self.max_steps = (
            max_steps if max_steps is not None else default_step_limit(problem)
        )
        self.record_steps = record_steps
        self.record_paths = record_paths
        self.raise_on_timeout = raise_on_timeout
        self.fast_path = fast_path

        self.time = 0
        self.packets: List[Packet] = problem.make_packets()
        self.in_flight: List[Packet] = []
        self._records: List[StepRecord] = []
        self._metrics: List[StepMetrics] = []
        self._started = False

    # ------------------------------------------------------------------
    # Public driving interface
    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        """Route until all packets are delivered or the budget runs out."""
        self._start()
        if self._fast_path_eligible():
            self._run_fast()
        else:
            while self.in_flight and self.time < self.max_steps:
                self.step()
        if self.in_flight and self.raise_on_timeout:
            raise LivelockSuspectedError(
                f"{len(self.in_flight)} packets still in flight after "
                f"{self.time} steps (policy {self.policy.name!r} on "
                f"{self.problem.describe()})"
            )
        result = self._build_result()
        for observer in self.observers:
            observer.on_run_end(result)
        return result

    def step(self) -> StepRecord:
        """Execute one synchronous step and return its record."""
        self._start()
        record = self._route()
        metrics = self._collect_metrics(record)
        self._metrics.append(metrics)
        if self.record_steps:
            self._records.append(record)
        for observer in self.observers:
            observer.on_step(record, metrics)
        return record

    @property
    def current_positions(self) -> Dict[PacketId, Node]:
        """Locations of all in-flight packets (for state inspection)."""
        self._start()
        return {p.id: p.location for p in self.in_flight}

    def global_state(self) -> Tuple[StateEntry, ...]:
        """A hashable snapshot of the routing-relevant global state.

        Two steps from identical global states under a deterministic
        policy evolve identically, so a repeated state proves a
        livelock.  The snapshot includes each in-flight packet's
        location, entry direction and previous-step flags (everything a
        policy may condition on except its private RNG).
        """
        self._start()
        return tuple(
            sorted(
                (
                    p.id,
                    p.location,
                    p.entry_direction,
                    p.advanced_last_step,
                    p.restricted_last_step,
                )
                for p in self.in_flight
            )
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _start(self) -> None:
        if self._started:
            return
        self._started = True
        self.policy.prepare(self.mesh, self.problem, self.rng)
        self.in_flight = list(self.packets)
        if self.record_paths:
            for packet in self.in_flight:
                packet.path.append(packet.location)
        self._absorb_initial()  # requests with source == destination
        for observer in self.observers:
            observer.on_run_start(self)

    def _absorb_initial(self) -> None:
        """Absorb requests whose source equals their destination (time 0)."""
        remaining: List[Packet] = []
        for packet in self.in_flight:
            if packet.location == packet.destination:
                packet.delivered_at = 0
            else:
                remaining.append(packet)
        self.in_flight = remaining

    def _fast_path_eligible(self) -> bool:
        """Decide whether :meth:`run` may use the lean loop.

        The fast path produces bit-identical :class:`RunResult`\\ s but
        skips :class:`StepRecord`/:class:`PacketStepInfo` construction,
        so it is only equivalent when nobody consumes those objects:
        no step recording, no observers, and no validators beyond the
        capacity check.  (The capacity check itself can never fire on a
        validated problem — arrivals are bounded by in-degree — and an
        inconsistent assignment is re-raised through the strict checker,
        so the fast path surfaces the exact slow-path errors.)
        """
        eligible = (
            not self.record_steps
            and not self.observers
            and all(
                type(validator) is CapacityValidator
                for validator in self.validators
            )
        )
        if self.fast_path is False:
            return False
        if self.fast_path is True and not eligible:
            raise ValueError(
                "fast_path=True requested, but the run records steps, "
                "has observers, or uses validators beyond the capacity "
                "check; these require the instrumented loop"
            )
        return eligible

    def _run_fast(self) -> None:
        """The no-recording main loop.

        Semantically identical to repeated :meth:`step` calls (same
        packet outcomes, same :class:`StepMetrics`, same policy RNG
        stream) but with the per-step allocation churn stripped out:
        no :class:`PacketStepInfo`/:class:`StepRecord` objects, packet
        distances tracked incrementally where the mesh guarantees the
        ±1-per-hop invariant (``Mesh.unit_deflections``; a good hop is
        always exactly -1, but e.g. an odd-side torus deflection can
        leave the wrapped distance unchanged, so those meshes recompute
        after deflections), and neighbor lookups served from the mesh's
        precomputed per-node arc tables.  Delivery is decided by
        destination comparison, exactly like :meth:`_move` — never by
        the distance counter.
        """
        mesh = self.mesh
        dimension = mesh.dimension
        node_arcs = mesh.node_arcs
        unit_deflections = mesh.unit_deflections
        assign = self.policy.assign
        record_paths = self.record_paths
        append_metrics = self._metrics.append

        delivered_total = sum(
            1 for p in self.packets if p.delivered_at is not None
        )
        distance = mesh.distance
        dist: Dict[PacketId, int] = {
            p.id: distance(p.location, p.destination) for p in self.in_flight
        }

        while self.in_flight and self.time < self.max_steps:
            step_index = self.time
            groups: Dict[Node, List[Packet]] = defaultdict(list)
            for packet in self.in_flight:
                groups[packet.location].append(packet)

            # Phase 1 — per-node decisions.  Nodes are visited in group
            # insertion order, exactly like _route (see the determinism
            # note there); the two loops must stay in lockstep so both
            # paths consume any policy RNG identically.
            pending: Dict[PacketId, Tuple[Node, Direction, bool, bool]] = {}
            advancing = 0
            total_distance = 0
            max_load = 0
            bad_nodes = 0
            packets_in_bad = 0
            # No pre-assign capacity raise here: a load above the
            # node's degree makes a consistent assignment impossible
            # (pigeonhole), so the bad-assignment fallback below raises
            # the same ArcAssignmentError the instrumented loop would —
            # after the policy ran, with the same RNG consumption.
            for node, packets in groups.items():
                load = len(packets)
                arcs = node_arcs(node)
                if load > max_load:
                    max_load = load
                if load > dimension:
                    bad_nodes += 1
                    packets_in_bad += load
                view = NodeView(mesh, node, step_index, packets)
                assignment = assign(view)
                by_direction = arcs.by_direction
                good_map = view._good
                seen = set()
                for packet in view.packets:
                    direction = assignment.get(packet.id)
                    next_node = (
                        by_direction.get(direction)
                        if direction is not None
                        else None
                    )
                    if (
                        direction is None
                        or direction in seen
                        or next_node is None
                        or len(assignment) != load
                    ):
                        # Bad policy output: rebuild through the strict
                        # checker so the error matches the slow path.
                        self._apply_assignment(view, assignment)
                        raise ArcAssignmentError(
                            f"step {step_index}: inconsistent assignment "
                            f"at {node} (engine fast-path check)"
                        )
                    seen.add(direction)
                    good = good_map[packet.id]
                    advanced = direction in good
                    pending[packet.id] = (
                        next_node,
                        direction,
                        advanced,
                        len(good) == 1,
                    )
                    if advanced:
                        advancing += 1
                    total_distance += dist[packet.id]

            # Phase 2 — move, mirroring _move's in_flight iteration
            # order so delivery order and the next step's grouping are
            # identical to the instrumented loop.
            self.time += 1
            now = self.time
            remaining: List[Packet] = []
            for packet in self.in_flight:
                next_node, direction, advanced, restricted = pending[
                    packet.id
                ]
                packet.restricted_last_step = restricted
                packet.advanced_last_step = advanced
                packet.location = next_node
                packet.entry_direction = direction
                packet.hops += 1
                if advanced:
                    # A good hop reduces the distance by exactly one
                    # (Definition 5), on every mesh kind.
                    packet.advances += 1
                    dist[packet.id] -= 1
                else:
                    packet.deflections += 1
                    if unit_deflections:
                        dist[packet.id] += 1
                    else:
                        # E.g. odd-side torus: a bad hop out of a
                        # maximal per-axis offset leaves the wrapped
                        # distance unchanged, so recompute exactly.
                        dist[packet.id] = distance(
                            next_node, packet.destination
                        )
                if record_paths:
                    packet.path.append(next_node)
                if next_node == packet.destination:
                    packet.delivered_at = now
                    delivered_total += 1
                else:
                    remaining.append(packet)
            self.in_flight = remaining

            routed = len(pending)
            append_metrics(
                StepMetrics(
                    step=step_index,
                    in_flight=routed,
                    advancing=advancing,
                    deflected=routed - advancing,
                    delivered_total=delivered_total,
                    total_distance=total_distance,
                    max_node_load=max_load,
                    bad_nodes=bad_nodes,
                    packets_in_bad_nodes=packets_in_bad,
                    packets_in_good_nodes=routed - packets_in_bad,
                )
            )

    def _route(self) -> StepRecord:
        step_index = self.time
        groups: Dict[Node, List[Packet]] = defaultdict(list)
        for packet in self.in_flight:
            groups[packet.location].append(packet)

        infos: Dict[PacketId, PacketStepInfo] = {}
        # Visit nodes in group insertion order.  in_flight is kept in
        # ascending packet-id order by _move, so the first packet seen
        # at each node — and hence the node visit order — is a pure
        # function of the previous step's outcome: deterministic and
        # reproducible without re-sorting every node tuple each step
        # (which the profile showed as measurable overhead on large
        # meshes).
        for node, node_packets in groups.items():
            view = NodeView(self.mesh, node, step_index, node_packets)
            assignment = self.policy.assign(view)
            node_infos = self._apply_assignment(view, assignment)
            for validator in self.validators:
                validator.validate_node(view, node_infos)
            for info in node_infos:
                infos[info.packet_id] = info

        delivered = self._move(infos)
        return StepRecord(
            step=step_index, infos=infos, delivered_after=delivered
        )

    def _apply_assignment(
        self, view: NodeView, assignment: Assignment
    ) -> List[PacketStepInfo]:
        """Validate the policy output for one node and build step infos."""
        packet_ids = {p.id for p in view.packets}
        if set(assignment) != packet_ids:
            missing = packet_ids - set(assignment)
            extra = set(assignment) - packet_ids
            raise ArcAssignmentError(
                f"step {view.step}: policy {self.policy.name!r} returned a "
                f"bad assignment at {view.node}: missing={sorted(missing)} "
                f"extra={sorted(extra)}"
            )
        seen_directions = set()
        infos: List[PacketStepInfo] = []
        for packet in view.packets:
            direction = assignment[packet.id]
            if direction in seen_directions:
                raise ArcAssignmentError(
                    f"step {view.step}: direction {direction} assigned to "
                    f"two packets at {view.node}"
                )
            seen_directions.add(direction)
            next_node = self.mesh.neighbor(view.node, direction)
            if next_node is None:
                raise ArcAssignmentError(
                    f"step {view.step}: packet {packet.id} assigned "
                    f"direction {direction} which leaves the mesh "
                    f"at {view.node}"
                )
            distance_before = self.mesh.distance(view.node, packet.destination)
            distance_after = self.mesh.distance(next_node, packet.destination)
            infos.append(
                PacketStepInfo(
                    packet_id=packet.id,
                    node=view.node,
                    destination=packet.destination,
                    entry_direction=packet.entry_direction,
                    assigned_direction=direction,
                    next_node=next_node,
                    distance_before=distance_before,
                    distance_after=distance_after,
                    num_good=view.num_good(packet),
                    restricted=view.is_restricted(packet),
                    restricted_type=view.restricted_type(packet),
                )
            )
        return infos

    def _move(self, infos: Dict[PacketId, PacketStepInfo]) -> Tuple[PacketId, ...]:
        """Apply a step's moves; absorb arrivals; advance the clock.

        Returns the ids of packets delivered by this step's move.
        """
        self.time += 1
        delivered: List[PacketId] = []
        remaining: List[Packet] = []
        for packet in self.in_flight:
            info = infos[packet.id]
            packet.restricted_last_step = info.restricted
            packet.advanced_last_step = info.advanced
            packet.location = info.next_node
            packet.entry_direction = info.assigned_direction
            packet.hops += 1
            if info.advanced:
                packet.advances += 1
            else:
                packet.deflections += 1
            if self.record_paths:
                packet.path.append(info.next_node)
            if packet.location == packet.destination:
                packet.delivered_at = self.time
                delivered.append(packet.id)
            else:
                remaining.append(packet)
        self.in_flight = remaining
        return tuple(delivered)

    def _collect_metrics(self, record: StepRecord) -> StepMetrics:
        dimension = self.mesh.dimension
        loads: Dict[Node, int] = defaultdict(int)
        total_distance = 0
        for info in record.infos.values():
            loads[info.node] += 1
            total_distance += info.distance_before
        bad_nodes = 0
        packets_in_bad = 0
        for load in loads.values():
            if load > dimension:
                bad_nodes += 1
                packets_in_bad += load
        in_flight = len(record.infos)
        delivered_total = sum(1 for p in self.packets if p.delivered)
        return StepMetrics(
            step=record.step,
            in_flight=in_flight,
            advancing=record.num_advancing,
            deflected=record.num_deflected,
            delivered_total=delivered_total,
            total_distance=total_distance,
            max_node_load=max(loads.values()) if loads else 0,
            bad_nodes=bad_nodes,
            packets_in_bad_nodes=packets_in_bad,
            packets_in_good_nodes=in_flight - packets_in_bad,
        )

    def _build_result(self) -> RunResult:
        delivered_times = [
            p.delivered_at for p in self.packets if p.delivered_at is not None
        ]
        total_steps = max(delivered_times) if delivered_times else 0
        completed = not self.in_flight
        if not completed:
            total_steps = self.time
        outcomes = [
            PacketOutcome(
                packet_id=p.id,
                source=p.source,
                destination=p.destination,
                shortest_distance=self.mesh.distance(p.source, p.destination),
                delivered_at=p.delivered_at,
                hops=p.hops,
                advances=p.advances,
                deflections=p.deflections,
            )
            for p in self.packets
        ]
        return RunResult(
            problem_name=self.problem.name or "problem",
            policy_name=self.policy.name,
            mesh_kind=self.mesh.kind,
            dimension=self.mesh.dimension,
            side=self.mesh.side,
            k=self.problem.k,
            completed=completed,
            total_steps=total_steps,
            delivered=len(delivered_times),
            step_metrics=self._metrics,
            outcomes=outcomes,
            records=self._records if self.record_steps else None,
            seed=self._seed,
        )


def route(
    problem: RoutingProblem,
    policy: RoutingPolicy,
    **kwargs: Any,
) -> RunResult:
    """Convenience one-shot: build an engine and run it."""
    return HotPotatoEngine(problem, policy, **kwargs).run()
