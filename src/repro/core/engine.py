"""The synchronous hot-potato routing engine.

Implements the model of Section 2 of the paper exactly:

* time advances in discrete steps; step ``t`` moves packets from their
  time-``t`` nodes to time-``t+1`` nodes;
* at the start of each step, packets located at their destination are
  absorbed (they have *reached* the destination and leave the network);
* every remaining packet at a node must be assigned a distinct
  outgoing arc — no buffering, no two packets on one directed link;
* the per-node decision may use only locally visible information (the
  packets' destinations and entry arcs).

The engine validates every assignment the policy produces and raises a
:class:`~repro.exceptions.ProtocolViolationError` subclass on the first
violation, so experiment data can be trusted end to end.

The step loop itself lives in :class:`~repro.core.kernel.StepKernel`
(shared with the buffered and dynamic engines); this class is the
batch hot-potato *configuration* of it — insertion-order node visits,
total assignments, entry-direction tracking — plus the run-level
machinery: validators, observers, step records, result construction.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.events import RunObserver
from repro.core.kernel import (
    PhaseSink,
    StepKernel,
    StepSummary,
    build_run_result,
    default_step_limit,
    lean_equivalent,
    step_metrics_from_summary,
)
from repro.core.metrics import RunResult, StepMetrics, StepRecord
from repro.core.packet import Packet
from repro.core.policy import RoutingPolicy
from repro.core.problem import RoutingProblem
from repro.core.rng import RngLike, describe_seed, make_rng
from repro.core.validation import StepValidator, validators_for
from repro.exceptions import LivelockSuspectedError
from repro.faults import (
    ActiveFaults,
    FaultSchedule,
    RunWatchdog,
    step_limit_abort,
)
from repro.mesh.directions import Direction
from repro.obs.telemetry import RunTelemetry
from repro.types import Node, PacketId

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.soa.adapters import PolicyAdapter

__all__ = [
    "HotPotatoEngine",
    "StateEntry",
    "default_step_limit",
    "describe_seed",
    "route",
]

#: One in-flight packet's routing-relevant state in a global snapshot.
StateEntry = Tuple[PacketId, Node, Optional[Direction], bool, bool]


class HotPotatoEngine:
    """Runs one routing problem under one policy.

    Args:
        problem: the batch to route (carries its mesh).
        policy: the per-node routing rule.
        seed: RNG seed (or Random instance) handed to the policy.
        validators: protocol checks run at every node; defaults to the
            stack implied by the policy's declarations.
        observers: run observers (potential trackers, tracers, ...).
        max_steps: step budget; defaults to :func:`default_step_limit`.
        record_steps: keep every :class:`StepRecord` in the result
            (needed by the potential analyses; costs memory).
        record_paths: store each packet's node path on the packet.
        raise_on_timeout: raise :class:`LivelockSuspectedError` instead
            of returning an incomplete result when the budget runs out.
        fast_path: ``None`` (default) lets :meth:`run` pick the lean
            no-recording kernel loop automatically when it is
            equivalent (no step records, no step-consuming observers,
            capacity-only validators); ``False`` forces the fully
            instrumented loop; ``True`` additionally raises
            ``ValueError`` when the run is not fast-path eligible
            (useful in tests and benchmarks).
        profiler: optional :class:`~repro.obs.profiler.PhaseProfiler`
            (any :class:`~repro.core.kernel.PhaseSink`); when set,
            :meth:`run` uses the kernel's profiled loop and accumulates
            per-phase wall time into it.  Profiling requires fast-path
            eligibility — the phases being timed are the lean loop's.
        faults: optional :class:`~repro.faults.FaultSchedule` applied
            deterministically during the run (down links, failed nodes,
            packet drops); the engine routes around failures through
            the masked topology view.  ``None`` (and an empty
            schedule) leaves runs bit-identical to a fault-free
            engine.  Incompatible with ``profiler``.
        watchdog: optional :class:`~repro.faults.RunWatchdog`; checked
            every step, its verdict ends the run with a structured
            :class:`~repro.faults.RunAborted` on the result.  A
            default watchdog is installed automatically whenever
            ``faults`` is given.
        backend: ``"object"`` (default) routes with the object kernel;
            ``"soa"`` with the structure-of-arrays kernel
            (:mod:`repro.core.soa`) — bit-identical results, flat
            columns instead of per-packet objects on the hot path.
            Requires a fast-path-eligible run and a policy the array
            kernel has an adapter for; incompatible with
            ``record_paths``, watchdogs and non-empty fault schedules
            (an empty :class:`FaultSchedule` is accepted and ignored).
        checkpoint_every: periodic checkpoint interval in steps.  When
            set, :meth:`run` pauses at every multiple of this step
            count and hands a snapshot (see :mod:`repro.snapshot`) to
            ``on_checkpoint``.  ``None`` (default) disables
            checkpointing entirely — the run loops are untouched and
            pay nothing.  Requires ``on_checkpoint``; incompatible
            with ``record_steps`` (snapshots do not carry step
            records).
        on_checkpoint: callback receiving each checkpoint's snapshot
            payload (a JSON-safe dict); typically
            :func:`repro.snapshot.save_snapshot` bound to a path, or a
            campaign store's ``checkpoint`` writer.

    Every engine owns a :class:`~repro.obs.telemetry.RunTelemetry`
    (``self.telemetry``, also on the returned
    :class:`RunResult`) whose counters all kernel loops keep
    bit-identically.
    """

    def __init__(
        self,
        problem: RoutingProblem,
        policy: RoutingPolicy,
        *,
        seed: RngLike = 0,
        validators: Optional[Sequence[StepValidator]] = None,
        observers: Iterable[RunObserver] = (),
        max_steps: Optional[int] = None,
        record_steps: bool = False,
        record_paths: bool = False,
        raise_on_timeout: bool = False,
        fast_path: Optional[bool] = None,
        profiler: Optional[PhaseSink] = None,
        faults: Optional[FaultSchedule] = None,
        watchdog: Optional[RunWatchdog] = None,
        backend: str = "object",
        checkpoint_every: Optional[int] = None,
        on_checkpoint: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        if backend not in ("object", "soa"):
            raise ValueError(
                f"backend must be 'object' or 'soa', got {backend!r}"
            )
        self.backend = backend
        self._soa_adapter: Optional["PolicyAdapter"] = None
        if backend == "soa":
            from repro.core.soa import adapter_for

            if record_paths:
                raise ValueError(
                    "backend='soa' does not support record_paths"
                )
            if watchdog is not None:
                raise ValueError(
                    "backend='soa' does not support watchdogs"
                )
            if faults is not None:
                if not faults.is_empty:
                    raise ValueError(
                        "backend='soa' does not support fault "
                        "schedules; an empty FaultSchedule is "
                        "accepted and ignored"
                    )
                # An empty schedule is bit-identical to no faults, so
                # drop it (and the watchdog it would auto-install) —
                # this is the FaultSchedule.empty() equivalence the
                # differential suite pins.
                faults = None
            self._soa_adapter = adapter_for(
                policy, buffered=False, has_injection=False
            )
        self.problem = problem
        self.mesh = problem.mesh
        self.policy = policy
        self.rng = make_rng(seed)
        self._seed = describe_seed(seed)
        self.validators: List[StepValidator] = (
            list(validators)
            if validators is not None
            else validators_for(policy)
        )
        self.observers: List[RunObserver] = list(observers)
        self.max_steps = (
            max_steps if max_steps is not None else default_step_limit(problem)
        )
        self.record_steps = record_steps
        self.raise_on_timeout = raise_on_timeout
        self.fast_path = fast_path
        self.profiler = profiler
        self.telemetry = RunTelemetry()
        self.faults = faults
        if watchdog is None and faults is not None:
            watchdog = RunWatchdog()
        self.watchdog = watchdog
        if profiler is not None and (
            faults is not None or watchdog is not None
        ):
            raise ValueError(
                "profiling is incompatible with faults/watchdogs; "
                "drop the profiler or the fault schedule"
            )
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ValueError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
            if on_checkpoint is None:
                raise ValueError(
                    "checkpoint_every needs an on_checkpoint sink to "
                    "receive the snapshots"
                )
            if record_steps:
                raise ValueError(
                    "checkpointing is incompatible with record_steps; "
                    "snapshots do not carry step records"
                )
        self.checkpoint_every = checkpoint_every
        self.on_checkpoint = on_checkpoint

        self.packets: List[Packet] = problem.make_packets()
        self._records: List[StepRecord] = []
        self._metrics: List[StepMetrics] = []
        self._summary_sinks: List[Any] = []
        self._started = False
        self._resumed = False
        self._kernel = StepKernel(
            self.mesh,
            policy,
            buffered=False,
            node_order="insertion",
            set_entry_direction=True,
            record_paths=record_paths,
            emit=self._emit_lean,
            telemetry=self.telemetry,
            faults=(
                ActiveFaults(self.mesh, faults)
                if faults is not None
                else None
            ),
            watchdog=watchdog,
        )

    # ------------------------------------------------------------------
    # Kernel state, exposed under the engine's historical names
    # ------------------------------------------------------------------

    @property
    def time(self) -> int:
        return self._kernel.time

    @time.setter
    def time(self, value: int) -> None:
        self._kernel.time = value

    @property
    def in_flight(self) -> List[Packet]:
        return self._kernel.in_flight

    @in_flight.setter
    def in_flight(self, value: List[Packet]) -> None:
        self._kernel.in_flight = value

    @property
    def record_paths(self) -> bool:
        return self._kernel.record_paths

    @record_paths.setter
    def record_paths(self, value: bool) -> None:
        self._kernel.record_paths = value

    # ------------------------------------------------------------------
    # Public driving interface
    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        """Route until all packets are delivered, the budget runs out,
        or a watchdog issues a verdict."""
        self._start()
        watchdog = self._kernel.watchdog
        if watchdog is not None and not self._resumed:
            # A resumed run keeps its restored watchdog counters; a
            # reset here would re-baseline them and mask a pre-crash
            # stall, diverging from the uninterrupted run.
            watchdog.reset(self._kernel)
        every = self.checkpoint_every
        if self._fast_path_eligible():
            if every is None:
                self._run_fast(self.max_steps)
            else:
                # Segmented lean run: pause at every absolute multiple
                # of the interval, checkpoint, continue.  Segment
                # boundaries are absolute step numbers, so a resumed
                # run checkpoints at the same steps as the original.
                while (
                    self.in_flight
                    and self.time < self.max_steps
                    and self._kernel.abort is None
                ):
                    boundary = ((self.time // every) + 1) * every
                    self._run_fast(min(self.max_steps, boundary))
                    self._maybe_checkpoint()
        else:
            if self.backend == "soa":
                raise ValueError(
                    "backend='soa' runs the lean loop only; this run "
                    "records steps, has step-consuming observers, or "
                    "uses validators beyond the capacity check"
                )
            if self.profiler is not None:
                raise ValueError(
                    "profiling times the lean kernel loop, but this run "
                    "is not fast-path eligible (it records steps, has "
                    "step-consuming observers, or uses validators beyond "
                    "the capacity check)"
                )
            while self.in_flight and self.time < self.max_steps:
                if watchdog is not None:
                    verdict = watchdog.check(self._kernel)
                    if verdict is not None:
                        self._kernel.abort = verdict
                        break
                self.step()
                if every is not None and self.time % every == 0:
                    self._maybe_checkpoint()
        if (
            self.in_flight
            and self.raise_on_timeout
            and self._kernel.abort is None
        ):
            raise LivelockSuspectedError(
                f"{len(self.in_flight)} packets still in flight after "
                f"{self.time} steps (policy {self.policy.name!r} on "
                f"{self.problem.describe()})"
            )
        if (
            self._kernel.abort is None
            and self.in_flight
            and self.time >= self.max_steps
        ):
            # Unified incomplete-run vocabulary: a plain step-budget
            # timeout carries the same structured record as the
            # watchdog verdicts.
            self._kernel.abort = step_limit_abort(
                self._kernel, self.max_steps
            )
        result = self._build_result()
        for observer in self.observers:
            observer.on_run_end(result)
        return result

    def step(self) -> StepRecord:
        """Execute one synchronous step and return its record."""
        self._start()
        record, summary = self._kernel.step_instrumented(self.validators)
        self._emit_lean(summary)
        metrics = self._metrics[-1]
        if self.record_steps:
            self._records.append(record)
        for observer in self.observers:
            observer.on_step(record, metrics)
        return record

    @property
    def current_positions(self) -> Dict[PacketId, Node]:
        """Locations of all in-flight packets (for state inspection)."""
        self._start()
        return {p.id: p.location for p in self.in_flight}

    def global_state(self) -> Tuple[StateEntry, ...]:
        """A hashable snapshot of the routing-relevant global state.

        Two steps from identical global states under a deterministic
        policy evolve identically, so a repeated state proves a
        livelock.  The snapshot includes each in-flight packet's
        location, entry direction and previous-step flags (everything a
        policy may condition on except its private RNG).
        """
        self._start()
        return tuple(
            sorted(
                (
                    p.id,
                    p.location,
                    p.entry_direction,
                    p.advanced_last_step,
                    p.restricted_last_step,
                )
                for p in self.in_flight
            )
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Capture this engine's complete state as a JSON-safe dict
        (see :mod:`repro.snapshot`); valid at any step boundary."""
        from repro.snapshot.engine import engine_snapshot

        return engine_snapshot(self)

    def resume_from(self, payload: Dict[str, Any]) -> None:
        """Restore a snapshot onto this freshly constructed engine.

        The engine must be built from the same inputs (problem,
        policy, seed, faults, observers) and not yet run; the next
        :meth:`run` then continues bit-identically from the
        checkpointed step.
        """
        from repro.snapshot.engine import resume_engine

        resume_engine(self, payload)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _run_fast(self, until: int) -> None:
        """One lean-loop segment up to absolute step ``until``."""
        if self.backend == "soa":
            from repro.core.soa import SoaKernel

            adapter = self._soa_adapter
            assert adapter is not None
            SoaKernel(self._kernel, adapter).run(
                until, profiler=self.profiler
            )
        elif self.profiler is not None:
            self._kernel.run_profiled(until, self.profiler)
        else:
            self._kernel.run_lean(until)

    def _maybe_checkpoint(self) -> None:
        """Hand a snapshot to the sink, but only when the run will
        continue — a run that just finished, aborted, or exhausted its
        budget is fully described by its result."""
        if (
            self.on_checkpoint is None
            or not self.in_flight
            or self._kernel.abort is not None
            or self.time >= self.max_steps
        ):
            return
        self.on_checkpoint(self.snapshot())

    def _start(self) -> None:
        if self._started:
            return
        self._started = True
        self.policy.prepare(self.mesh, self.problem, self.rng)
        in_flight = list(self.packets)
        if self.record_paths:
            for packet in in_flight:
                packet.path.append(packet.location)
        # Absorb requests whose source equals their destination (time 0).
        delivered = 0
        remaining: List[Packet] = []
        for packet in in_flight:
            if packet.location == packet.destination:
                packet.delivered_at = 0
                delivered += 1
            else:
                remaining.append(packet)
        self._kernel.seed_packets(remaining, delivered_total=delivered)
        self._summary_sinks = [
            o.on_summary
            for o in self.observers
            if getattr(o, "needs_summaries", False)
        ]
        for observer in self.observers:
            observer.on_run_start(self)

    def _fast_path_eligible(self) -> bool:
        """Decide whether :meth:`run` may use the lean kernel loop.

        The lean loop produces bit-identical :class:`RunResult`\\ s but
        skips :class:`StepRecord`/per-packet info construction, so it
        is only equivalent when nobody consumes those objects: no step
        recording, no observers with ``needs_steps`` (run-boundary
        observers are fine), and no validators beyond the capacity
        check (see :func:`repro.core.kernel.lean_equivalent`).
        """
        eligible = lean_equivalent(
            self.validators, self.observers, self.record_steps
        )
        if self.fast_path is False:
            return False
        if self.fast_path is True and not eligible:
            raise ValueError(
                "fast_path=True requested, but the run records steps, "
                "has step-consuming observers, or uses validators beyond "
                "the capacity check; these require the instrumented loop"
            )
        return eligible

    def _emit_lean(self, summary: StepSummary) -> None:
        self._metrics.append(step_metrics_from_summary(summary))
        for sink in self._summary_sinks:
            sink(summary)

    def _build_result(self) -> RunResult:
        return build_run_result(
            self.problem,
            self.policy.name,
            self.packets,
            self._kernel,
            self._metrics,
            self._records if self.record_steps else None,
            self._seed,
            abort=self._kernel.abort,
        )


def route(
    problem: RoutingProblem,
    policy: RoutingPolicy,
    **kwargs: Any,
) -> RunResult:
    """Convenience one-shot: build an engine and run it."""
    return HotPotatoEngine(problem, policy, **kwargs).run()
