"""Runtime validators for the synchronous hot-potato model.

The engine *always* enforces the basic model rules (every packet
leaves, distinct arcs, arcs exist).  The validators here check the
*declared* properties of an algorithm at every node in every step:

* :class:`GreedyValidator` — Definition 6: whenever a packet is
  deflected, all of its good arcs are used by other advancing packets.
* :class:`RestrictedPriorityValidator` — Definition 18: a
  non-restricted packet cannot deflect a restricted one; consequently
  whenever a restricted packet is deflected, the packet advancing
  through its unique good arc is itself restricted.
* :class:`MaxAdvanceValidator` — the Section 5 requirement that the
  number of advancing packets at each node is the maximum possible.
* :class:`CapacityValidator` — node load never exceeds node degree
  (an internal consistency check; a violation means an engine bug).

A validator failure raises immediately, so a buggy policy cannot
produce silently wrong experiment data.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence

from repro.core.metrics import PacketStepInfo
from repro.core.node_view import NodeView
from repro.core.policy import RoutingPolicy
from repro.exceptions import (
    CapacityExceededError,
    GreedinessViolationError,
    RestrictedPriorityViolationError,
)
from repro.mesh.directions import Direction


class StepValidator(abc.ABC):
    """Checks one node's routed step for a protocol property."""

    @abc.abstractmethod
    def validate_node(
        self, view: NodeView, infos: Sequence[PacketStepInfo]
    ) -> None:
        """Raise a :class:`~repro.exceptions.ProtocolViolationError`
        subclass when the property is violated at this node."""


class CapacityValidator(StepValidator):
    """Node load must never exceed the node's degree."""

    def validate_node(
        self, view: NodeView, infos: Sequence[PacketStepInfo]
    ) -> None:
        degree = view.mesh.degree(view.node)
        if len(infos) > degree:
            raise CapacityExceededError(
                f"step {view.step}: node {view.node} holds {len(infos)} "
                f"packets but has degree {degree}"
            )


class GreedyValidator(StepValidator):
    """Definition 6: deflected packets had all good arcs taken by advancers."""

    def validate_node(
        self, view: NodeView, infos: Sequence[PacketStepInfo]
    ) -> None:
        advancing_directions = {
            info.assigned_direction for info in infos if info.advanced
        }
        for info in infos:
            if info.advanced:
                continue
            packet = next(p for p in view.packets if p.id == info.packet_id)
            for direction in view.good_directions(packet):
                if direction not in advancing_directions:
                    raise GreedinessViolationError(
                        f"step {view.step}: packet {info.packet_id} deflected "
                        f"at {view.node} although its good direction "
                        f"{direction} was not used by an advancing packet"
                    )


class RestrictedPriorityValidator(StepValidator):
    """Definition 18: only restricted packets may deflect restricted ones."""

    def validate_node(
        self, view: NodeView, infos: Sequence[PacketStepInfo]
    ) -> None:
        by_direction: Dict[Direction, PacketStepInfo] = {
            info.assigned_direction: info for info in infos
        }
        for info in infos:
            if info.advanced or not info.restricted:
                continue
            packet = next(p for p in view.packets if p.id == info.packet_id)
            (good,) = view.good_directions(packet)
            user = by_direction.get(good)
            if user is None or not user.advanced:
                # Not even greedy; GreedyValidator reports it with a
                # clearer message, but fail here too for standalone use.
                raise RestrictedPriorityViolationError(
                    f"step {view.step}: restricted packet {info.packet_id} "
                    f"deflected at {view.node} while its good direction "
                    f"{good} was unused"
                )
            if not user.restricted:
                raise RestrictedPriorityViolationError(
                    f"step {view.step}: non-restricted packet "
                    f"{user.packet_id} deflected restricted packet "
                    f"{info.packet_id} at {view.node}"
                )


class MaxAdvanceValidator(StepValidator):
    """Section 5 requirement: maximize the number of advancing packets."""

    def validate_node(
        self, view: NodeView, infos: Sequence[PacketStepInfo]
    ) -> None:
        # Import here to avoid a cycle: matching is engine-independent.
        from repro.core.matching import maximum_matching_size

        adjacency = {
            packet.id: list(view.good_directions(packet))
            for packet in view.packets
        }
        best = maximum_matching_size(adjacency)
        actual = sum(1 for info in infos if info.advanced)
        if actual < best:
            raise GreedinessViolationError(
                f"step {view.step}: node {view.node} advanced {actual} "
                f"packets but a maximum matching advances {best}"
            )


def validators_for(
    policy: RoutingPolicy, strict: bool = True
) -> List[StepValidator]:
    """Build the validator stack implied by a policy's declarations.

    With ``strict`` False only the cheap capacity check is returned
    (useful for large benchmark runs once correctness is established).
    """
    validators: List[StepValidator] = [CapacityValidator()]
    if not strict:
        return validators
    if policy.declares_greedy:
        validators.append(GreedyValidator())
    if policy.declares_restricted_priority:
        validators.append(RestrictedPriorityValidator())
    if policy.declares_max_advance:
        validators.append(MaxAdvanceValidator())
    return validators
