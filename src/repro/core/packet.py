"""Packets and their per-run mutable state.

A :class:`Packet` carries the immutable routing request (source,
destination) plus the bookkeeping the engine maintains while the packet
is in flight: current location, the arc it entered through, whether it
advanced in the previous step, and whether it was *restricted* (exactly
one good direction, Section 4.1) at the start of the previous step.

The last two flags implement the paper's type-A/type-B classification
of restricted packets (Figure 5):

* **Type A** — restricted now, was restricted in the previous step, and
  advanced in that step.
* **Type B** — restricted now, but either deflected in the previous
  step or not restricted then (this includes freshly injected packets).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.mesh.directions import Direction
from repro.types import Node, PacketId, Step


class RestrictedType(enum.Enum):
    """Classification of a packet at the start of a step (Section 4.1)."""

    TYPE_A = "A"
    TYPE_B = "B"
    UNRESTRICTED = "unrestricted"


@dataclass(slots=True)
class Packet:
    """One routed packet.

    The identity triple ``(id, source, destination)`` never changes;
    everything else is engine-owned running state.  Policies may read
    any field except ``source`` — the paper's model explicitly never
    uses packet sources in routing decisions, and the validators treat
    reading it as out-of-model (this is a documented convention, not an
    enforced barrier).

    The class is slotted: simulations hold one instance per request for
    the whole run and the engine reads/writes these fields every step,
    so the dict-free layout measurably cuts both memory and attribute
    access time.
    """

    id: PacketId
    source: Node
    destination: Node

    #: Current node (meaningful while in flight).
    location: Node = field(default=(), compare=False)
    #: Direction of the arc the packet arrived through, None at origin.
    entry_direction: Optional[Direction] = field(default=None, compare=False)
    #: Step at which the packet was absorbed at its destination, or None.
    delivered_at: Optional[Step] = field(default=None, compare=False)
    #: Step at which a fault event removed the packet, or None.
    dropped_at: Optional[Step] = field(default=None, compare=False)

    #: True when the packet got closer to its destination last step.
    advanced_last_step: bool = field(default=False, compare=False)
    #: True when the packet was restricted at the start of last step.
    restricted_last_step: bool = field(default=False, compare=False)

    #: Running statistics.
    hops: int = field(default=0, compare=False)
    advances: int = field(default=0, compare=False)
    deflections: int = field(default=0, compare=False)

    #: Full node path, recorded only when the engine keeps traces.
    path: List[Node] = field(default_factory=list, compare=False)

    def __post_init__(self) -> None:
        if not self.location:
            self.location = self.source

    @property
    def delivered(self) -> bool:
        """True once the packet has been absorbed at its destination."""
        return self.delivered_at is not None

    @property
    def dropped(self) -> bool:
        """True once a fault event removed the packet from the network."""
        return self.dropped_at is not None

    @property
    def in_flight(self) -> bool:
        """True while the packet still occupies a mesh node."""
        return self.delivered_at is None and self.dropped_at is None

    def classify(self, restricted_now: bool) -> RestrictedType:
        """Classify the packet at the start of the current step.

        ``restricted_now`` is whether the packet currently has exactly
        one good direction; the previous-step flags are taken from the
        packet's own state.
        """
        if not restricted_now:
            return RestrictedType.UNRESTRICTED
        if self.restricted_last_step and self.advanced_last_step:
            return RestrictedType.TYPE_A
        return RestrictedType.TYPE_B

    def clone(self) -> "Packet":
        """Deep-ish copy used by trace snapshots (path list is copied)."""
        duplicate = Packet(self.id, self.source, self.destination)
        duplicate.location = self.location
        duplicate.entry_direction = self.entry_direction
        duplicate.delivered_at = self.delivered_at
        duplicate.dropped_at = self.dropped_at
        duplicate.advanced_last_step = self.advanced_last_step
        duplicate.restricted_last_step = self.restricted_last_step
        duplicate.hops = self.hops
        duplicate.advances = self.advances
        duplicate.deflections = self.deflections
        duplicate.path = list(self.path)
        return duplicate
