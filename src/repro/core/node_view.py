"""The local picture a node sees during one synchronous step.

Per Section 2 of the paper, each step every node (1) takes in the
packets sent to it, (2) makes a local computation that may depend on
the packets' destinations and entry arcs, and (3) assigns a distinct
outgoing arc to every packet.  A :class:`NodeView` is the input to
step (2): the node, the step number, the packets present, and cached
good-direction information.

Policies receive one view per occupied node and must return a
direction for every packet in it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.packet import Packet, RestrictedType
from repro.mesh.directions import Direction
from repro.mesh.topology import Mesh
from repro.types import Node, PacketId, Step


class NodeView:
    """Everything a routing policy may use at one node in one step.

    The view pre-computes each packet's good directions (Definition 5)
    and restricted-type classification (Section 4.1) because almost
    every policy needs them; computing them once here also guarantees
    the validators and the policy agree on the classification.
    """

    __slots__ = (
        "mesh",
        "node",
        "step",
        "packets",
        "out_directions",
        "_good",
        "_types",
    )

    def __init__(
        self, mesh: Mesh, node: Node, step: Step, packets: List[Packet]
    ) -> None:
        self.mesh = mesh
        self.node = node
        self.step = step
        #: Packets present, in ascending id order (deterministic).
        self.packets: Tuple[Packet, ...] = tuple(
            sorted(packets, key=lambda p: p.id)
        )
        #: Directions in which an arc leaves this node (shared with the
        #: mesh's per-node arc table; treat as immutable).
        self.out_directions: Tuple[Direction, ...] = mesh.node_arcs(
            node
        ).out_directions
        good_of = mesh.good_directions_tuple
        self._good: Dict[PacketId, Tuple[Direction, ...]] = {}
        self._types: Dict[PacketId, RestrictedType] = {}
        for packet in self.packets:
            good = good_of(node, packet.destination)
            self._good[packet.id] = good
            self._types[packet.id] = packet.classify(len(good) == 1)

    # ------------------------------------------------------------------
    # Per-packet queries
    # ------------------------------------------------------------------

    def good_directions(self, packet: Packet) -> Tuple[Direction, ...]:
        """The packet's good directions out of this node (Definition 5)."""
        return self._good[packet.id]

    def num_good(self, packet: Packet) -> int:
        """Number of good directions of the packet."""
        return len(self._good[packet.id])

    def is_restricted(self, packet: Packet) -> bool:
        """True when the packet has exactly one good direction (Section 4.1)."""
        return len(self._good[packet.id]) == 1

    def restricted_type(self, packet: Packet) -> RestrictedType:
        """Type A / type B / unrestricted classification (Figure 5)."""
        return self._types[packet.id]

    def is_type_a(self, packet: Packet) -> bool:
        """True for restricted packets that advanced while restricted last step."""
        return self._types[packet.id] is RestrictedType.TYPE_A

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    @property
    def load(self) -> int:
        """Number of packets at the node this step (the paper's ℓ)."""
        return len(self.packets)

    def is_bad_node(self) -> bool:
        """Definition 9: a node with more than ``d`` packets is *bad*."""
        return self.load > self.mesh.dimension

    def advancing_capacity(self) -> int:
        """Upper bound on simultaneously advancing packets here
        (number of distinct good directions over all packets)."""
        distinct = set()
        for directions in self._good.values():
            distinct.update(directions)
        return len(distinct)

    def __repr__(self) -> str:
        return (
            f"NodeView(node={self.node}, step={self.step}, "
            f"load={self.load})"
        )
