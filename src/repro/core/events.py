"""Observer hooks for simulation runs.

Observers let analyses (potential trackers, trace recorders, live
renderers) watch a run without the engine knowing about them.  All
methods have empty defaults, so an observer overrides only what it
needs.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.metrics import RunResult, StepMetrics, StepRecord


class RunObserver:
    """Base class for objects notified as a run progresses.

    ``engine`` is deliberately untyped: any engine built on
    :class:`~repro.core.kernel.StepKernel` (batch hot-potato, buffered,
    or the dynamic engines) can host observers, and they share duck
    compatibility (``mesh``, ``time``, ``in_flight``) rather than a
    base class.  Dynamic engines fire ``on_run_start``/``on_step`` but
    not ``on_run_end`` — they produce no :class:`RunResult`.
    """

    def on_run_start(self, engine: Any) -> None:
        """Called once, after packets are placed but before step 0."""

    def on_step(self, record: StepRecord, metrics: StepMetrics) -> None:
        """Called after every step, with the record of what moved."""

    def on_run_end(self, result: RunResult) -> None:
        """Called once, after the last packet is delivered or the
        step limit is reached."""


class CallbackObserver(RunObserver):
    """Adapter wrapping plain callables as an observer.

    Useful in tests and notebooks::

        engine.observers.append(CallbackObserver(on_step=print))
    """

    def __init__(
        self,
        on_run_start: Optional[Callable[[Any], None]] = None,
        on_step: Optional[Callable[[StepRecord, StepMetrics], None]] = None,
        on_run_end: Optional[Callable[[RunResult], None]] = None,
    ) -> None:
        self._on_run_start = on_run_start
        self._on_step = on_step
        self._on_run_end = on_run_end

    def on_run_start(self, engine: Any) -> None:
        if self._on_run_start is not None:
            self._on_run_start(engine)

    def on_step(self, record: StepRecord, metrics: StepMetrics) -> None:
        if self._on_step is not None:
            self._on_step(record, metrics)

    def on_run_end(self, result: RunResult) -> None:
        if self._on_run_end is not None:
            self._on_run_end(result)
