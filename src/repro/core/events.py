"""Observer hooks for simulation runs.

Observers let analyses (potential trackers, trace recorders, live
renderers) watch a run without the engine knowing about them.  All
methods have empty defaults, so an observer overrides only what it
needs.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.kernel import StepSummary
from repro.core.metrics import StepMetrics, StepRecord


class RunObserver:
    """Base class for objects notified as a run progresses.

    ``engine`` is deliberately untyped: any engine built on
    :class:`~repro.core.kernel.StepKernel` (batch hot-potato, buffered,
    or the dynamic engines) can host observers, and they share duck
    compatibility (``mesh``, ``time``, ``in_flight``) rather than a
    base class.  All four engines fire the full lifecycle; what
    ``on_run_end`` receives depends on the engine — a
    :class:`RunResult` from the batch engines, a
    :class:`~repro.dynamic.stats.DynamicStats` from the dynamic ones.
    """

    #: Whether this observer consumes per-step records.  Attaching a
    #: default (``True``) observer forces the engine onto the
    #: instrumented step loop so ``on_step`` has records to deliver.
    #: Observers that only act at run boundaries (telemetry loggers,
    #: manifest writers) set this to ``False`` and keep the engine on
    #: its lean kernel loop; their ``on_step`` then never fires.
    needs_steps: bool = True

    #: Whether this observer consumes per-step summaries.  Unlike
    #: ``needs_steps``, this hook is *lean-loop safe*: every kernel
    #: path (lean, guarded, profiled, soa, instrumented) already emits
    #: one :class:`~repro.core.kernel.StepSummary` per step, so
    #: summary observers never disqualify the fast path and work on
    #: every backend.  The series recorders and metric recorders in
    #: :mod:`repro.obs` set this (with ``needs_steps = False``).
    needs_summaries: bool = False

    def on_run_start(self, engine: Any) -> None:
        """Called once, after packets are placed but before step 0."""

    def on_step(self, record: StepRecord, metrics: StepMetrics) -> None:
        """Called after every step, with the record of what moved.

        Only fires on the instrumented loop, i.e. when at least one
        attached observer has ``needs_steps = True``."""

    def on_summary(self, summary: StepSummary) -> None:
        """Called after every step with its cheap scalar summary.

        Fires on *all* kernel paths (the lean loops included) — but
        only when ``needs_summaries`` is True, so engines skip the
        dispatch entirely for ordinary observers."""

    def on_run_end(self, result: Any) -> None:
        """Called once when the run returns.

        Batch engines pass their :class:`RunResult` (after the last
        packet is delivered or the step limit is reached); dynamic
        engines pass the finalized
        :class:`~repro.dynamic.stats.DynamicStats` when ``run(steps)``
        returns its horizon."""


class CallbackObserver(RunObserver):
    """Adapter wrapping plain callables as an observer.

    Useful in tests and notebooks::

        engine.observers.append(CallbackObserver(on_step=print))

    ``needs_steps``/``needs_summaries`` follow the callbacks: without
    an ``on_step`` callback the adapter is a run-boundary observer and
    does not force the instrumented loop; an ``on_summary`` callback
    subscribes to the lean-loop-safe per-step summaries.
    """

    def __init__(
        self,
        on_run_start: Optional[Callable[[Any], None]] = None,
        on_step: Optional[Callable[[StepRecord, StepMetrics], None]] = None,
        on_run_end: Optional[Callable[[Any], None]] = None,
        on_summary: Optional[Callable[[StepSummary], None]] = None,
    ) -> None:
        self._on_run_start = on_run_start
        self._on_step = on_step
        self._on_run_end = on_run_end
        self._on_summary = on_summary
        self.needs_steps = on_step is not None
        self.needs_summaries = on_summary is not None

    def on_run_start(self, engine: Any) -> None:
        if self._on_run_start is not None:
            self._on_run_start(engine)

    def on_step(self, record: StepRecord, metrics: StepMetrics) -> None:
        if self._on_step is not None:
            self._on_step(record, metrics)

    def on_summary(self, summary: StepSummary) -> None:
        if self._on_summary is not None:
            self._on_summary(summary)

    def on_run_end(self, result: Any) -> None:
        if self._on_run_end is not None:
            self._on_run_end(result)
