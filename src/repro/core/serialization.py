"""JSON serialization of problems, results, and traces.

Experiment artifacts need to outlive a Python session: the harness
saves run results next to the benchmark tables, and traces can be
archived and replay-verified later.  Everything round-trips through
plain JSON-compatible dictionaries; meshes are reconstructed from
their ``(kind, dimension, side)`` signature.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.core.metrics import (
    PacketOutcome,
    PacketStepInfo,
    RunResult,
    StepMetrics,
    StepRecord,
)
from repro.core.packet import RestrictedType
from repro.core.problem import RoutingProblem
from repro.core.trace import Trace
from repro.exceptions import TraceError
from repro.faults.report import RunAborted
from repro.mesh.directions import Direction
from repro.mesh.hypercube import Hypercube
from repro.mesh.topology import Mesh
from repro.mesh.torus import Torus
from repro.obs.telemetry import RunTelemetry

_MESH_KINDS = {
    "mesh": lambda dimension, side: Mesh(dimension, side),
    "torus": lambda dimension, side: Torus(dimension, side),
    "hypercube": lambda dimension, side: Hypercube(dimension),
}


# ----------------------------------------------------------------------
# Meshes
# ----------------------------------------------------------------------


def mesh_to_dict(mesh: Mesh) -> Dict[str, Any]:
    return {"kind": mesh.kind, "dimension": mesh.dimension, "side": mesh.side}


def mesh_from_dict(data: Dict[str, Any]) -> Mesh:
    kind = data["kind"]
    if kind not in _MESH_KINDS:
        raise TraceError(f"unknown mesh kind {kind!r}")
    return _MESH_KINDS[kind](int(data["dimension"]), int(data["side"]))


# ----------------------------------------------------------------------
# Problems
# ----------------------------------------------------------------------


def problem_to_dict(problem: RoutingProblem) -> Dict[str, Any]:
    return {
        "mesh": mesh_to_dict(problem.mesh),
        "name": problem.name,
        "requests": [
            [list(r.source), list(r.destination)] for r in problem.requests
        ],
    }


def problem_from_dict(data: Dict[str, Any]) -> RoutingProblem:
    mesh = mesh_from_dict(data["mesh"])
    pairs = [
        (tuple(source), tuple(destination))
        for source, destination in data["requests"]
    ]
    return RoutingProblem.from_pairs(mesh, pairs, name=data.get("name", ""))


# ----------------------------------------------------------------------
# Directions / step infos
# ----------------------------------------------------------------------


def _direction_to_list(direction: Optional[Direction]) -> Optional[List[int]]:
    if direction is None:
        return None
    return [direction.axis, direction.sign]


def _direction_from_list(data: Optional[List[int]]) -> Optional[Direction]:
    if data is None:
        return None
    return Direction(int(data[0]), int(data[1]))


def _info_to_dict(info: PacketStepInfo) -> Dict[str, Any]:
    return {
        "packet_id": info.packet_id,
        "node": list(info.node),
        "destination": list(info.destination),
        "entry": _direction_to_list(info.entry_direction),
        "direction": _direction_to_list(info.assigned_direction),
        "next_node": list(info.next_node),
        "distance_before": info.distance_before,
        "distance_after": info.distance_after,
        "num_good": info.num_good,
        "restricted": info.restricted,
        "type": info.restricted_type.value,
    }


def _info_from_dict(data: Dict[str, Any]) -> PacketStepInfo:
    return PacketStepInfo(
        packet_id=int(data["packet_id"]),
        node=tuple(data["node"]),
        destination=tuple(data["destination"]),
        entry_direction=_direction_from_list(data["entry"]),
        assigned_direction=_direction_from_list(data["direction"]),
        next_node=tuple(data["next_node"]),
        distance_before=int(data["distance_before"]),
        distance_after=int(data["distance_after"]),
        num_good=int(data["num_good"]),
        restricted=bool(data["restricted"]),
        restricted_type=RestrictedType(data["type"]),
    )


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------


def result_to_dict(result: RunResult) -> Dict[str, Any]:
    """Serialize a result (step metrics and outcomes, no step records).

    The optional ``records`` payload is intentionally dropped — full
    movement history belongs in a :class:`Trace`, archived separately
    via :func:`save_trace`.  The ``abort`` record and per-outcome
    ``dropped_at`` stamps are emitted only when present, so payloads
    from fault-free runs are unchanged.
    """
    payload = {
        "problem_name": result.problem_name,
        "policy_name": result.policy_name,
        "mesh_kind": result.mesh_kind,
        "dimension": result.dimension,
        "side": result.side,
        "k": result.k,
        "completed": result.completed,
        "total_steps": result.total_steps,
        "delivered": result.delivered,
        "seed": result.seed,
        "telemetry": (
            result.telemetry.to_dict()
            if result.telemetry is not None
            else None
        ),
        "step_metrics": [
            {
                "step": m.step,
                "in_flight": m.in_flight,
                "advancing": m.advancing,
                "deflected": m.deflected,
                "delivered_total": m.delivered_total,
                "total_distance": m.total_distance,
                "max_node_load": m.max_node_load,
                "bad_nodes": m.bad_nodes,
                "packets_in_bad_nodes": m.packets_in_bad_nodes,
                "packets_in_good_nodes": m.packets_in_good_nodes,
            }
            for m in result.step_metrics
        ],
        "outcomes": [
            {
                "packet_id": o.packet_id,
                "source": list(o.source),
                "destination": list(o.destination),
                "shortest_distance": o.shortest_distance,
                "delivered_at": o.delivered_at,
                "hops": o.hops,
                "advances": o.advances,
                "deflections": o.deflections,
                **(
                    {"dropped_at": o.dropped_at}
                    if o.dropped_at is not None
                    else {}
                ),
            }
            for o in result.outcomes
        ],
    }
    if result.abort is not None:
        payload["abort"] = result.abort.to_dict()
    return payload


def result_from_dict(data: Dict[str, Any]) -> RunResult:
    return RunResult(
        problem_name=data["problem_name"],
        policy_name=data["policy_name"],
        mesh_kind=data["mesh_kind"],
        dimension=int(data["dimension"]),
        side=int(data["side"]),
        k=int(data["k"]),
        completed=bool(data["completed"]),
        total_steps=int(data["total_steps"]),
        delivered=int(data["delivered"]),
        seed=data.get("seed"),
        telemetry=(
            RunTelemetry.from_dict(data["telemetry"])
            if data.get("telemetry") is not None
            else None
        ),
        step_metrics=[
            StepMetrics(**metrics) for metrics in data["step_metrics"]
        ],
        outcomes=[
            PacketOutcome(
                packet_id=int(o["packet_id"]),
                source=tuple(o["source"]),
                destination=tuple(o["destination"]),
                shortest_distance=int(o["shortest_distance"]),
                delivered_at=o["delivered_at"],
                hops=int(o["hops"]),
                advances=int(o["advances"]),
                deflections=int(o["deflections"]),
                dropped_at=o.get("dropped_at"),
            )
            for o in data["outcomes"]
        ],
        abort=(
            RunAborted.from_dict(data["abort"])
            if data.get("abort") is not None
            else None
        ),
    )


# ----------------------------------------------------------------------
# Traces
# ----------------------------------------------------------------------


def trace_to_dict(trace: Trace) -> Dict[str, Any]:
    return {
        "problem": problem_to_dict(trace.problem),
        "policy_name": trace.policy_name,
        "seed": trace.seed,
        "records": [
            {
                "step": record.step,
                "infos": [
                    _info_to_dict(info) for info in record.infos.values()
                ],
                "delivered_after": list(record.delivered_after),
            }
            for record in trace.records
        ],
    }


def trace_from_dict(data: Dict[str, Any]) -> Trace:
    records = []
    for record_data in data["records"]:
        infos = {
            int(info["packet_id"]): _info_from_dict(info)
            for info in record_data["infos"]
        }
        records.append(
            StepRecord(
                step=int(record_data["step"]),
                infos=infos,
                delivered_after=tuple(record_data["delivered_after"]),
            )
        )
    return Trace(
        problem=problem_from_dict(data["problem"]),
        policy_name=data["policy_name"],
        seed=data.get("seed"),
        records=records,
    )


# ----------------------------------------------------------------------
# File helpers
# ----------------------------------------------------------------------


def save_trace(trace: Trace, path: str) -> None:
    """Write a trace as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace_to_dict(trace), handle)


def load_trace(path: str) -> Trace:
    """Read a JSON trace and verify its internal consistency."""
    with open(path, "r", encoding="utf-8") as handle:
        trace = trace_from_dict(json.load(handle))
    trace.verify_consistency()
    return trace


def save_result(result: RunResult, path: str) -> None:
    """Write a run result as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result_to_dict(result), handle)


def load_result(path: str) -> RunResult:
    """Read a JSON run result."""
    with open(path, "r", encoding="utf-8") as handle:
        return result_from_dict(json.load(handle))
