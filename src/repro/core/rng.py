"""Seeded randomness helpers.

Every stochastic component in the library takes an explicit
``random.Random`` instance (or a seed) so that simulations are
reproducible bit-for-bit.  These helpers normalize the two forms and
derive independent child streams for sub-components.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional, Union

RngLike = Union[int, random.Random, None]


def describe_seed(seed: RngLike) -> Union[int, str]:
    """A reproducible description of an engine seed for run results.

    Integer seeds pass through; ``None`` is the library's deterministic
    default stream (seed 0); a caller-provided ``random.Random``
    carries hidden state, so its description is a digest of that state
    — two engines handed equal-state generators report the same value,
    and the value never silently collides with a plain integer seed.
    """
    if isinstance(seed, int):
        return seed
    if seed is None:
        return 0  # make_rng(None) is the deterministic seed-0 stream
    digest = hashlib.sha256(repr(seed.getstate()).encode("utf-8")).hexdigest()
    return f"rng-state:{digest[:16]}"


def make_rng(seed: RngLike = None) -> random.Random:
    """Return a ``random.Random`` from a seed, an existing Random, or None.

    ``None`` yields a deterministic default stream (seed 0) rather than
    OS entropy: reproducibility is the library default, and callers who
    want fresh entropy can pass ``random.Random()`` explicitly.
    """
    if isinstance(seed, random.Random):
        return seed
    if seed is None:
        return random.Random(0)
    return random.Random(seed)


def spawn(rng: random.Random, key: str) -> random.Random:
    """Derive an independent child stream labeled by ``key``.

    The child is seeded from the parent's state and the label, so two
    children with different labels are decorrelated while remaining a
    pure function of the parent seed.
    """
    return random.Random(f"{rng.getrandbits(64)}:{key}")


def fresh_seed(rng: Optional[random.Random] = None) -> int:
    """Draw a 63-bit seed suitable for labeling runs."""
    source = rng if rng is not None else random.Random()
    return source.getrandbits(63)
