"""Store-and-forward engine for the structured baselines.

The paper contrasts hot-potato routing with traditional
store-and-forward routing, where "a packet is stored at a processor
until it can be transmitted to its preferred direction" (Section 1).
This engine implements that model: nodes have unbounded buffers, each
step a node may send at most one packet per outgoing arc, and packets
that cannot be sent simply wait.

It exists so the benchmark suite can compare greedy hot-potato
algorithms against a classical structured comparator (dimension-order
routing) on identical workloads, including buffer-occupancy statistics
— the resource hot-potato routing eliminates.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from repro.core.metrics import PacketOutcome, RunResult, StepMetrics
from repro.core.node_view import NodeView
from repro.core.packet import Packet
from repro.core.policy import BufferedPolicy
from repro.core.problem import RoutingProblem
from repro.core.rng import RngLike, make_rng
from repro.exceptions import ArcAssignmentError, LivelockSuspectedError
from repro.types import Node


class BufferedEngine:
    """Synchronous store-and-forward simulator.

    The interface mirrors :class:`~repro.core.engine.HotPotatoEngine`
    so experiment code can treat both uniformly, but the semantics
    differ: a :class:`~repro.core.policy.BufferedPolicy` returns a
    *partial* assignment and unassigned packets remain buffered.
    """

    def __init__(
        self,
        problem: RoutingProblem,
        policy: BufferedPolicy,
        *,
        seed: RngLike = 0,
        max_steps: Optional[int] = None,
        raise_on_timeout: bool = False,
    ) -> None:
        self.problem = problem
        self.mesh = problem.mesh
        self.policy = policy
        self.rng = make_rng(seed)
        self._seed = seed if isinstance(seed, int) else None
        self.max_steps = (
            max_steps
            if max_steps is not None
            else max(256, 8 * (problem.k + self.mesh.diameter) + 64)
        )
        self.raise_on_timeout = raise_on_timeout

        self.time = 0
        self.packets: List[Packet] = problem.make_packets()
        self.in_flight: List[Packet] = []
        self._metrics: List[StepMetrics] = []
        self._max_buffer_seen = 0
        self._started = False

    @property
    def max_buffer_seen(self) -> int:
        """Largest per-node buffer occupancy observed (the cost the
        hot-potato discipline avoids)."""
        return self._max_buffer_seen

    def run(self) -> RunResult:
        self._start()
        while self.in_flight and self.time < self.max_steps:
            self.step()
        if self.in_flight and self.raise_on_timeout:
            raise LivelockSuspectedError(
                f"{len(self.in_flight)} packets still buffered after "
                f"{self.time} steps under {self.policy.name!r}"
            )
        return self._build_result()

    def step(self) -> None:
        self._start()
        groups: Dict[Node, List[Packet]] = defaultdict(list)
        for packet in self.in_flight:
            groups[packet.location].append(packet)
        self._max_buffer_seen = max(
            self._max_buffer_seen,
            max((len(g) for g in groups.values()), default=0),
        )

        moves: Dict[int, Node] = {}
        advancing = 0
        total_distance = 0
        for node in sorted(groups):
            view = NodeView(self.mesh, node, self.time, groups[node])
            assignment = self.policy.forward(view)
            seen_directions = set()
            packet_ids = {p.id for p in view.packets}
            for packet_id, direction in assignment.items():
                if packet_id not in packet_ids:
                    raise ArcAssignmentError(
                        f"step {self.time}: buffered policy sent unknown "
                        f"packet {packet_id} from {node}"
                    )
                if direction in seen_directions:
                    raise ArcAssignmentError(
                        f"step {self.time}: direction {direction} used twice "
                        f"at {node}"
                    )
                seen_directions.add(direction)
                next_node = self.mesh.neighbor(node, direction)
                if next_node is None:
                    raise ArcAssignmentError(
                        f"step {self.time}: direction {direction} leaves the "
                        f"mesh at {node}"
                    )
                moves[packet_id] = next_node
            for packet in view.packets:
                total_distance += self.mesh.distance(node, packet.destination)

        self.time += 1
        remaining: List[Packet] = []
        for packet in self.in_flight:
            if packet.id in moves:
                next_node = moves[packet.id]
                if self.mesh.distance(
                    next_node, packet.destination
                ) < self.mesh.distance(packet.location, packet.destination):
                    packet.advances += 1
                    advancing += 1
                else:
                    packet.deflections += 1
                packet.location = next_node
                packet.hops += 1
            if packet.location == packet.destination:
                packet.delivered_at = self.time
            else:
                remaining.append(packet)
        self.in_flight = remaining

        in_flight_before = sum(len(g) for g in groups.values())
        self._metrics.append(
            StepMetrics(
                step=self.time - 1,
                in_flight=in_flight_before,
                advancing=advancing,
                deflected=len(moves) - advancing,
                delivered_total=sum(1 for p in self.packets if p.delivered),
                total_distance=total_distance,
                max_node_load=self._max_buffer_seen,
                bad_nodes=0,
                packets_in_bad_nodes=0,
                packets_in_good_nodes=in_flight_before,
            )
        )

    def _start(self) -> None:
        if self._started:
            return
        self._started = True
        self.policy.prepare(self.mesh, self.problem, self.rng)
        self.in_flight = []
        for packet in self.packets:
            if packet.location == packet.destination:
                packet.delivered_at = 0
            else:
                self.in_flight.append(packet)

    def _build_result(self) -> RunResult:
        delivered_times = [
            p.delivered_at for p in self.packets if p.delivered_at is not None
        ]
        total_steps = max(delivered_times) if delivered_times else 0
        completed = not self.in_flight
        if not completed:
            total_steps = self.time
        outcomes = [
            PacketOutcome(
                packet_id=p.id,
                source=p.source,
                destination=p.destination,
                shortest_distance=self.mesh.distance(p.source, p.destination),
                delivered_at=p.delivered_at,
                hops=p.hops,
                advances=p.advances,
                deflections=p.deflections,
            )
            for p in self.packets
        ]
        return RunResult(
            problem_name=self.problem.name or "problem",
            policy_name=self.policy.name,
            mesh_kind=self.mesh.kind,
            dimension=self.mesh.dimension,
            side=self.mesh.side,
            k=self.problem.k,
            completed=completed,
            total_steps=total_steps,
            delivered=len(delivered_times),
            step_metrics=self._metrics,
            outcomes=outcomes,
            records=None,
            seed=self._seed,
        )
