"""Store-and-forward engine for the structured baselines.

The paper contrasts hot-potato routing with traditional
store-and-forward routing, where "a packet is stored at a processor
until it can be transmitted to its preferred direction" (Section 1).
This engine implements that model: nodes have unbounded buffers, each
step a node may send at most one packet per outgoing arc, and packets
that cannot be sent simply wait.

It is a buffered configuration of the shared
:class:`~repro.core.kernel.StepKernel` (sorted node order, partial
assignments via :meth:`~repro.core.policy.BufferedPolicy.forward`); no
validators run by default because buffer occupancy legitimately
exceeds node degree.  Step metrics carry real per-step loads and
bad-node counts (historically this engine reported the cumulative
buffer maximum and zeros there); ``RunResult.max_load_seen`` is
unchanged by that, and ``RunResult.seed`` now uses the shared
:func:`~repro.core.rng.describe_seed` convention.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
)

from repro.core.events import RunObserver
from repro.core.kernel import (
    PhaseSink,
    StepKernel,
    StepSummary,
    build_run_result,
    default_step_limit,
    lean_equivalent,
    step_metrics_from_summary,
)
from repro.core.metrics import RunResult, StepMetrics
from repro.core.packet import Packet
from repro.core.policy import BufferedPolicy
from repro.core.problem import RoutingProblem
from repro.core.rng import RngLike, describe_seed, make_rng
from repro.core.validation import StepValidator
from repro.exceptions import LivelockSuspectedError
from repro.faults import (
    ActiveFaults,
    FaultSchedule,
    RunWatchdog,
    step_limit_abort,
)
from repro.obs.telemetry import RunTelemetry

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.soa.adapters import PolicyAdapter


class BufferedEngine:
    """Synchronous store-and-forward simulator.

    The interface mirrors :class:`~repro.core.engine.HotPotatoEngine`
    so experiment code can treat both uniformly, but the semantics
    differ: a :class:`~repro.core.policy.BufferedPolicy` returns a
    *partial* assignment and unassigned packets remain buffered.
    """

    def __init__(
        self,
        problem: RoutingProblem,
        policy: BufferedPolicy,
        *,
        seed: RngLike = 0,
        validators: Sequence[StepValidator] = (),
        observers: Iterable[RunObserver] = (),
        max_steps: Optional[int] = None,
        raise_on_timeout: bool = False,
        profiler: Optional[PhaseSink] = None,
        faults: Optional[FaultSchedule] = None,
        watchdog: Optional[RunWatchdog] = None,
        backend: str = "object",
        checkpoint_every: Optional[int] = None,
        on_checkpoint: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        if backend not in ("object", "soa"):
            raise ValueError(
                f"backend must be 'object' or 'soa', got {backend!r}"
            )
        self.backend = backend
        self._soa_adapter: Optional["PolicyAdapter"] = None
        if backend == "soa":
            from repro.core.soa import adapter_for

            if watchdog is not None:
                raise ValueError(
                    "backend='soa' does not support watchdogs"
                )
            if faults is not None:
                if not faults.is_empty:
                    raise ValueError(
                        "backend='soa' does not support fault "
                        "schedules; an empty FaultSchedule is "
                        "accepted and ignored"
                    )
                faults = None
            self._soa_adapter = adapter_for(
                policy, buffered=True, has_injection=False
            )
        self.problem = problem
        self.mesh = problem.mesh
        self.policy = policy
        self.rng = make_rng(seed)
        self._seed = describe_seed(seed)
        self.validators: List[StepValidator] = list(validators)
        self.observers: List[RunObserver] = list(observers)
        self.max_steps = (
            max_steps if max_steps is not None else default_step_limit(problem)
        )
        self.raise_on_timeout = raise_on_timeout
        self.profiler = profiler
        self.telemetry = RunTelemetry()
        self.faults = faults
        if watchdog is None and faults is not None:
            watchdog = RunWatchdog()
        self.watchdog = watchdog
        if profiler is not None and (
            faults is not None or watchdog is not None
        ):
            raise ValueError(
                "profiling is incompatible with faults/watchdogs; "
                "drop the profiler or the fault schedule"
            )
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ValueError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
            if on_checkpoint is None:
                raise ValueError(
                    "checkpoint_every needs an on_checkpoint sink to "
                    "receive the snapshots"
                )
        self.checkpoint_every = checkpoint_every
        self.on_checkpoint = on_checkpoint
        self.packets: List[Packet] = problem.make_packets()
        self._metrics: List[StepMetrics] = []
        self._summary_sinks: List[Any] = []
        self._max_buffer_seen = 0
        self._started = False
        self._resumed = False
        self._kernel = StepKernel(
            self.mesh,
            policy,
            buffered=True,
            node_order="sorted",
            set_entry_direction=False,
            emit=self._note,
            telemetry=self.telemetry,
            faults=(
                ActiveFaults(self.mesh, faults)
                if faults is not None
                else None
            ),
            watchdog=watchdog,
        )

    @property
    def time(self) -> int:
        return self._kernel.time

    @property
    def in_flight(self) -> List[Packet]:
        return self._kernel.in_flight

    @property
    def max_buffer_seen(self) -> int:
        """Largest per-node buffer occupancy observed (the cost the
        hot-potato discipline avoids)."""
        return self._max_buffer_seen

    def run(self) -> RunResult:
        self._start()
        watchdog = self._kernel.watchdog
        if watchdog is not None and not self._resumed:
            # A resumed run keeps its restored watchdog counters (see
            # HotPotatoEngine.run).
            watchdog.reset(self._kernel)
        every = self.checkpoint_every
        if lean_equivalent(self.validators, self.observers, False):
            if every is None:
                self._run_fast(self.max_steps)
            else:
                while (
                    self.in_flight
                    and self.time < self.max_steps
                    and self._kernel.abort is None
                ):
                    boundary = ((self.time // every) + 1) * every
                    self._run_fast(min(self.max_steps, boundary))
                    self._maybe_checkpoint()
        else:
            if self.backend == "soa":
                raise ValueError(
                    "backend='soa' runs the lean loop only; detach "
                    "step-consuming observers and validators first"
                )
            if self.profiler is not None:
                raise ValueError(
                    "profiling times the lean kernel loop; detach "
                    "step-consuming observers and validators first"
                )
            while self.in_flight and self.time < self.max_steps:
                if watchdog is not None:
                    verdict = watchdog.check(self._kernel)
                    if verdict is not None:
                        self._kernel.abort = verdict
                        break
                self.step()
                if every is not None and self.time % every == 0:
                    self._maybe_checkpoint()
        if (
            self.in_flight
            and self.raise_on_timeout
            and self._kernel.abort is None
        ):
            raise LivelockSuspectedError(
                f"{len(self.in_flight)} packets still buffered after "
                f"{self.time} steps under {self.policy.name!r}"
            )
        if (
            self._kernel.abort is None
            and self.in_flight
            and self.time >= self.max_steps
        ):
            self._kernel.abort = step_limit_abort(
                self._kernel, self.max_steps
            )
        result = build_run_result(
            self.problem,
            self.policy.name,
            self.packets,
            self._kernel,
            self._metrics,
            None,
            self._seed,
            abort=self._kernel.abort,
        )
        for observer in self.observers:
            observer.on_run_end(result)
        return result

    def step(self) -> None:
        self._start()
        record, summary = self._kernel.step_instrumented(self.validators)
        self._note(summary)
        for observer in self.observers:
            observer.on_step(record, self._metrics[-1])

    def snapshot(self) -> Dict[str, Any]:
        """Capture this engine's complete state as a JSON-safe dict
        (see :mod:`repro.snapshot`); valid at any step boundary."""
        from repro.snapshot.engine import engine_snapshot

        return engine_snapshot(self)

    def resume_from(self, payload: Dict[str, Any]) -> None:
        """Restore a snapshot onto this freshly constructed engine
        (same inputs, not yet run); the next :meth:`run` continues
        bit-identically from the checkpointed step."""
        from repro.snapshot.engine import resume_engine

        resume_engine(self, payload)

    def _run_fast(self, until: int) -> None:
        """One lean-loop segment up to absolute step ``until``."""
        if self.backend == "soa":
            from repro.core.soa import SoaKernel

            adapter = self._soa_adapter
            assert adapter is not None
            SoaKernel(self._kernel, adapter).run(
                until, profiler=self.profiler
            )
        elif self.profiler is not None:
            self._kernel.run_profiled(until, self.profiler)
        else:
            self._kernel.run_lean(until)

    def _maybe_checkpoint(self) -> None:
        if (
            self.on_checkpoint is None
            or not self.in_flight
            or self._kernel.abort is not None
            or self.time >= self.max_steps
        ):
            return
        self.on_checkpoint(self.snapshot())

    def _note(self, summary: StepSummary) -> None:
        if summary.max_node_load > self._max_buffer_seen:
            self._max_buffer_seen = summary.max_node_load
        self._metrics.append(step_metrics_from_summary(summary))
        for sink in self._summary_sinks:
            sink(summary)

    def _start(self) -> None:
        if self._started:
            return
        self._started = True
        self.policy.prepare(self.mesh, self.problem, self.rng)
        delivered = 0
        remaining: List[Packet] = []
        for packet in self.packets:
            if packet.location == packet.destination:
                packet.delivered_at = 0
                delivered += 1
            else:
                remaining.append(packet)
        self._kernel.seed_packets(remaining, delivered_total=delivered)
        self._summary_sinks = [
            o.on_summary
            for o in self.observers
            if getattr(o, "needs_summaries", False)
        ]
        for observer in self.observers:
            observer.on_run_start(self)
