"""Core synchronous simulation machinery.

This package implements the model of Section 2 of the paper: packets,
many-to-many batch routing problems, the per-node view and policy
interface, the synchronous hot-potato engine with protocol validation,
and trace capture for offline analysis.  A buffered store-and-forward
engine is included for the structured baselines the paper contrasts
greedy hot-potato routing with.
"""

from repro.core.buffered_engine import BufferedEngine
from repro.core.engine import HotPotatoEngine, route
from repro.core.events import CallbackObserver, RunObserver
from repro.core.kernel import (
    InjectionSource,
    StepKernel,
    StepSummary,
    default_step_limit,
    step_metrics_from_summary,
)
from repro.core.matching import (
    greedy_maximal_matching,
    is_maximal_matching,
    maximum_matching_size,
    priority_maximum_matching,
)
from repro.core.metrics import (
    PacketOutcome,
    PacketStepInfo,
    RunResult,
    StepMetrics,
    StepRecord,
)
from repro.core.node_view import NodeView
from repro.core.packet import Packet, RestrictedType
from repro.core.policy import Assignment, BufferedPolicy, RoutingPolicy
from repro.core.problem import Request, RoutingProblem
from repro.core.rng import describe_seed, make_rng, spawn
from repro.core.trace import Trace, TraceRecorder, record_run, traces_equal
from repro.core.validation import (
    CapacityValidator,
    GreedyValidator,
    MaxAdvanceValidator,
    RestrictedPriorityValidator,
    StepValidator,
    validators_for,
)

__all__ = [
    "Assignment",
    "BufferedEngine",
    "BufferedPolicy",
    "CallbackObserver",
    "CapacityValidator",
    "GreedyValidator",
    "HotPotatoEngine",
    "InjectionSource",
    "MaxAdvanceValidator",
    "NodeView",
    "Packet",
    "PacketOutcome",
    "PacketStepInfo",
    "Request",
    "RestrictedPriorityValidator",
    "RestrictedType",
    "RoutingPolicy",
    "RoutingProblem",
    "RunObserver",
    "RunResult",
    "StepKernel",
    "StepMetrics",
    "StepRecord",
    "StepSummary",
    "StepValidator",
    "Trace",
    "TraceRecorder",
    "default_step_limit",
    "describe_seed",
    "greedy_maximal_matching",
    "is_maximal_matching",
    "make_rng",
    "maximum_matching_size",
    "priority_maximum_matching",
    "record_run",
    "route",
    "spawn",
    "step_metrics_from_summary",
    "traces_equal",
    "validators_for",
]
