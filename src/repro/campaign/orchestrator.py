"""The campaign front door: specs in, durable results out.

:class:`Campaign` ties the three lower layers together: it queues
declarative specs into a :class:`~repro.campaign.store.CampaignStore`,
dispatches the open ones through a persistent
:class:`~repro.campaign.pool.WorkerPool` (worker-side resolution via
:func:`repro.campaign.worker.execute_chunk`), and appends a durable
``case-finished`` / ``case-failed`` event as each result lands.  That
last part is where a 1-CPU machine still wins from ``workers=2``: the
parent fsyncs events while workers compute, overlapping the log's I/O
stalls with simulation instead of serializing them.

Crash safety is resume-by-replay: a killed campaign re-created over
the same store (or rebuilt from the store alone via
:meth:`Campaign.from_store`) restores every acknowledged point from
the event log and executes only the remainder — completed cases are
never re-run, queued events are never re-appended.

Execution order is the store's priority queue (``priority`` desc,
submission order within a priority) but :attr:`CampaignResult.points`
always comes back in spec order, and serial (``workers=1``) and
pooled runs of the same specs produce bit-identical points: both
paths run the same chunk function with the same summary-level
payload contract.
"""

from __future__ import annotations

import dataclasses
import functools
from dataclasses import dataclass, field
from types import TracebackType
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type, Union

from repro.campaign.pool import WorkerPool
from repro.campaign.results import (
    CaseFailure,
    ExperimentPoint,
    aggregate_telemetry,
)
from repro.campaign.spec import CaseSpec, spec_key
from repro.campaign.store import CampaignStore
from repro.campaign.worker import execute_chunk, initialize_worker
from repro.obs.metrics import MetricRegistry, fold_telemetry
from repro.obs.telemetry import RunTelemetry

__all__ = ["Campaign", "CampaignResult"]


@dataclass
class CampaignResult:
    """Outcome of one :meth:`Campaign.run`.

    ``points`` holds the successful cases in *spec* order (failed
    cases leave no hole — they appear in ``failures`` instead, keyed
    for the event log).  ``resumed`` counts points restored from the
    store rather than executed; ``degraded`` / ``chunked`` mirror the
    pool's account of the fabric.
    """

    points: List[ExperimentPoint] = field(default_factory=list)
    failures: List[CaseFailure] = field(default_factory=list)
    degraded: bool = False
    resumed: int = 0
    chunked: int = 0

    def all_completed(self) -> bool:
        return not self.failures and all(
            point.result.completed for point in self.points
        )

    def telemetry(self) -> Optional[RunTelemetry]:
        """Aggregate lean-path counters over every successful point."""
        return aggregate_telemetry(self.points)


class Campaign:
    """A batch of declarative cases over one store and one pool.

    ``store=None`` runs without durability (no events, no resume) —
    useful for benchmarks and differential tests that only want the
    execution semantics.  Pass a started :class:`WorkerPool` as
    ``pool`` to share workers across campaigns; otherwise the campaign
    owns a pool configured from ``workers`` / ``timeout`` / ``retries``
    / ``backoff`` whose initializer pre-warms each worker with the
    campaign's distinct mesh shapes.
    """

    def __init__(
        self,
        specs: Sequence[CaseSpec],
        *,
        store: Optional[CampaignStore] = None,
        pool: Optional[WorkerPool] = None,
        workers: int = 1,
        timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.25,
    ) -> None:
        self.specs = list(specs)
        self.keys = [spec_key(spec) for spec in self.specs]
        duplicates = {
            key for key in self.keys if self.keys.count(key) > 1
        }
        if duplicates:
            raise ValueError(
                "duplicate case specs in campaign: "
                + ", ".join(sorted(duplicates))
            )
        self.store = store
        #: Campaign-level aggregate metrics.  As each worker result
        #: lands in ``on_result`` its metric snapshot (the telemetry
        #: riding on the point) is folded in — counters add, peaks
        #: take the max — alongside lifecycle counters, so the
        #: registry is live *during* :meth:`run`, not just after.
        #: The fold is order-independent, so pooled completion order
        #: cannot change the aggregate.  Accumulates across repeated
        #: :meth:`run` calls on the same campaign object.
        self.metrics = MetricRegistry()
        self._owns_pool = pool is None
        if pool is None:
            pool = WorkerPool(
                workers,
                timeout=timeout,
                retries=retries,
                backoff=backoff,
                initializer=initialize_worker,
                initargs=(self.shapes(),),
            )
        self.pool = pool

    @classmethod
    def from_store(
        cls,
        store: Union[CampaignStore, str],
        *,
        pool: Optional[WorkerPool] = None,
        workers: int = 1,
        timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.25,
    ) -> "Campaign":
        """Rebuild a campaign from its event log alone.

        The ``case-queued`` events carry full spec dicts, so the store
        file is self-sufficient: this is what ``repro campaign resume``
        uses after the original process is gone.
        """
        if isinstance(store, str):
            store = CampaignStore(store)
        state = store.replay()
        specs = [state.specs[key] for key in state.order]
        return cls(
            specs,
            store=store,
            pool=pool,
            workers=workers,
            timeout=timeout,
            retries=retries,
            backoff=backoff,
        )

    def shapes(self) -> Tuple[Tuple[str, int, int], ...]:
        """Distinct mesh shapes of the campaign, in first-use order."""
        seen: Dict[Tuple[str, int, int], None] = {}
        for spec in self.specs:
            seen.setdefault(spec.shape, None)
        return tuple(seen)

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Shut down an owned pool (shared pools are left running)."""
        if self._owns_pool:
            self.pool.close()

    def __enter__(self) -> "Campaign":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()

    # -- execution -----------------------------------------------------

    def status(self) -> Dict[str, int]:
        """Lifecycle counts from the store (all-queued without one)."""
        if self.store is None:
            return {
                "queued": len(self.specs),
                "started": 0,
                "finished": 0,
                "failed": 0,
            }
        return self.store.status()

    def metrics_snapshot(self) -> Dict[str, object]:
        """Schema-versioned snapshot of the campaign-level aggregates
        (export with :func:`repro.obs.export.render_prometheus`)."""
        return self.metrics.snapshot()

    def _fold_point(self, point: ExperimentPoint, counter: str) -> None:
        self.metrics.counter(
            f"repro_campaign_cases_{counter}_total",
            f"Campaign cases {counter}",
        ).inc()
        fold_telemetry(self.metrics, point.result.telemetry)

    def _chunk_fn(
        self,
        pending: Sequence[str],
        by_key: Dict[str, CaseSpec],
        checkpoints: Dict[str, Dict[str, Any]],
    ):
        """The chunk function for this batch.

        When no pending spec asks for mid-run durability the bare
        :func:`~repro.campaign.worker.execute_chunk` goes out, exactly
        as before.  Otherwise the stored snapshots for pending keys and
        the store path are bound via :func:`functools.partial` — pure
        data riding next to the spec payload, so the PAR5xx submission
        purity rules hold and the serial path behaves identically.
        """
        durable = self.store is not None and any(
            by_key[key].checkpoint_every is not None for key in pending
        )
        relevant = {
            key: checkpoints[key] for key in pending if key in checkpoints
        }
        if not durable and not relevant:
            return execute_chunk
        assert self.store is not None
        return functools.partial(
            execute_chunk,
            checkpoints=relevant,
            store_path=self.store.path,
        )

    def _enrich_failure(
        self,
        key: str,
        index: int,
        failure: CaseFailure,
        prior_failures: Dict[str, CaseFailure],
    ) -> CaseFailure:
        """Fold retry accounting into a failure before it is recorded.

        ``attempts`` counts every execution try the pool made for this
        item in the current batch, plus whatever earlier campaign runs
        already burned (replayed from the last ``case-failed`` event);
        ``history`` carries one line per earlier terminal failure so a
        permanently broken case shows its whole trajectory.
        """
        attempts = self.pool.attempts.get(index, 1)
        prior = prior_failures.get(key)
        history: Tuple[str, ...] = ()
        if prior is not None:
            attempts += prior.attempts
            history = prior.history + (
                f"{prior.error}: {prior.message}",
            )
        return dataclasses.replace(
            failure, attempts=attempts, history=history
        )

    def run(self) -> CampaignResult:
        """Execute every open case; returns points in spec order.

        Idempotent over the store: cases with an acknowledged
        ``case-finished`` event are restored, not re-run, and
        ``case-queued`` events are appended only for specs the log has
        never seen.  Failed cases are retried (their old ``case-failed``
        events stay in the log; a later success supersedes them).
        """
        by_key = {key: spec for key, spec in zip(self.keys, self.specs)}
        restored: Dict[str, ExperimentPoint] = {}
        known: Dict[str, str] = {}
        checkpoints: Dict[str, Dict[str, Any]] = {}
        prior_failures: Dict[str, CaseFailure] = {}
        if self.store is not None:
            state = self.store.replay()
            known = {key: "seen" for key in state.specs}
            checkpoints = state.checkpoints
            prior_failures = state.failures
            restored = {
                key: point
                for key, point in state.points.items()
                if key in by_key
            }
            fresh = [
                (key, by_key[key])
                for key in self.keys
                if key not in known
            ]
            if fresh:
                self.store.queue(fresh)

        for point in restored.values():
            self._fold_point(point, "restored")

        position = {key: index for index, key in enumerate(self.keys)}
        pending = [key for key in self.keys if key not in restored]
        pending.sort(
            key=lambda key: (-by_key[key].priority, position[key])
        )
        outcome: Dict[str, Union[ExperimentPoint, CaseFailure]] = {}

        if pending:
            if self.store is not None:
                self.store.start(pending)

            def on_result(
                index: int, result: Union[ExperimentPoint, CaseFailure]
            ) -> None:
                key = pending[index]
                if isinstance(result, CaseFailure):
                    result = self._enrich_failure(key, index, result,
                                                  prior_failures)
                outcome[key] = result
                if isinstance(result, CaseFailure):
                    self.metrics.counter(
                        "repro_campaign_cases_failed_total",
                        "Campaign cases failed",
                    ).inc()
                else:
                    self._fold_point(result, "finished")
                if self.store is None:
                    return
                if isinstance(result, CaseFailure):
                    self.store.fail(key, result)
                else:
                    self.store.finish(key, result)

            self.pool.run_batch(
                [by_key[key] for key in pending],
                self._chunk_fn(pending, by_key, checkpoints),
                on_result=on_result,
            )

        points: List[ExperimentPoint] = []
        failures: List[CaseFailure] = []
        for key in self.keys:
            if key in restored:
                points.append(restored[key])
                continue
            result = outcome[key]
            if isinstance(result, CaseFailure):
                failures.append(result)
            else:
                points.append(result)
        return CampaignResult(
            points=points,
            failures=failures,
            degraded=self.pool.degraded if pending else False,
            resumed=len(restored),
            chunked=self.pool.chunked if pending else 0,
        )
