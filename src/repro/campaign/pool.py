"""The persistent worker pool behind every process fan-out.

``ProcessPoolExecutor`` spawn cost dominated the old per-sweep pools:
every ``sweep()`` call started fresh workers, shipped them pickled
meshes per chunk, and tore everything down — which is why BENCH rows
showed ``workers_2`` *slower* than serial.  :class:`WorkerPool`
inverts the lifecycle: the pool outlives individual batches, worker
processes keep their per-process caches warm across batches (see
:mod:`repro.campaign.worker`), and an ``initializer`` can pre-warm
them before the first chunk lands.

The crash-recovery machinery from the legacy ``ParallelExecutor``
(PR 5) lives here now, intact and generic over the payload type:

* a killed/crashed worker loses only the chunk it held; up to
  ``retries`` fresh pool passes re-run the gaps (with exponential
  ``backoff`` between attempts, slept through the sanctioned
  :func:`repro.obs.clock.sleep_for`);
* ``timeout`` bounds the wait for the *next* completion — a wedged
  pool is abandoned (``cancel_futures``) and replaced;
* whatever survives every pool attempt runs serially in the parent,
  so every item is executed and reported exactly once;
* any detour sets :attr:`degraded`.

Exceptions raised *by the chunk function itself* are deterministic
and re-raised immediately (the campaign chunk function converts
per-case failures to data before they get here; the legacy harness
relies on the re-raise).
"""

from __future__ import annotations

import pickle
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from types import TracebackType
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.obs.clock import sleep_for

__all__ = ["BACKOFF_CAP", "WorkerPool"]

ChunkFn = Callable[[Sequence[Any]], List[Any]]

#: Ceiling on the exponential retry backoff, in seconds.  Uncapped
#: doubling reaches minutes within a dozen attempts, which turns a
#: transiently failing case into a silently stalled campaign.
BACKOFF_CAP = 5.0


class WorkerPool:
    """A restartable, batch-agnostic process pool.

    Use as a context manager (or call :meth:`close` explicitly); the
    same pool instance serves any number of :meth:`run_batch` calls,
    and the underlying worker processes persist between them unless a
    crash forces a restart.

    Dispatch is chunked: each submission carries a contiguous slice of
    items (about :attr:`CHUNKS_PER_WORKER` chunks per worker) and the
    worker runs the whole slice in one call.  Results always come back
    in item order, so a pooled batch is element-for-element identical
    to the serial one.

    The pool degrades gracefully to in-process execution when
    ``workers <= 1``, the batch has fewer than two items, an item
    fails to pickle, or the pool cannot be started at all.
    """

    #: Target chunks per worker: mild oversubscription keeps workers
    #: busy when chunks finish unevenly without reverting to
    #: item-at-a-time dispatch (whose per-task IPC dominated short
    #: runs).
    CHUNKS_PER_WORKER = 4

    def __init__(
        self,
        workers: int = 1,
        *,
        timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.25,
        sleep: Optional[Callable[[float], None]] = None,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
    ) -> None:
        self.workers = max(1, int(workers))
        #: Max seconds to wait for the next completion before the pool
        #: is declared wedged; ``None`` waits forever.
        self.timeout = timeout
        #: Extra pool attempts after the first (0 disables retry).
        self.retries = max(0, int(retries))
        #: Base delay before retry ``k`` is ``backoff * 2**(k-1)``,
        #: bounded by :data:`BACKOFF_CAP`.
        self.backoff = backoff
        self._sleep = sleep if sleep is not None else sleep_for
        self._initializer = initializer
        self._initargs = initargs
        self._pool: Optional[ProcessPoolExecutor] = None
        #: True when the most recent batch needed retries or fallbacks.
        self.degraded = False
        #: Chunks dispatched to pools in the most recent batch (0 when
        #: the batch ran serially in-process).
        self.chunked = 0
        #: Pool (re)starts over this instance's lifetime.  A healthy
        #: campaign shows 1; each crash/wedge recovery adds one.
        self.starts = 0
        #: Execution tries per item index in the most recent batch
        #: (first dispatch counts as 1).  Lets callers report a
        #: permanently failing item's retry history instead of just
        #: its final exception.
        self.attempts: Dict[int, int] = {}

    # -- lifecycle -----------------------------------------------------

    def start(self) -> bool:
        """Ensure worker processes exist; False when they can't.

        Idempotent: a live pool is reused.  Call eagerly to move spawn
        cost (and initializer pre-warming) outside a timed region;
        otherwise the first :meth:`run_batch` starts the pool lazily.
        """
        if self._pool is not None:
            return True
        if self.workers == 1:
            return False
        try:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=self._initializer,
                initargs=self._initargs,
            )
        except (OSError, PermissionError):
            return False
        self.starts += 1
        return True

    def close(self) -> None:
        """Shut the worker processes down (the instance stays usable;
        the next batch simply starts a fresh pool)."""
        self._discard(wait_for_workers=True)

    def _discard(self, *, wait_for_workers: bool) -> None:
        if self._pool is None:
            return
        pool, self._pool = self._pool, None
        if wait_for_workers:
            pool.shutdown(wait=True)
        else:
            pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()

    # -- execution -----------------------------------------------------

    def run_batch(
        self,
        items: Sequence[Any],
        fn: ChunkFn,
        *,
        on_result: Optional[Callable[[int, Any], None]] = None,
    ) -> List[Any]:
        """Execute ``fn`` over all items, returning results in order.

        ``fn(chunk)`` receives a contiguous slice of ``items`` and
        must return one result per element, in slice order.  It runs
        inside workers when the pool is live and in this process on
        the serial path — same function, same results, either way.

        ``on_result(index, result)`` fires once per item as its result
        lands (event-log hooks); indices refer to ``items`` order, and
        the callback runs in this process regardless of fan-out.
        """
        self.degraded = False
        self.chunked = 0
        items = list(items)
        self.attempts = {index: 0 for index in range(len(items))}
        results: Dict[int, Any] = {}

        def record(index: int, result: Any) -> None:
            results[index] = result
            if on_result is not None:
                on_result(index, result)

        if (
            self.workers == 1
            or len(items) < 2
            or not self._picklable(items)
        ):
            for index, item in enumerate(items):
                self.attempts[index] = 1
                record(index, fn([item])[0])
            return [results[i] for i in range(len(items))]

        pending = list(range(len(items)))
        for attempt in range(self.retries + 1):
            if not pending:
                break
            if attempt:
                self.degraded = True
                if self.backoff > 0:
                    self._sleep(
                        min(BACKOFF_CAP, self.backoff * (2 ** (attempt - 1)))
                    )
            self._pool_pass(items, pending, fn, record)
            pending = [i for i in pending if i not in results]
        if pending:
            # Last resort: whatever the pools never finished runs
            # serially here, so the batch always comes back whole.
            self.degraded = True
            for index in pending:
                self.attempts[index] += 1
                record(index, fn([items[index]])[0])
        return [results[i] for i in range(len(items))]

    def _chunks(self, pending: Sequence[int]) -> List[List[int]]:
        """Partition ``pending`` into contiguous, near-equal chunks."""
        target = self.workers * self.CHUNKS_PER_WORKER
        size = max(1, -(-len(pending) // target))
        return [
            list(pending[start : start + size])
            for start in range(0, len(pending), size)
        ]

    def _pool_pass(
        self,
        items: List[Any],
        pending: Sequence[int],
        fn: ChunkFn,
        record: Callable[[int, Any], None],
    ) -> None:
        """One pool attempt over ``pending``; records what completes.

        Infrastructure casualties (worker crashes, unstartable or
        wedged pools) are swallowed — a lost chunk's items simply stay
        pending and the caller retries the gaps — but they also cost
        the pool its worker processes: a broken or wedged pool is
        discarded so the next pass (or batch) starts a fresh one.
        Exceptions raised by ``fn`` itself propagate.
        """
        if not self.start():
            self.degraded = True
            return
        pool = self._pool
        assert pool is not None
        healthy = True
        try:
            chunks = self._chunks(pending)
            for chunk in chunks:
                for index in chunk:
                    self.attempts[index] += 1
            futures: Dict[Future[List[Any]], Sequence[int]] = {
                pool.submit(fn, [items[i] for i in chunk]): chunk
                for chunk in chunks
            }
            self.chunked += len(futures)
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(
                    outstanding,
                    timeout=self.timeout,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    # Nothing finished within the timeout: the pool is
                    # wedged (hung worker).  Abandon it and move on.
                    healthy = False
                    break
                for future in done:
                    chunk = futures[future]
                    try:
                        chunk_results = future.result()
                    except (BrokenProcessPool, OSError, PermissionError):
                        # This worker died; its chunk stays pending.
                        healthy = False
                        continue
                    except BaseException:
                        # Deterministic chunk failure: don't let the
                        # rest of the pool grind on before re-raising.
                        healthy = False
                        raise
                    for index, result in zip(chunk, chunk_results):
                        record(index, result)
        finally:
            if not healthy:
                self.degraded = True
                self._discard(wait_for_workers=False)

    @staticmethod
    def _picklable(items: Sequence[Any]) -> bool:
        try:
            pickle.dumps(items)
        except Exception:
            return False
        return True
