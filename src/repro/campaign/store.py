"""The event-sourced campaign ledger.

A campaign's durable state is an append-only JSONL file of immutable
events, one JSON object per line:

* ``case-queued``   — a spec entered the campaign; carries the full
  canonical spec dict, so the file alone suffices to resume;
* ``case-started``  — the case was dispatched to execution;
* ``case-finished`` — the case produced a summary-level point
  (:func:`repro.campaign.results.point_to_dict` payload);
* ``case-failed``   — the case raised; carries the
  :class:`~repro.campaign.results.CaseFailure` payload;
* ``case-checkpointed`` — a mid-run engine snapshot for the case (see
  :mod:`repro.snapshot`); a later checkpoint supersedes an earlier
  one, and the first ``case-finished`` discards them all, so a killed
  case resumes from its last checkpoint instead of step 0.

Every line carries ``schema_version`` and a ``created_at`` timestamp
(via the sanctioned :func:`repro.obs.clock.utc_now_iso`); every event
names its case by the content-derived
:func:`~repro.campaign.spec.spec_key`.  Appends go through
:func:`repro.obs.manifest.append_jsonl` with ``fsync=True`` — the same
durability contract as the legacy sweep checkpoint: once an append
returns, a crash can lose at most a torn trailing line, never an
acknowledged event.  :meth:`CampaignStore.replay` folds the log into
current state with the same torn-line tolerance as
:func:`~repro.obs.manifest.read_manifests`: damaged or foreign lines
are skipped and described in ``errors``, and the case a torn
``case-finished`` acknowledged simply runs again.

Because events are immutable and replay is a pure fold, properties the
old mutable checkpoint could not express come for free: the first
``case-finished`` for a key wins (duplicates from a crash-retry race
are ignored), a ``case-failed`` key is re-runnable on resume, and the
queue order — priority first, then submission order — is recoverable
from the log alone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.campaign.results import (
    CaseFailure,
    ExperimentPoint,
    point_from_dict,
    point_to_dict,
)
from repro.campaign.spec import CaseSpec
from repro.obs.clock import utc_now_iso
from repro.obs.manifest import append_jsonl

__all__ = [
    "EVENT_KINDS",
    "EVENT_SCHEMA_VERSION",
    "CampaignState",
    "CampaignStore",
]

#: Bump when event fields change incompatibly.
EVENT_SCHEMA_VERSION = 1

#: The closed vocabulary of event kinds.
EVENT_KINDS: Tuple[str, ...] = (
    "case-queued",
    "case-started",
    "case-finished",
    "case-failed",
    "case-checkpointed",
)


@dataclass
class CampaignState:
    """The fold of an event log: current status per case key.

    ``specs`` and ``order`` reflect ``case-queued`` events (insertion
    order); ``status`` holds the latest lifecycle state per key except
    that ``finished`` is sticky — replay ignores anything after the
    first ``case-finished`` for a key.  ``errors`` describes skipped
    lines (torn tails, unknown kinds, malformed payloads).
    """

    specs: Dict[str, CaseSpec] = field(default_factory=dict)
    order: List[str] = field(default_factory=list)
    status: Dict[str, str] = field(default_factory=dict)
    points: Dict[str, ExperimentPoint] = field(default_factory=dict)
    failures: Dict[str, CaseFailure] = field(default_factory=dict)
    #: Latest mid-run snapshot per unfinished key (the resume seed for
    #: a killed case); dropped the moment the key finishes.
    checkpoints: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)
    #: Event ``created_at`` stamps per key: when the case was first
    #: queued, last dispatched, and first finished.  Live progress
    #: (:mod:`repro.campaign.progress`) derives throughput and ETA from
    #: these alone, so a watcher needs nothing but the log file.
    queued_at: Dict[str, str] = field(default_factory=dict)
    started_at: Dict[str, str] = field(default_factory=dict)
    finished_at: Dict[str, str] = field(default_factory=dict)

    def pending(self) -> List[str]:
        """Keys still owed a result, in execution order.

        Higher ``priority`` runs first; ties keep queue order.  Failed
        cases count as pending — an immutable log makes re-running
        them safe (a later ``case-finished`` supersedes the failure).
        """
        position = {key: index for index, key in enumerate(self.order)}
        open_keys = [
            key for key in self.order if key not in self.points
        ]
        return sorted(
            open_keys,
            key=lambda key: (-self.specs[key].priority, position[key]),
        )

    def counts(self) -> Dict[str, int]:
        """Cases per lifecycle state (``finished`` includes restored)."""
        out = {"queued": 0, "started": 0, "finished": 0, "failed": 0}
        for key in self.order:
            if key in self.points:
                out["finished"] += 1
            elif key in self.failures and self.status.get(key) == "failed":
                out["failed"] += 1
            elif self.status.get(key) == "started":
                out["started"] += 1
            else:
                out["queued"] += 1
        return out


class CampaignStore:
    """Append-only event log for one campaign (one JSONL file)."""

    def __init__(self, path: str) -> None:
        self.path = path

    # -- writing -------------------------------------------------------

    def _event(self, kind: str, key: str, **payload: Any) -> Dict[str, Any]:
        event: Dict[str, Any] = {
            "schema_version": EVENT_SCHEMA_VERSION,
            "event": kind,
            "key": key,
            "created_at": utc_now_iso(timespec="milliseconds"),
        }
        event.update(payload)
        return event

    def queue(self, entries: Sequence[Tuple[str, CaseSpec]]) -> None:
        """Durably append ``case-queued`` for each (key, spec) — one
        fsync for the whole batch."""
        append_jsonl(
            [
                self._event("case-queued", key, spec=spec.to_dict())
                for key, spec in entries
            ],
            self.path,
            fsync=True,
        )

    def start(self, keys: Sequence[str]) -> None:
        """Durably append ``case-started`` for each key (one fsync)."""
        append_jsonl(
            [self._event("case-started", key) for key in keys],
            self.path,
            fsync=True,
        )

    def finish(self, key: str, point: ExperimentPoint) -> None:
        """Durably append one ``case-finished`` (fsynced on return)."""
        append_jsonl(
            [self._event("case-finished", key, point=point_to_dict(point))],
            self.path,
            fsync=True,
        )

    def fail(self, key: str, failure: CaseFailure) -> None:
        """Durably append one ``case-failed`` (fsynced on return)."""
        append_jsonl(
            [self._event("case-failed", key, failure=failure.to_dict())],
            self.path,
            fsync=True,
        )

    def checkpoint(self, key: str, snapshot: Mapping[str, Any]) -> None:
        """Durably append one ``case-checkpointed`` (fsynced on
        return); ``snapshot`` is an engine snapshot payload from
        :mod:`repro.snapshot`."""
        append_jsonl(
            [
                self._event(
                    "case-checkpointed",
                    key,
                    step=int(snapshot.get("step", 0)),
                    snapshot=dict(snapshot),
                )
            ],
            self.path,
            fsync=True,
        )

    # -- reading -------------------------------------------------------

    def replay(self) -> CampaignState:
        """Fold the log into current state (missing file = fresh).

        The file is read as *bytes* and decoded per line: a crash can
        tear the trailing line anywhere, including mid-way through a
        multi-byte UTF-8 sequence, and a text-mode iterator would
        raise ``UnicodeDecodeError`` from the read itself — outside
        any per-line tolerance.  Decoding inside the per-line ``try``
        turns every form of torn tail (truncated JSON, split UTF-8,
        several unterminated lines from torn multi-event appends) into
        a recorded error instead of an unreadable store.
        """
        state = CampaignState()
        try:
            handle = open(self.path, "rb")
        except FileNotFoundError:
            return state
        with handle:
            for number, raw in enumerate(handle, start=1):
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    # UnicodeDecodeError is a ValueError subclass, so
                    # a torn multi-byte character lands in the same
                    # tolerance as torn JSON.
                    self._apply(state, json.loads(raw.decode("utf-8")))
                except (ValueError, TypeError, KeyError) as problem:
                    state.errors.append(
                        f"{self.path}:{number}: {problem}"
                    )
        return state

    def _apply(self, state: CampaignState, data: Mapping[str, Any]) -> None:
        version = data.get("schema_version")
        if version != EVENT_SCHEMA_VERSION:
            raise ValueError(
                f"event schema_version {version!r} != {EVENT_SCHEMA_VERSION}"
            )
        kind = data.get("event")
        key = data.get("key")
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        if not isinstance(key, str) or not key:
            raise ValueError(f"event {kind!r} without a case key")
        created_at = data.get("created_at")
        stamp = created_at if isinstance(created_at, str) else ""
        if kind == "case-queued":
            if key not in state.specs:
                state.specs[key] = CaseSpec.from_dict(data["spec"])
                state.order.append(key)
                state.status[key] = "queued"
                if stamp:
                    state.queued_at[key] = stamp
            return
        if key not in state.specs:
            raise ValueError(f"event {kind!r} for unqueued key {key!r}")
        if key in state.points:
            # Finished is sticky: immutable history means the first
            # acknowledged result wins, whatever a crashed retry
            # appended afterwards.
            return
        if kind == "case-started":
            state.status[key] = "started"
            if stamp:
                state.started_at[key] = stamp
        elif kind == "case-finished":
            state.points[key] = point_from_dict(data["point"])
            state.status[key] = "finished"
            # A finished case needs no resume seed.
            state.checkpoints.pop(key, None)
            if stamp:
                state.finished_at[key] = stamp
        elif kind == "case-failed":
            state.failures[key] = CaseFailure.from_dict(data["failure"])
            state.status[key] = "failed"
        elif kind == "case-checkpointed":
            snapshot = data["snapshot"]
            if not isinstance(snapshot, Mapping):
                raise ValueError("case-checkpointed without a snapshot")
            # Later checkpoints supersede earlier ones; the sticky
            # finished check above already discards stragglers from a
            # crashed retry.
            state.checkpoints[key] = dict(snapshot)

    def status(self) -> Dict[str, int]:
        """Counts per lifecycle state (replays the log)."""
        return self.replay().counts()

    def restored_points(self) -> Dict[str, ExperimentPoint]:
        """Finished points keyed by spec key (replays the log)."""
        return self.replay().points
