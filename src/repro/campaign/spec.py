"""Declarative case specifications.

A campaign case is described entirely by *names and numbers* — the
topology family and shape, the workload generator and its parameters,
the policy registry name, the seed — never by live objects.  The spec
therefore serializes to a ~100-byte JSON object, crosses the worker
process boundary as data, and is resolved to a mesh / problem / policy
*inside* the worker (:mod:`repro.campaign.worker`), where resolved
meshes are cached across cases.  This is the closing move of the
PAR5xx purity rules: nothing submitted to a pool can accidentally drag
a closure or a pickled mesh along, because the submission type cannot
hold one.

:func:`spec_key` derives a stable content identity from the canonical
JSON form; the campaign event log keys every event on it, which is
what makes a resumed campaign match its own history across process
restarts (same role as the legacy
:func:`repro.analysis.checkpoint.spec_key`, without the
factory-qualname fragility).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = [
    "CaseSpec",
    "TOPOLOGIES",
    "WORKLOADS",
    "spec_key",
]

#: Topology families a spec may name (mirrors the CLI vocabulary).
TOPOLOGIES: Tuple[str, ...] = ("mesh", "torus", "hypercube")

#: Workload generators a spec may name (mirrors the CLI vocabulary).
WORKLOADS: Tuple[str, ...] = (
    "random",
    "permutation",
    "transpose",
    "reversal",
    "hotspot",
    "flood",
    "corners",
)

_Items = Tuple[Tuple[str, Any], ...]


def _freeze(params: Optional[Mapping[str, Any]]) -> _Items:
    return tuple((params or {}).items())


@dataclass(frozen=True)
class CaseSpec:
    """One declarative unit of campaign work: a single seeded run.

    Attributes:
        topology: family name — one of :data:`TOPOLOGIES`.
        side: side length ``n`` (ignored by ``hypercube``, which is
            always side 2).
        dimension: mesh dimension ``d``.
        workload: generator name — one of :data:`WORKLOADS`.
        workload_params: generator keywords (e.g. ``k`` for the
            ``random`` and ``hotspot`` workloads), as sorted-stable
            key/value pairs.
        policy: registry name (:func:`repro.algorithms.make_policy`),
            or ``"dimension-order"`` with ``engine="buffered"``.
        seed: feeds both the workload generator and the engine.
        params: extra sweep labels attached to the resulting
            :class:`~repro.campaign.results.ExperimentPoint` (``seed``,
            ``policy``, ``k``, ``n`` are filled in automatically).
        strict_validation: full validator stack vs. capacity-only
            (must be False with ``backend="soa"``).
        max_steps: step budget (None = engine default).
        engine: ``"hot-potato"`` (deflection) or ``"buffered"``.
        backend: ``"object"`` or ``"soa"`` step kernel.
        faults: path to a JSON fault schedule, resolved worker-side
            (None = fault-free run).
        priority: campaign queue priority — higher runs earlier;
            ties keep submission order.
        checkpoint_every: mid-run checkpoint interval in steps; the
            worker appends a ``case-checkpointed`` event (an engine
            snapshot, :mod:`repro.snapshot`) at every interval so a
            killed case resumes from its last checkpoint instead of
            step 0.  ``None`` (default) disables mid-run durability
            for the case.
    """

    topology: str
    workload: str
    policy: str
    seed: int
    side: int = 16
    dimension: int = 2
    workload_params: _Items = ()
    params: _Items = ()
    strict_validation: bool = True
    max_steps: Optional[int] = None
    engine: str = "hot-potato"
    backend: str = "object"
    faults: Optional[str] = None
    priority: int = 0
    checkpoint_every: Optional[int] = None

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; "
                f"expected one of {', '.join(TOPOLOGIES)}"
            )
        if self.workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; "
                f"expected one of {', '.join(WORKLOADS)}"
            )
        if self.engine not in ("hot-potato", "buffered"):
            raise ValueError(
                f"unknown engine {self.engine!r}; "
                "expected 'hot-potato' or 'buffered'"
            )
        if self.backend not in ("object", "soa"):
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                "expected 'object' or 'soa'"
            )
        if (
            self.backend == "soa"
            and self.engine == "hot-potato"
            and self.strict_validation
        ):
            raise ValueError(
                "backend='soa' runs the lean hot-potato loop; "
                "strict_validation must be False"
            )
        if self.backend == "soa" and self.faults is not None:
            raise ValueError("backend='soa' does not support fault schedules")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, "
                f"got {self.checkpoint_every}"
            )

    @property
    def shape(self) -> Tuple[str, int, int]:
        """The mesh-cache key: ``(topology, dimension, side)``."""
        # Hypercubes are fixed at side 2 regardless of the spec field,
        # so their cache key must not depend on it.
        side = 2 if self.topology == "hypercube" else self.side
        return (self.topology, self.dimension, side)

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON form (stable field order, params as dicts)."""
        return {
            "topology": self.topology,
            "side": self.side,
            "dimension": self.dimension,
            "workload": self.workload,
            "workload_params": dict(self.workload_params),
            "policy": self.policy,
            "seed": self.seed,
            "params": dict(self.params),
            "strict_validation": self.strict_validation,
            "max_steps": self.max_steps,
            "engine": self.engine,
            "backend": self.backend,
            "faults": self.faults,
            "priority": self.priority,
            "checkpoint_every": self.checkpoint_every,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CaseSpec":
        """Rebuild a spec from its canonical JSON form (validated)."""
        known = {
            "topology",
            "side",
            "dimension",
            "workload",
            "workload_params",
            "policy",
            "seed",
            "params",
            "strict_validation",
            "max_steps",
            "engine",
            "backend",
            "faults",
            "priority",
            "checkpoint_every",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown CaseSpec fields {sorted(unknown)}")
        for name in ("topology", "workload", "policy", "seed"):
            if name not in data:
                raise ValueError(f"CaseSpec missing field {name!r}")
        return cls(
            topology=str(data["topology"]),
            side=int(data.get("side", 16)),
            dimension=int(data.get("dimension", 2)),
            workload=str(data["workload"]),
            workload_params=_freeze(data.get("workload_params")),
            policy=str(data["policy"]),
            seed=int(data["seed"]),
            params=_freeze(data.get("params")),
            strict_validation=bool(data.get("strict_validation", True)),
            max_steps=(
                None
                if data.get("max_steps") is None
                else int(data["max_steps"])
            ),
            engine=str(data.get("engine", "hot-potato")),
            backend=str(data.get("backend", "object")),
            faults=(
                None if data.get("faults") is None else str(data["faults"])
            ),
            priority=int(data.get("priority", 0)),
            checkpoint_every=(
                None
                if data.get("checkpoint_every") is None
                else int(data["checkpoint_every"])
            ),
        )


def spec_key(spec: CaseSpec) -> str:
    """Stable 16-hex-digit content identity of one campaign case.

    Two specs collide exactly when they describe the same run.  The
    key is derived from the canonical sorted-key JSON form, so it
    survives process restarts and never depends on import paths or
    object identities — the property the campaign event log relies on
    to match ``case-finished`` events back to a resumed spec list.

    ``priority`` is deliberately excluded: re-prioritizing a queue
    must not orphan the work already finished under the old priority.
    ``checkpoint_every`` likewise — it changes *how durably* a case
    runs, never its result, so retuning the interval on resume must
    keep matching the history.
    """
    payload = spec.to_dict()
    del payload["priority"]
    del payload["checkpoint_every"]
    material = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]
