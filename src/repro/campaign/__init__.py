"""Campaign orchestration: persistent pools over declarative specs.

``repro.campaign`` is the execution layer of the experiment stack,
extracted from ``repro.analysis.runner`` so that large sweeps — the
Theorem 20 validation grid and the adversary zoo behind it — can run
through one long-lived worker pool instead of paying pool spawn and
mesh pickling per sweep.  The package splits into four layers:

* :mod:`repro.campaign.spec` — the declarative
  :class:`~repro.campaign.spec.CaseSpec`: a compact JSON-serializable
  description (topology, workload, policy, seed, backend) resolved to
  live objects *inside* the worker, so a submission ships ~100 bytes
  instead of a pickled mesh;
* :mod:`repro.campaign.worker` — worker-side resolution with a
  per-process mesh/arc-table cache keyed by spec fields;
* :mod:`repro.campaign.pool` — the persistent
  :class:`~repro.campaign.pool.WorkerPool` carrying the
  retry-through-killed-workers / wedged-pool-timeout machinery;
* :mod:`repro.campaign.store` / :mod:`repro.campaign.orchestrator` —
  the event-sourced :class:`~repro.campaign.store.CampaignStore`
  (append-only JSONL: ``case-queued`` / ``case-started`` /
  ``case-finished`` / ``case-failed``) and the
  :class:`~repro.campaign.orchestrator.Campaign` front door with
  crash-safe resume;
* :mod:`repro.campaign.progress` — live progress
  (:class:`~repro.campaign.progress.CampaignProgress`, counts /
  throughput / ETA) reconstructed purely from the event log, behind
  ``repro campaign status --watch``.

The legacy factory-based harness (``repro.analysis.runner``) routes
its process fan-out through :class:`WorkerPool` too, so chaos-recovery
behavior is shared rather than duplicated.
"""

from repro.campaign.orchestrator import Campaign, CampaignResult
from repro.campaign.pool import WorkerPool
from repro.campaign.progress import (
    CampaignProgress,
    registry_from_state,
    watch,
)
from repro.campaign.results import CaseFailure, ExperimentPoint
from repro.campaign.spec import CaseSpec, spec_key
from repro.campaign.store import CampaignStore

__all__ = [
    "Campaign",
    "CampaignProgress",
    "CampaignResult",
    "CampaignStore",
    "CaseFailure",
    "CaseSpec",
    "ExperimentPoint",
    "WorkerPool",
    "registry_from_state",
    "spec_key",
    "watch",
]
