"""Live campaign progress, reconstructed from the event log alone.

``repro campaign status --watch`` must never touch the running pool —
a watcher is a second process with no channel to the orchestrator.  It
does not need one: every lifecycle transition is already an fsynced
event in the :class:`~repro.campaign.store.CampaignStore` log, each
stamped with ``created_at``.  :class:`CampaignProgress` is the pure
fold of one :class:`~repro.campaign.store.CampaignState` into the
numbers a progress display wants — state counts, completion fraction,
throughput, ETA — and :func:`watch` is the polling loop around it.

Everything here derives from event timestamps; the only wall-clock
touches are the inter-poll sleeps, which go through the sanctioned
:func:`repro.obs.clock.sleep_for` (lint rules DET106/OBS602).
Throughput is finished-cases per second over the window from the first
dispatch (or first queue, for restored logs) to the latest finish; the
ETA extrapolates that rate over the still-pending cases, failed cases
included — an immutable log makes them re-runnable, so they are still
owed work.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import IO, Optional

from repro.campaign.store import CampaignState, CampaignStore
from repro.obs.clock import sleep_for
from repro.obs.metrics import MetricRegistry, fold_telemetry

__all__ = ["CampaignProgress", "registry_from_state", "watch"]


def _parse_iso(stamp: str) -> Optional[datetime.datetime]:
    try:
        return datetime.datetime.fromisoformat(stamp)
    except ValueError:
        return None


@dataclass(frozen=True)
class CampaignProgress:
    """One snapshot of campaign progress (a pure fold of the log)."""

    total: int
    queued: int
    started: int
    finished: int
    failed: int
    pending: int
    #: Finished cases per second over the observed window; ``None``
    #: until at least one case finished over a measurable window.
    throughput: Optional[float]
    #: Seconds of work remaining at the observed throughput; ``None``
    #: whenever ``throughput`` is.
    eta_seconds: Optional[float]
    #: Log lines replay could not apply (torn tails, foreign lines).
    errors: int

    @property
    def done(self) -> bool:
        """True when no case is owed a result."""
        return self.pending == 0

    @property
    def fraction(self) -> float:
        """Finished fraction in [0, 1] (1.0 for an empty campaign)."""
        return self.finished / self.total if self.total else 1.0

    @classmethod
    def from_state(cls, state: CampaignState) -> "CampaignProgress":
        counts = state.counts()
        pending = len(state.pending())
        throughput: Optional[float] = None
        eta: Optional[float] = None
        finish_times = [
            parsed
            for parsed in (
                _parse_iso(stamp) for stamp in state.finished_at.values()
            )
            if parsed is not None
        ]
        anchor_stamps = state.started_at or state.queued_at
        anchor_times = [
            parsed
            for parsed in (
                _parse_iso(stamp) for stamp in anchor_stamps.values()
            )
            if parsed is not None
        ]
        if finish_times and anchor_times:
            window = (max(finish_times) - min(anchor_times)).total_seconds()
            if window > 0:
                throughput = counts["finished"] / window
                if throughput > 0:
                    eta = pending / throughput
        return cls(
            total=len(state.order),
            queued=counts["queued"],
            started=counts["started"],
            finished=counts["finished"],
            failed=counts["failed"],
            pending=pending,
            throughput=throughput,
            eta_seconds=eta,
            errors=len(state.errors),
        )

    def render(self) -> str:
        """One status line, stable enough to grep in CI."""
        parts = [
            f"campaign: {self.total} cases",
            (
                f"queued {self.queued} started {self.started} "
                f"finished {self.finished} failed {self.failed}"
            ),
            f"{self.fraction * 100.0:.1f}% done",
        ]
        if self.throughput is not None:
            parts.append(f"{self.throughput:.2f} case/s")
        if self.eta_seconds is not None and not self.done:
            parts.append(f"eta ~{self.eta_seconds:.0f}s")
        if self.errors:
            parts.append(f"{self.errors} log errors")
        return " | ".join(parts)


def registry_from_state(state: CampaignState) -> MetricRegistry:
    """Campaign-level aggregate metrics from a replayed event log.

    The same fold :class:`~repro.campaign.orchestrator.Campaign`
    maintains live during a run, recomputed offline for a watcher
    process: lifecycle counts land in
    ``repro_campaign_cases_<state>_total`` counters and every finished
    point's telemetry folds in through
    :func:`repro.obs.metrics.fold_telemetry` (counters add, peaks take
    the max), so ``repro campaign status --prometheus`` renders the
    identical aggregates from the log file alone.
    """
    registry = MetricRegistry()
    counts = state.counts()
    for name in ("queued", "started", "finished", "failed"):
        registry.counter(
            f"repro_campaign_cases_{name}_total",
            f"Campaign cases currently {name}",
        ).inc(counts[name])
    for point in state.points.values():
        fold_telemetry(registry, point.result.telemetry)
    return registry


def watch(
    store: CampaignStore,
    *,
    interval: float = 1.0,
    stream: Optional[IO[str]] = None,
    max_polls: Optional[int] = None,
) -> CampaignProgress:
    """Tail a campaign's event log until it has no pending work.

    Replays the log every ``interval`` seconds, writing one rendered
    progress line per poll to ``stream`` (default: stdout).  Returns
    the final snapshot.  A finished (or empty) store returns after a
    single poll, so pointing ``--watch`` at a completed campaign is a
    cheap one-shot.  ``max_polls`` bounds the loop for tests and for
    watching a campaign whose driver may have died.
    """
    import sys

    out = stream if stream is not None else sys.stdout
    polls = 0
    while True:
        progress = CampaignProgress.from_state(store.replay())
        out.write(progress.render() + "\n")
        out.flush()
        polls += 1
        if progress.done:
            return progress
        if max_polls is not None and polls >= max_polls:
            return progress
        sleep_for(interval)
