"""Worker-side spec resolution with per-process caching.

This module is the *receiving* end of the declarative dispatch
contract: the parent ships ~100-byte :class:`~repro.campaign.spec.CaseSpec`
values, and every live object — mesh, workload, policy, engine — is
built here, inside the worker process.  Meshes (and, through
:func:`~repro.mesh.tables.arc_tables_for`, their arc tables) are
cached per process keyed by the spec's ``shape``, so a worker that
runs fifty cases on the same 16×16 mesh builds it once.  That cache is
what a persistent pool buys over the per-sweep pools it replaced:
measured on the 8-seed reference sweep, per-chunk mesh unpickling and
memo-cache rebuilds were the entire parallel overhead.

Everything here also runs unchanged in the parent process — the
serial execution path of :class:`~repro.campaign.pool.WorkerPool`
calls the same :func:`execute_chunk`, which is how serial and pooled
campaign runs stay bit-identical.

Determinism: this module never touches RNG or the wall clock.  Seeds
flow as integers from the spec into the workload generators and
engines, which construct their streams through ``repro.core.rng``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.campaign.results import (
    CaseFailure,
    ExperimentPoint,
    summary_result,
)
from repro.campaign.spec import CaseSpec, spec_key
from repro.core.buffered_engine import BufferedEngine
from repro.core.engine import HotPotatoEngine
from repro.core.metrics import RunResult
from repro.core.policy import RoutingPolicy
from repro.core.problem import RoutingProblem
from repro.mesh.hypercube import Hypercube
from repro.mesh.tables import arc_tables_for
from repro.mesh.topology import Mesh
from repro.mesh.torus import Torus
from repro.workloads import (
    corner_storm,
    quadrant_flood,
    random_many_to_many,
    random_permutation,
    reversal,
    single_target,
    transpose,
)

__all__ = [
    "MESH_CACHE_LIMIT",
    "execute_case",
    "execute_chunk",
    "initialize_worker",
    "mesh_for",
    "resolve_policy",
    "resolve_workload",
]

#: Shapes a single worker keeps alive.  Campaign queues sort same-shape
#: cases together, so in practice a worker cycles through a handful of
#: shapes; 8 bounds the worst case without evicting mid-campaign.
MESH_CACHE_LIMIT = 8

_MESH_CACHE: "OrderedDict[Tuple[str, int, int], Mesh]" = OrderedDict()


def _build_mesh(shape: Tuple[str, int, int]) -> Mesh:
    topology, dimension, side = shape
    if topology == "mesh":
        return Mesh(dimension, side)
    if topology == "torus":
        return Torus(dimension, side)
    if topology == "hypercube":
        return Hypercube(dimension)
    raise ValueError(f"unknown topology {topology!r}")


def mesh_for(spec: CaseSpec) -> Mesh:
    """The worker's cached mesh for a spec's shape (LRU-bounded)."""
    shape = spec.shape
    mesh = _MESH_CACHE.get(shape)
    if mesh is None:
        mesh = _build_mesh(shape)
        _MESH_CACHE[shape] = mesh
    else:
        _MESH_CACHE.move_to_end(shape)
    while len(_MESH_CACHE) > MESH_CACHE_LIMIT:
        _MESH_CACHE.popitem(last=False)
    return mesh


def initialize_worker(
    shapes: Sequence[Tuple[str, int, int]] = (),
) -> None:
    """Pool initializer: pre-warm meshes and arc tables per worker.

    Runs once when a pool process starts, before any chunk arrives, so
    the first case of a campaign pays no cold-build cost inside its
    timed region.  ``shapes`` is the distinct ``CaseSpec.shape`` set of
    the campaign (the parent computes it when starting the pool).
    """
    for shape in shapes:
        mesh = _MESH_CACHE.get(shape)
        if mesh is None:
            mesh = _build_mesh(shape)
            _MESH_CACHE[shape] = mesh
        arc_tables_for(mesh)
    while len(_MESH_CACHE) > MESH_CACHE_LIMIT:
        _MESH_CACHE.popitem(last=False)


def resolve_workload(mesh: Mesh, spec: CaseSpec) -> RoutingProblem:
    """Build the spec's routing problem on a resolved mesh.

    Mirrors the CLI workload vocabulary; ``k`` defaults to half the
    node count for the batch-size-taking generators, and the spec seed
    feeds problem generation exactly as ``repro route --seed`` does.
    """
    params = dict(spec.workload_params)
    name = spec.workload
    if name == "random":
        k = int(params.get("k", mesh.num_nodes // 2))
        return random_many_to_many(mesh, k=k, seed=spec.seed)
    if name == "permutation":
        return random_permutation(mesh, seed=spec.seed)
    if name == "transpose":
        return transpose(mesh)
    if name == "reversal":
        return reversal(mesh)
    if name == "hotspot":
        k = int(params.get("k", mesh.num_nodes // 2))
        return single_target(mesh, k=k, seed=spec.seed)
    if name == "flood":
        return quadrant_flood(mesh, seed=spec.seed)
    if name == "corners":
        return corner_storm(mesh)
    raise ValueError(f"unknown workload {name!r}")


def resolve_policy(spec: CaseSpec) -> RoutingPolicy:
    """Instantiate the spec's policy (fresh instance per case).

    The hot-potato registry and the buffered policies are disjoint
    interfaces, so resolution branches on the spec's engine exactly
    like the CLI does.
    """
    if spec.engine == "buffered":
        from repro.algorithms.dimension_order import DimensionOrderPolicy

        if spec.policy != "dimension-order":
            raise ValueError(
                f"policy {spec.policy!r} is not a buffered policy; "
                "engine='buffered' supports: dimension-order"
            )
        return DimensionOrderPolicy()
    from repro.algorithms import make_policy

    return make_policy(spec.policy)


def _run_engine(
    spec: CaseSpec,
    checkpoint: Optional[Mapping[str, Any]] = None,
    on_checkpoint: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> Tuple[RunResult, RoutingPolicy, int]:
    from repro.core.validation import validators_for

    mesh = mesh_for(spec)
    problem = resolve_workload(mesh, spec)
    policy = resolve_policy(spec)
    faults = None
    if spec.faults is not None:
        from repro.faults import FaultSchedule

        faults = FaultSchedule.load(spec.faults)
        faults.check(mesh)
    checkpoint_every = spec.checkpoint_every if on_checkpoint else None
    if spec.engine == "buffered":
        engine: Union[BufferedEngine, HotPotatoEngine] = BufferedEngine(
            problem,
            policy,
            seed=spec.seed,
            max_steps=spec.max_steps,
            backend=spec.backend,
            faults=faults,
            checkpoint_every=checkpoint_every,
            on_checkpoint=on_checkpoint,
        )
    else:
        engine = HotPotatoEngine(
            problem,
            policy,
            seed=spec.seed,
            validators=validators_for(policy, strict=spec.strict_validation),
            max_steps=spec.max_steps,
            backend=spec.backend,
            faults=faults,
            checkpoint_every=checkpoint_every,
            on_checkpoint=on_checkpoint,
        )
    if checkpoint is not None:
        # The spec rebuilds the identical problem/policy/seed, so the
        # snapshot restores cleanly and the remaining steps reproduce
        # the uninterrupted run bit-identically.
        engine.resume_from(dict(checkpoint))
    result = engine.run()
    return result, policy, problem.k


def execute_case(
    spec: CaseSpec,
    *,
    checkpoint: Optional[Mapping[str, Any]] = None,
    store_path: Optional[str] = None,
) -> ExperimentPoint:
    """Resolve and run one spec; returns a summary-level point.

    The point's params are the spec's sweep labels with ``seed`` /
    ``policy`` / ``k`` / ``n`` filled in (same convention as the
    legacy harness), and the result is stripped to summary level —
    the representation that crosses process boundaries and lands in
    the event log.

    With ``store_path`` set and a spec that carries
    ``checkpoint_every``, the run appends a ``case-checkpointed``
    event to the campaign store at every interval (each append is one
    fsynced ``O_APPEND`` write, so concurrent workers interleave whole
    events, never bytes).  ``checkpoint`` is a previously stored
    snapshot to resume from instead of step 0.
    """
    on_checkpoint: Optional[Callable[[Dict[str, Any]], None]] = None
    if store_path is not None and spec.checkpoint_every is not None:
        from repro.campaign.store import CampaignStore

        store = CampaignStore(store_path)
        key = spec_key(spec)

        def _append_checkpoint(snapshot: Dict[str, Any]) -> None:
            store.checkpoint(key, snapshot)

        on_checkpoint = _append_checkpoint
    result, policy, k = _run_engine(
        spec, checkpoint=checkpoint, on_checkpoint=on_checkpoint
    )
    params: Dict[str, object] = dict(spec.params)
    params.setdefault("seed", spec.seed)
    params.setdefault("policy", policy.name)
    params.setdefault("k", k)
    params.setdefault("n", result.side)
    return ExperimentPoint(params=params, result=summary_result(result))


def execute_chunk(
    specs: Sequence[CaseSpec],
    *,
    checkpoints: Optional[Mapping[str, Mapping[str, Any]]] = None,
    store_path: Optional[str] = None,
) -> List[Union[ExperimentPoint, CaseFailure]]:
    """Run a contiguous slice of specs inside one worker process.

    One submission per chunk amortizes pickling and IPC over the whole
    slice.  A case that raises becomes a :class:`CaseFailure` record
    instead of poisoning its siblings: deterministic failures repeat
    on retry, so surfacing them as data (keyed for the event log) is
    the only outcome that lets a large campaign finish.

    ``checkpoints`` maps spec keys to stored snapshots (cases present
    resume mid-run); ``store_path`` enables ``case-checkpointed``
    appends for specs that carry ``checkpoint_every``.  The orchestrator
    binds both via ``functools.partial``, which keeps the chunk
    payload itself pure data (PAR5xx).
    """
    out: List[Union[ExperimentPoint, CaseFailure]] = []
    for spec in specs:
        key = spec_key(spec)
        try:
            out.append(
                execute_case(
                    spec,
                    checkpoint=(
                        checkpoints.get(key)
                        if checkpoints is not None
                        else None
                    ),
                    store_path=store_path,
                )
            )
        except Exception as problem:
            out.append(
                CaseFailure(
                    key=key,
                    error=type(problem).__name__,
                    message=str(problem),
                )
            )
    return out
