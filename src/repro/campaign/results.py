"""Result carriers shared by the campaign and legacy harnesses.

:class:`ExperimentPoint` lived in ``repro.analysis.runner`` through
PR 5; it moved here so the campaign layers can use it without
importing the factory-based harness (which now re-exports it for
compatibility).  :class:`CaseFailure` is campaign-only: the
orchestrator records a failed case as data instead of letting one bad
spec abort a thousand-case campaign.

:func:`summary_result` is the wire diet both execution paths share:
per-step metrics and per-packet outcomes stay in the worker, only the
run totals, telemetry, and abort record travel.  Applying the same
diet to in-process execution is what makes serial and pooled campaign
runs bit-identical.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from repro.core.metrics import RunResult
from repro.faults.report import RunAborted
from repro.obs.telemetry import RunTelemetry, aggregate

__all__ = [
    "CaseFailure",
    "ExperimentPoint",
    "aggregate_telemetry",
    "point_from_dict",
    "point_to_dict",
    "summary_result",
]


@dataclass
class ExperimentPoint:
    """One run plus the sweep parameters that produced it."""

    params: Dict[str, object]
    result: RunResult

    @property
    def steps(self) -> int:
        return self.result.total_steps


@dataclass(frozen=True)
class CaseFailure:
    """A case that raised instead of producing a run.

    Deterministic failures (policy bugs, validation errors) repeat on
    retry, so the campaign records them as data — keyed like any other
    event — rather than crashing the whole run.  ``error`` is the
    exception class name, ``message`` its text; ``attempts`` counts
    every execution try (first run + retries), and ``history`` keeps
    one line per earlier attempt so a permanently failing case reports
    its whole retry trajectory, not just the last exception.
    """

    key: str
    error: str
    message: str
    attempts: int = 1
    history: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "error": self.error,
            "message": self.message,
            "attempts": self.attempts,
            "history": list(self.history),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CaseFailure":
        # attempts/history are absent from pre-checkpointing event
        # logs; default them so old stores keep replaying.
        return cls(
            key=str(data["key"]),
            error=str(data["error"]),
            message=str(data["message"]),
            attempts=int(data.get("attempts", 1)),
            history=tuple(str(line) for line in data.get("history", ())),
        )


def aggregate_telemetry(
    points: Iterable[ExperimentPoint],
) -> Optional[RunTelemetry]:
    """Merge the lean-path counters of many runs (totals add, peaks
    take the max).  Returns ``None`` when no point carries telemetry
    (e.g. results deserialized from pre-telemetry payloads)."""
    return aggregate(point.result.telemetry for point in points)


def summary_result(result: RunResult) -> RunResult:
    """The summary-level view of a run: totals, telemetry, abort.

    Campaign aggregation consumes exactly this; per-step metrics and
    per-packet outcomes (tens of kilobytes per pickled run) never
    cross the process boundary.  Already-lean results pass through
    unchanged so double application is idempotent.
    """
    if not result.step_metrics and not result.outcomes and (
        result.records is None
    ):
        return result
    return dataclasses.replace(
        result, step_metrics=[], outcomes=[], records=None
    )


def point_to_dict(point: ExperimentPoint) -> Dict[str, Any]:
    """Serialize a summary-level point for the campaign event log."""
    result = point.result
    return {
        "params": dict(point.params),
        "result": {
            "problem_name": result.problem_name,
            "policy_name": result.policy_name,
            "mesh_kind": result.mesh_kind,
            "dimension": result.dimension,
            "side": result.side,
            "k": result.k,
            "completed": result.completed,
            "total_steps": result.total_steps,
            "delivered": result.delivered,
            "seed": result.seed,
            "telemetry": (
                result.telemetry.to_dict()
                if result.telemetry is not None
                else None
            ),
            "abort": (
                result.abort.to_dict() if result.abort is not None else None
            ),
        },
    }


def point_from_dict(data: Mapping[str, Any]) -> ExperimentPoint:
    """Rebuild a summary-level point from a ``case-finished`` event.

    Inverse of :func:`point_to_dict`: the reconstructed point compares
    equal to the in-memory original, which is what lets a resumed
    campaign splice restored points into fresh ones without the caller
    seeing a seam.
    """
    payload = data["result"]
    result = RunResult(
        problem_name=str(payload["problem_name"]),
        policy_name=str(payload["policy_name"]),
        mesh_kind=str(payload["mesh_kind"]),
        dimension=int(payload["dimension"]),
        side=int(payload["side"]),
        k=int(payload["k"]),
        completed=bool(payload["completed"]),
        total_steps=int(payload["total_steps"]),
        delivered=int(payload["delivered"]),
        seed=payload["seed"],
        telemetry=(
            RunTelemetry.from_dict(payload["telemetry"])
            if payload["telemetry"] is not None
            else None
        ),
        abort=(
            RunAborted.from_dict(payload["abort"])
            if payload["abort"] is not None
            else None
        ),
    )
    return ExperimentPoint(params=dict(data["params"]), result=result)
