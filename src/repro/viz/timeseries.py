"""Text sparklines and step charts for run time series.

Terminal-friendly plots of ``Phi(t)``, ``B(t)``, ``G(t)``, ``F(t)``
and the in-flight curve — the reproduction's stand-in for the decay
plots a paper with an empirical section would show.
"""

from __future__ import annotations

from typing import List, Sequence

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render a sequence as a one-line unicode sparkline.

    Long series are downsampled by bucket means to ``width`` columns.
    """
    if not values:
        return ""
    series = _downsample([float(v) for v in values], width)
    low = min(series)
    high = max(series)
    span = high - low
    if span == 0:
        return _BLOCKS[1] * len(series)
    chars = []
    for value in series:
        index = int((value - low) / span * (len(_BLOCKS) - 2)) + 1
        chars.append(_BLOCKS[index])
    return "".join(chars)


def _downsample(values: List[float], width: int) -> List[float]:
    if len(values) <= width:
        return values
    buckets: List[float] = []
    for column in range(width):
        start = column * len(values) // width
        end = max(start + 1, (column + 1) * len(values) // width)
        chunk = values[start:end]
        buckets.append(sum(chunk) / len(chunk))
    return buckets


def labeled_sparkline(
    label: str, values: Sequence[float], width: int = 60
) -> str:
    """``label  [spark]  first -> last`` on one line."""
    if not values:
        return f"{label:>10}  (empty)"
    return (
        f"{label:>10}  {sparkline(values, width)}  "
        f"{values[0]:.0f} -> {values[-1]:.0f}"
    )


def step_chart(
    values: Sequence[float], height: int = 10, width: int = 60
) -> str:
    """A multi-line bar chart of a series (rows = value bands)."""
    if not values:
        return ""
    series = _downsample([float(v) for v in values], width)
    high = max(series)
    if high == 0:
        return "." * len(series)
    rows = []
    for level in range(height, 0, -1):
        threshold = high * (level - 0.5) / height
        rows.append(
            "".join("#" if value >= threshold else " " for value in series)
        )
    rows.append("-" * len(series))
    return "\n".join(rows)
