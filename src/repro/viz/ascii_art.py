"""ASCII renderings of 2-D mesh states.

Text-mode counterparts of the paper's figures: occupancy maps with
good/bad node marking (Figure 3), surface-arc sketches (Figure 4), and
direction diagrams (Figure 1).  Used by the examples and handy in
tests' failure output.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.core.metrics import StepRecord
from repro.mesh.topology import Mesh
from repro.potential.classification import node_loads
from repro.types import Node


def render_loads(
    mesh: Mesh,
    loads: Dict[Node, int],
    *,
    mark_bad: bool = True,
) -> str:
    """Render a 2-D mesh as a grid of per-node packet counts.

    Empty nodes print ``.``; loads print as digits; bad nodes (more
    than ``d = 2`` packets, Definition 9) are bracketed, e.g. ``[3]``.
    Row 1 is printed at the top; the first coordinate is the row.
    """
    if mesh.dimension != 2:
        raise ValueError("ASCII rendering supports 2-D meshes only")
    lines = []
    for row in range(1, mesh.side + 1):
        cells = []
        for col in range(1, mesh.side + 1):
            load = loads.get((row, col), 0)
            if load == 0:
                cells.append(" . ")
            elif mark_bad and load > mesh.dimension:
                cells.append(f"[{load}]")
            else:
                cells.append(f" {load} ")
        lines.append("".join(cells))
    return "\n".join(lines)


def render_step(mesh: Mesh, record: StepRecord) -> str:
    """Render the occupancy at the start of a recorded step."""
    return render_loads(mesh, node_loads(record))


def render_nodes(
    mesh: Mesh,
    marked: Iterable[Node],
    *,
    mark: str = "#",
    other: str = ".",
) -> str:
    """Render a set of marked nodes (e.g. a bad-node volume)."""
    if mesh.dimension != 2:
        raise ValueError("ASCII rendering supports 2-D meshes only")
    marked_set: Set[Node] = set(marked)
    lines = []
    for row in range(1, mesh.side + 1):
        lines.append(
            " ".join(
                mark if (row, col) in marked_set else other
                for col in range(1, mesh.side + 1)
            )
        )
    return "\n".join(lines)


def render_path(
    mesh: Mesh,
    path: Iterable[Node],
    destination: Optional[Node] = None,
) -> str:
    """Render one packet's walk: visit order as letters, ``*`` = dest.

    Repeated visits keep the first letter (the shape of the walk is
    what matters for deflection diagrams).
    """
    if mesh.dimension != 2:
        raise ValueError("ASCII rendering supports 2-D meshes only")
    labels: Dict[Node, str] = {}
    alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    for index, node in enumerate(path):
        labels.setdefault(node, alphabet[index % len(alphabet)])
    if destination is not None:
        labels[destination] = "*"
    lines = []
    for row in range(1, mesh.side + 1):
        lines.append(
            " ".join(
                labels.get((row, col), ".")
                for col in range(1, mesh.side + 1)
            )
        )
    return "\n".join(lines)
