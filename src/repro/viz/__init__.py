"""Text-mode visualization helpers (mesh snapshots and time series)."""

from repro.viz.ascii_art import (
    render_loads,
    render_nodes,
    render_path,
    render_step,
)
from repro.viz.timeseries import labeled_sparkline, sparkline, step_chart

__all__ = [
    "labeled_sparkline",
    "render_loads",
    "render_nodes",
    "render_path",
    "render_step",
    "sparkline",
    "step_chart",
]
