"""The project model: what project-wide rules see.

The original linter was strictly per-module — every rule saw one AST
and nothing else.  The DET2xx/KER3xx families need more: "is this call
reachable from the vectorized loop?" and "does the columnar twin still
exist?" are questions about the *project*, not a file.  This module
builds that view once per lint run (pass 1): every
:class:`~repro.lint.context.ModuleContext`, a per-module symbol table
(qualname → def node), and the project-internal import graph.  Rules
then run over it in pass 2 without ever re-parsing a file.
"""

from __future__ import annotations

import ast
from typing import (
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.lint.context import ModuleContext

__all__ = [
    "FunctionNode",
    "ProjectModel",
    "SymbolTable",
    "resolve_call",
]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


class SymbolTable:
    """Qualname-addressed defs of one module.

    ``functions`` maps dotted qualnames (``SoaKernel._run_vectorized``,
    ``helper``, ``outer.inner``) to their def nodes; ``classes`` does
    the same for class statements.  Nesting inside functions keeps the
    plain dotted path — the linter never needs pickle's ``<locals>``
    marker to address a def.
    """

    def __init__(self, context: ModuleContext) -> None:
        self.module = context.module
        self.functions: Dict[str, FunctionNode] = {}
        self.classes: Dict[str, ast.ClassDef] = {}
        self._collect(context.tree.body, prefix="")

    def _collect(self, body: Sequence[ast.stmt], prefix: str) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = prefix + node.name
                self.functions[qualname] = node
                self._collect(node.body, qualname + ".")
            elif isinstance(node, ast.ClassDef):
                qualname = prefix + node.name
                self.classes[qualname] = node
                self._collect(node.body, qualname + ".")

    def top_level_functions(self) -> Tuple[str, ...]:
        return tuple(
            name for name in self.functions if "." not in name
        )


class ProjectModel:
    """Immutable snapshot of every linted module (pass 1 output)."""

    def __init__(self, contexts: Sequence[ModuleContext]) -> None:
        self.contexts: Tuple[ModuleContext, ...] = tuple(contexts)
        self.by_module: Dict[str, ModuleContext] = {
            context.module: context for context in self.contexts
        }
        self.symbols: Dict[str, SymbolTable] = {
            context.module: SymbolTable(context)
            for context in self.contexts
        }
        self.import_graph: Dict[str, FrozenSet[str]] = {
            context.module: self._project_imports(context)
            for context in self.contexts
        }

    def _project_imports(self, context: ModuleContext) -> FrozenSet[str]:
        """Project modules a module's imports resolve into.

        An origin like ``repro.core.rng.make_rng`` is trimmed right to
        left until a segment prefix names a linted module, so both
        ``import repro.core.rng`` and ``from repro.core.rng import
        make_rng`` contribute the edge ``→ repro.core.rng``.
        """
        targets: Set[str] = set()
        for origin in context.imports.origins():
            parts = origin.split(".")
            for end in range(len(parts), 0, -1):
                candidate = ".".join(parts[:end])
                if (
                    candidate in self.by_module
                    and candidate != context.module
                ):
                    targets.add(candidate)
                    break
        return frozenset(targets)

    def importers_of(self, module: str) -> Tuple[str, ...]:
        """Modules importing ``module``, in deterministic order."""
        return tuple(
            name
            for name in sorted(self.import_graph)
            if module in self.import_graph[name]
        )

    def modules_matching(self, suffix: str) -> List[ModuleContext]:
        """Every module whose dotted name ends with ``suffix``.

        Suffix matching (``core.kernel`` → ``repro.core.kernel`` and
        ``dirtypkg.core.kernel``) keeps declarations like the kernel
        phase contract portable between the real tree and the linter's
        fixture packages.
        """
        return [
            context
            for context in self.contexts
            if context.module == suffix
            or context.module.endswith("." + suffix)
        ]

    def function(
        self, module: str, qualname: str
    ) -> Optional[FunctionNode]:
        table = self.symbols.get(module)
        if table is None:
            return None
        return table.functions.get(qualname)


def _enclosing_class(qualname: str) -> Optional[str]:
    """``SoaKernel`` for ``SoaKernel._run_vectorized``; None at top level."""
    if "." not in qualname:
        return None
    return qualname.rsplit(".", 1)[0]


def resolve_call(
    project: ProjectModel,
    context: ModuleContext,
    caller_qualname: str,
    node: ast.Call,
) -> Optional[Tuple[str, str]]:
    """Statically resolve a call to a project function, if possible.

    Returns ``(module, qualname)`` for three resolvable shapes —
    ``self.method(...)`` (same class), ``helper(...)`` (same module's
    top level), and ``mod.helper(...)`` / ``from mod import helper``
    (another linted module, via the import map) — or None.  Methods on
    arbitrary receivers stay unresolved on purpose: guessing a
    receiver's class statically is exactly the kind of unsoundness a
    determinism linter cannot afford.
    """
    func = node.func
    table = project.symbols[context.module]

    if isinstance(func, ast.Attribute):
        receiver = func.value
        if isinstance(receiver, ast.Name) and receiver.id == "self":
            cls = _enclosing_class(caller_qualname)
            if cls is not None:
                qualname = f"{cls}.{func.attr}"
                if qualname in table.functions:
                    return (context.module, qualname)
            return None
        origin = context.imports.resolve(func)
        if origin is not None and "." in origin:
            module, name = origin.rsplit(".", 1)
            target = project.symbols.get(module)
            if target is not None and name in target.functions:
                return (module, name)
        return None

    if isinstance(func, ast.Name):
        if func.id in table.functions and "." not in func.id:
            return (context.module, func.id)
        origin = context.imports.resolve(func)
        if origin is not None and "." in origin:
            module, name = origin.rsplit(".", 1)
            target = project.symbols.get(module)
            if target is not None and name in target.functions:
                return (module, name)
    return None
