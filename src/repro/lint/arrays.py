"""Array determinism rules (NPY4xx), scoped to the soa subpackage.

The soa kernel's bit-identity proof leans on three numpy facts that
nothing in numpy enforces:

* ``NPY401`` — only ``kind="stable"`` sorts are reproducible across
  numpy versions and platforms; the default introsort breaks ties by
  partition order.  (``lexsort`` is always stable and exempt.)
* ``NPY402`` — numpy's global RNG smuggled in through a non-import
  channel.  DET101 already catches ``np.random`` when ``np`` is a
  literal import; the soa tree, however, receives numpy through
  ``_compat.np`` (the optional-dependency shim) and as an ``np``
  *parameter*, both invisible to import-map resolution.  This rule
  tracks those channels.
* ``NPY403`` — float reductions are order-sensitive (``(a+b)+c ≠
  a+(b+c)``), so a bare ``.sum()`` is only deterministic if the array
  is integral.  Reductions wrapped directly in ``int(...)`` are exact
  by construction and exempt; everything else warns.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Set

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding, Severity
from repro.lint.rules import Rule, register

__all__ = ["ARRAY_RULES"]

#: Rule ids this module registers, in registration order.
ARRAY_RULES = ("NPY401", "NPY402", "NPY403")

#: Reduction methods whose float results depend on evaluation order.
_REDUCTIONS = frozenset({"cumsum", "dot", "mean", "prod", "sum"})

#: Parameter names conventionally carrying the numpy module object.
_NP_PARAMS = frozenset({"np", "xp"})


def _in_soa(module: str) -> bool:
    parts = module.split(".")
    return "soa" in parts[1:] or parts[0] == "soa"


class _SoaRule(Rule):
    """Base: applies to ``*.soa.*`` modules regardless of domain."""

    def applies_to(self, context: ModuleContext) -> bool:
        if not _in_soa(context.module):
            return False
        return super().applies_to(context)


def _compat_numpy_names(context: ModuleContext) -> FrozenSet[str]:
    """Local names bound to numpy through non-import channels.

    Two shapes: ``np = _compat.np`` (any assignment whose value is the
    ``np`` attribute of a ``*._compat`` module) and function parameters
    literally named ``np``/``xp`` — the soa helpers pass the module
    object around to keep the no-numpy fallback importable.
    """
    names: Set[str] = set()
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Assign):
            value = node.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "np"
            ):
                origin = context.imports.resolve(value.value)
                if origin is not None and (
                    origin == "_compat"
                    or origin.endswith("._compat")
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            for arg in (
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
            ):
                if arg.arg in _NP_PARAMS:
                    names.add(arg.arg)
    return frozenset(names)


def _is_numpy_name(
    context: ModuleContext, node: ast.expr, tracked: FrozenSet[str]
) -> bool:
    """Whether an expression denotes the numpy module, any channel."""
    if isinstance(node, ast.Name) and node.id in tracked:
        return True
    origin = context.imports.resolve(node)
    return origin is not None and (
        origin == "numpy" or origin.startswith("numpy.")
    )


def _stable_kind(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "kind":
            return (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value == "stable"
            )
    return False


@register
class UnstableSortRule(_SoaRule):
    """NPY401: sort without ``kind="stable"`` in the soa tree."""

    id = "NPY401"
    name = "unstable-sort"
    description = (
        "numpy sort/argsort without kind='stable' breaks ties by "
        "partition order and is not reproducible across platforms"
    )
    severity = Severity.ERROR
    domains = None

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        tracked = _compat_numpy_names(context)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            if self._is_numpy_sort(
                context, node, tracked
            ) and not _stable_kind(node):
                yield self.finding(
                    context,
                    node,
                    "sort without kind='stable'; the soa kernels' "
                    "bit-identity proof requires stable tie-breaking",
                )

    @staticmethod
    def _is_numpy_sort(
        context: ModuleContext,
        node: ast.Call,
        tracked: FrozenSet[str],
    ) -> bool:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "argsort":
                # Arrays only grow .argsort from numpy; flag any
                # receiver.  (.sort is shared with list and only
                # flagged on the module object itself.)
                return True
            if func.attr == "sort":
                return _is_numpy_name(context, func.value, tracked)
            return False
        if isinstance(func, ast.Name):
            origin = context.imports.resolve(func)
            return origin in ("numpy.argsort", "numpy.sort")
        return False


@register
class CompatChannelRngRule(_SoaRule):
    """NPY402: numpy global RNG through a non-import channel."""

    id = "NPY402"
    name = "compat-channel-rng"
    description = (
        "numpy.random reached through _compat.np or an np parameter; "
        "DET101 cannot see these channels, and the soa tree must not "
        "touch numpy's global RNG at all"
    )
    severity = Severity.ERROR
    domains = None

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        tracked = _compat_numpy_names(context)
        if not tracked:
            return
        for node in ast.walk(context.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "random"
                and isinstance(node.value, ast.Name)
                and node.value.id in tracked
            ):
                yield self.finding(
                    context,
                    node,
                    f"numpy global RNG via '{node.value.id}.random' "
                    "(compat channel); draw through the policy's "
                    "sanctioned stream instead",
                )


@register
class FloatReductionRule(_SoaRule):
    """NPY403: order-sensitive float reduction (warning)."""

    id = "NPY403"
    name = "float-reduction"
    description = (
        "float reductions depend on summation order; wrap integral "
        "reductions in int(...) or use a compensated sum"
    )
    severity = Severity.WARNING
    domains = None

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        int_wrapped = self._int_wrapped_calls(context)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _REDUCTIONS
            ):
                continue
            if id(node) in int_wrapped:
                continue
            yield self.finding(
                context,
                node,
                f"'.{func.attr}()' reduction is order-sensitive on "
                "floats; wrap in int(...) if the array is integral",
            )

    @staticmethod
    def _int_wrapped_calls(context: ModuleContext) -> Set[int]:
        """ids of calls appearing directly inside ``int(...)``."""
        wrapped: Set[int] = set()
        for node in ast.walk(context.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "int"
                and len(node.args) == 1
                and isinstance(node.args[0], ast.Call)
            ):
                wrapped.add(id(node.args[0]))
        return wrapped

