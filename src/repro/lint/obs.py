"""Observability-layer discipline rules (OBS6xx).

The metric registry (:mod:`repro.obs.metrics`) is deterministic only
if every metric in a process is owned by a registry: get-or-create by
name, kind-checked, merged with the commutative counter-add / gauge-max
fold.  A :class:`Counter` constructed directly floats free of any
snapshot or merge, so campaign aggregation silently loses it — the
same shape of bug as an unseeded RNG, and caught the same way:

* ``OBS601`` — a metric class (``Counter`` / ``Gauge`` / ``Histogram``
  from ``obs.metrics``) is instantiated directly instead of through
  ``MetricRegistry.counter()`` / ``.gauge()`` / ``.histogram()``;
* ``OBS602`` — an observability module imports ``time`` or
  ``datetime`` at all.  DET106 already flags wall-clock *calls* in the
  obs domain; OBS602 is the stricter import-level gate that closes the
  aliasing holes call resolution cannot see (``from time import
  monotonic as t``).  ``obs.clock`` is the one sanctioned home.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Tuple

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding, Severity
from repro.lint.rules import Rule, register

__all__ = ["OBS_RULES"]

#: Rule ids this module registers, in registration order.
OBS_RULES: Tuple[str, ...] = ("OBS601", "OBS602")

#: Metric classes the registry owns; a direct call to any of these
#: (resolved through the import map, so ``collections.Counter`` never
#: matches) bypasses get-or-create, kind checking, and merging.
_METRIC_CLASSES: FrozenSet[str] = frozenset(
    {"Counter", "Gauge", "Histogram"}
)

#: Registry factory methods to suggest per class.
_FACTORY_FOR = {
    "Counter": "counter",
    "Gauge": "gauge",
    "Histogram": "histogram",
}

#: Module roots OBS602 refuses outside ``obs.clock``.
_CLOCK_MODULES: FrozenSet[str] = frozenset({"time", "datetime"})


@register
class RegistryBypassRule(Rule):
    """OBS601 — metrics must be created through a ``MetricRegistry``.

    Registry ownership is what makes the metric layer mergeable:
    ``snapshot()`` only sees registered metrics, ``merge()`` only folds
    them, and the campaign aggregate is exactly the sum of its runs.
    A directly-constructed metric object still counts — and then
    vanishes from every export.  The rule fires on any call whose
    resolved origin is a metric class of ``obs.metrics``; the module
    itself is exempt (its get-or-create helpers and snapshot decoding
    are the sanctioned construction sites).
    """

    id = "OBS601"
    name = "registry-bypass"
    description = (
        "metric class instantiated directly instead of through "
        "MetricRegistry get-or-create"
    )
    severity = Severity.ERROR
    domains = None  # a free-floating metric is wrong in any layer
    exempt_modules = ("obs.metrics",)

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        resolve = context.imports.resolve
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = resolve(node.func)
            if origin is None:
                continue
            head, _, cls = origin.rpartition(".")
            if cls not in _METRIC_CLASSES:
                continue
            if not (head == "obs.metrics" or head.endswith(".obs.metrics")):
                continue
            yield self.finding(
                context,
                node,
                f"{origin}() constructs a metric outside the registry; "
                f"use MetricRegistry.{_FACTORY_FOR[cls]}() so the metric "
                "participates in snapshots and campaign merges",
            )


@register
class ObsClockImportRule(Rule):
    """OBS602 — obs modules must not import ``time`` or ``datetime``.

    The observability layer feeds deterministic artifacts — golden
    series fixtures, bit-identity differentials, schema-versioned
    exports — so a stray timestamp is a reproducibility bug, not a
    style issue.  DET106 flags wall-clock *call sites*, but resolution
    is blind to ``from time import monotonic as tick``; refusing the
    import closes that hole.  :mod:`repro.obs.clock` is the sanctioned
    home of raw clock reads (exempt below); everything else in the
    domain takes its timestamps from the clock module's helpers.
    """

    id = "OBS602"
    name = "obs-clock-import"
    description = (
        "time/datetime imported in an obs module outside obs.clock"
    )
    severity = Severity.ERROR
    domains = frozenset({"obs"})
    exempt_modules = ("obs.clock",)

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                names = [node.module] if node.module else []
            else:
                continue
            for name in names:
                root = name.split(".", 1)[0]
                if root in _CLOCK_MODULES:
                    yield self.finding(
                        context,
                        node,
                        f"obs module imports {name!r}; wall-clock access "
                        "in the observability layer is confined to "
                        "obs.clock — call its helpers instead",
                    )
