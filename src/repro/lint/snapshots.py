"""Snapshot-coverage discipline (SNP7xx).

Deterministic resume (:mod:`repro.snapshot`) hinges on a complete
inventory of mutable run state: an attribute the serializer does not
know about resumes as its constructor default, and the run diverges
*silently* — no crash, no validation error, just a different answer.
The registry (:data:`repro.snapshot.registry.SNAPSHOT_REGISTRY`)
records, per checkpointed class, which attributes snapshots carry
(``fields``) and which are sanctioned to stay out because resume
reconstructs them (``derived``).

* ``SNP701`` — a class registered for snapshotting declares or assigns
  an instance attribute (class-level declaration, ``self.<attr> =``,
  ``self.<attr> +=``, annotated assignment) that appears in *neither*
  set.  The fix is a decision, not a deletion: either serialize the
  attribute (add to ``fields`` and the serializers) or document why
  resume rebuilds it (add to ``derived``).

The rule keys classes by module suffix + class name, exactly like the
kernel-twin specs, so the fixture packages under ``tests/lint`` test
it against the same registry entries the shipped tree uses.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding, Severity
from repro.lint.rules import Rule, register
from repro.snapshot.registry import spec_for

__all__ = ["SNAPSHOT_RULES"]

#: Rule ids this module registers, in registration order.
SNAPSHOT_RULES: Tuple[str, ...] = ("SNP701",)


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


@register
class SnapshotCoverageRule(Rule):
    """SNP701 — every mutable attribute of a checkpointed class needs
    a snapshot verdict.

    Fires on the first declaration or assignment of each attribute the
    registry has no answer for.  Upper-case class constants are skipped
    (they are code, not state); everything else — including private
    ``_caches`` — must be classified, because "it's just a cache" is a
    claim the registry exists to make auditable.
    """

    id = "SNP701"
    name = "snapshot-coverage"
    description = (
        "attribute on a snapshot-registered class is in neither the "
        "fields nor the derived set of the snapshot registry"
    )
    severity = Severity.ERROR
    domains = None  # registered classes are matched by module suffix
    exempt_modules = ()

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            spec = spec_for(context.module, node.name)
            if spec is None:
                continue
            covered = spec.covered
            reported: Set[str] = set()
            for attr, site in self._attribute_sites(node):
                if (
                    attr in covered
                    or attr in reported
                    or _is_dunder(attr)
                    or attr.isupper()
                ):
                    continue
                reported.add(attr)
                yield self.finding(
                    context,
                    site,
                    f"{node.name}.{attr} is not covered by the snapshot "
                    f"registry ({spec.module_suffix}.{spec.qualname}); "
                    "a resumed run silently resets it — add it to the "
                    "spec's fields (and the serializers) or to derived "
                    "(with resume rebuilding it)",
                )

    @staticmethod
    def _attribute_sites(
        cls_node: ast.ClassDef,
    ) -> Iterator[Tuple[str, ast.AST]]:
        """Every attribute declaration/assignment site of one class.

        Class-level statements declare attributes by name; method
        bodies (any nesting) declare them through ``self.<attr>``
        targets.  Yields in source order so the *first* site of an
        uncovered attribute anchors the finding.
        """
        sites: List[Tuple[int, str, ast.AST]] = []
        for stmt in cls_node.body:
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    sites.append((stmt.lineno, target.id, stmt))
        for sub in ast.walk(cls_node):
            targets = []
            if isinstance(sub, ast.Assign):
                targets = list(sub.targets)
            elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                targets = [sub.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    sites.append((sub.lineno, target.attr, sub))
        for _, attr, site in sorted(sites, key=lambda item: item[0]):
            yield attr, site
