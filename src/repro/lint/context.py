"""Per-module analysis context: source, AST, module identity, imports.

Rules are scoped by *domain* — the package layer a module belongs to
(``core``, ``algorithms``, ``potential``, ...) — rather than by literal
path, so the same rules run unchanged against ``repro`` itself and
against the dirty fixture packages the linter's own tests use.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, List, Optional, Tuple


class ImportMap:
    """Resolves local names back to the dotted modules they came from.

    Built once per module from its import statements; lets rules ask
    "is this call ``time.monotonic``?" without being fooled by aliases
    (``import time as t``, ``from random import choice``) or tricked by
    local variables that merely share a module's name.
    """

    def __init__(self, tree: ast.AST) -> None:
        self._aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self._aliases[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds ``numpy``.
                        top = alias.name.split(".", 1)[0]
                        self._aliases[top] = top
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports stay package-local
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted origin of a Name/Attribute chain, or None.

        ``np.random.rand`` resolves to ``numpy.random.rand`` when
        ``np`` aliases numpy; a chain rooted at a non-imported name
        (say a local ``rng`` variable) resolves to None.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        origin = self._aliases.get(node.id)
        if origin is None:
            return None
        parts.append(origin)
        return ".".join(reversed(parts))


def module_name_for(path: str) -> str:
    """Dotted module name, inferred from the package layout on disk.

    Walks up from the file while ``__init__.py`` markers continue, so
    ``src/repro/core/engine.py`` maps to ``repro.core.engine`` and a
    fixture ``tests/lint/fixtures/dirtypkg/core/bad.py`` maps to
    ``dirtypkg.core.bad`` — both land in the ``core`` domain without
    the linter knowing either tree's root.
    """
    path = os.path.abspath(path)
    directory, filename = os.path.split(path)
    stem = os.path.splitext(filename)[0]
    parts = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, pkg = os.path.split(directory)
        if not pkg:
            break
        parts.append(pkg)
    return ".".join(reversed(parts)) if parts else stem


def domain_of(module: str) -> str:
    """The package layer a dotted module belongs to.

    The second dotted segment for package members (``repro.core.engine``
    → ``core``), the sole segment for top-level modules (``repro.cli`` →
    ``cli``), and the module itself for bare scripts.
    """
    parts = module.split(".")
    if len(parts) >= 2:
        return parts[1]
    return parts[0]


class ModuleContext:
    """Everything a rule may consult about one source file."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.lines: Tuple[str, ...] = tuple(source.splitlines())
        self.tree: ast.Module = ast.parse(source, filename=path)
        self.module: str = module_name_for(path)
        self.domain: str = domain_of(self.module)
        self.imports = ImportMap(self.tree)

    @classmethod
    def from_file(cls, path: str) -> "ModuleContext":
        with open(path, "r", encoding="utf-8") as handle:
            return cls(path, handle.read())

    def line_text(self, lineno: int) -> str:
        """1-based physical source line (empty when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""
