"""Per-module analysis context: source, AST, module identity, imports.

Rules are scoped by *domain* — the package layer a module belongs to
(``core``, ``algorithms``, ``potential``, ...) — rather than by literal
path, so the same rules run unchanged against ``repro`` itself and
against the dirty fixture packages the linter's own tests use.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, List, Optional, Tuple


class ImportMap:
    """Resolves local names back to the dotted modules they came from.

    Built once per module from its import statements; lets rules ask
    "is this call ``time.monotonic``?" without being fooled by aliases
    (``import time as t``, ``from random import choice``) or tricked by
    local variables that merely share a module's name.
    """

    def __init__(self, tree: ast.AST) -> None:
        self._aliases: Dict[str, str] = {}
        #: Full dotted names of imported modules — ``import pkg.util``
        #: binds only ``pkg`` as a local name, but the import graph
        #: still needs the ``pkg.util`` edge.
        self._modules: List[str] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._modules.append(alias.name)
                    if alias.asname is not None:
                        self._aliases[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds ``numpy``.
                        top = alias.name.split(".", 1)[0]
                        self._aliases[top] = top
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports stay package-local
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{node.module}.{alias.name}"

    def origins(self) -> Tuple[str, ...]:
        """Every dotted origin this module imports, sorted."""
        return tuple(
            sorted(set(self._aliases.values()) | set(self._modules))
        )

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted origin of a Name/Attribute chain, or None.

        ``np.random.rand`` resolves to ``numpy.random.rand`` when
        ``np`` aliases numpy; a chain rooted at a non-imported name
        (say a local ``rng`` variable) resolves to None.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        origin = self._aliases.get(node.id)
        if origin is None:
            return None
        parts.append(origin)
        return ".".join(reversed(parts))


def module_name_for(path: str) -> str:
    """Dotted module name, inferred from the package layout on disk.

    Walks up from the file while ``__init__.py`` markers continue, so
    ``src/repro/core/engine.py`` maps to ``repro.core.engine`` and a
    fixture ``tests/lint/fixtures/dirtypkg/core/bad.py`` maps to
    ``dirtypkg.core.bad`` — both land in the ``core`` domain without
    the linter knowing either tree's root.
    """
    path = os.path.abspath(path)
    directory, filename = os.path.split(path)
    stem = os.path.splitext(filename)[0]
    parts = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, pkg = os.path.split(directory)
        if not pkg:
            break
        parts.append(pkg)
    return ".".join(reversed(parts)) if parts else stem


def domain_of(module: str) -> str:
    """The package layer a dotted module belongs to.

    The second dotted segment for package members (``repro.core.engine``
    → ``core``), the sole segment for top-level modules (``repro.cli`` →
    ``cli``), and the module itself for bare scripts.
    """
    parts = module.split(".")
    if len(parts) >= 2:
        return parts[1]
    return parts[0]


#: Compound statements whose *body* must not absorb suppressions: a
#: ``# repro: noqa`` inside a function body must never silence a
#: finding anchored on the ``def`` line, so only their header lines
#: (signature up to the first body statement) count as one span.
_COMPOUND_STMTS = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.If,
    ast.With,
    ast.AsyncWith,
    ast.Try,
    ast.Match,
)


class ModuleContext:
    """Everything a rule may consult about one source file."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.lines: Tuple[str, ...] = tuple(source.splitlines())
        self.tree: ast.Module = ast.parse(source, filename=path)
        self.module: str = module_name_for(path)
        self.domain: str = domain_of(self.module)
        self.imports = ImportMap(self.tree)
        self._spans: Optional[Tuple[Tuple[int, int], ...]] = None

    @classmethod
    def from_file(cls, path: str) -> "ModuleContext":
        with open(path, "r", encoding="utf-8") as handle:
            return cls(path, handle.read())

    def line_text(self, lineno: int) -> str:
        """1-based physical source line (empty when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def _statement_spans(self) -> Tuple[Tuple[int, int], ...]:
        """(first, last) physical-line spans of every statement.

        Simple statements span their full extent; compound statements
        contribute only their header (``def``/``for``/... line through
        the line before the first body statement), so suppressions
        inside a block never leak out to findings anchored on it.
        """
        if self._spans is not None:
            return self._spans
        spans: List[Tuple[int, int]] = []
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.stmt):
                continue
            first = node.lineno
            if isinstance(node, _COMPOUND_STMTS):
                body = getattr(node, "body", None)
                last = body[0].lineno - 1 if body else first
            else:
                last = node.end_lineno or first
            if last >= first:
                spans.append((first, last))
        self._spans = tuple(spans)
        return self._spans

    def suppression_lines(self, lineno: int) -> Tuple[int, ...]:
        """Physical lines whose comments may suppress a finding.

        A ``# repro: noqa[RULE]`` anywhere on the *smallest* statement
        span enclosing ``lineno`` counts, so the trailing comment of a
        multi-line call still suppresses a finding anchored on the
        call's first line.
        """
        best: Optional[Tuple[int, int]] = None
        for first, last in self._statement_spans():
            if not (first <= lineno <= last):
                continue
            if best is None or (last - first) < (best[1] - best[0]):
                best = (first, last)
        if best is None:
            return (lineno,)
        return tuple(range(best[0], best[1] + 1))
