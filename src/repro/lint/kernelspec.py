"""The declared kernel-twin phase contract.

The engine's load-bearing invariant is that every step-loop twin —
``StepKernel.run_lean``, its guarded and profiled variants, the
instrumented reference step, and both ``SoaKernel`` loops — executes
the same phases in the same order.  The dynamic proof is the golden
fixtures plus the hypothesis differentials; this module is the *static*
declaration the KER3xx rules check each twin against, so a reordered or
dropped phase fails lint seconds after the edit instead of minutes into
a differential run.

Kept free of rule classes on purpose: the DET203 RNG-reachability pass
needs :data:`VECTORIZED_ENTRYPOINTS` too, and importing it must not
perturb rule-registration order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

__all__ = [
    "KERNEL_TWINS",
    "OPTIONAL_PHASES",
    "PHASE_ORDER",
    "TwinSpec",
    "VECTORIZED_ENTRYPOINTS",
]

#: The contract, in execution order.  Fault application precedes
#: admission (a node crashed at step ``t`` must reject that step's
#: injections), then ranking, arc assignment, movement, delivery.
PHASE_ORDER: Tuple[str, ...] = (
    "faults",
    "inject",
    "rank",
    "arc_assign",
    "move",
    "deliver",
)

#: Phases a twin may legitimately lack: only the guarded and
#: instrumented loops apply fault plans; the lean/profiled/soa paths
#: reject fault plans up front and carry no faults phase.
OPTIONAL_PHASES: FrozenSet[str] = frozenset({"faults"})


@dataclass(frozen=True)
class TwinSpec:
    """One function the contract binds, addressed portably.

    ``module_suffix`` is a dotted-module *suffix* (``core.kernel``)
    rather than an absolute name so the same declaration checks
    ``repro.core.kernel`` and the linter's own ``dirtypkg.core.kernel``
    fixtures without knowing either tree's root.
    """

    module_suffix: str
    qualname: str

    def describe(self) -> str:
        return f"*.{self.module_suffix}:{self.qualname}"


#: Every loop twin bound by the phase contract.
KERNEL_TWINS: Tuple[TwinSpec, ...] = (
    TwinSpec("core.kernel", "StepKernel.run_lean"),
    TwinSpec("core.kernel", "StepKernel._run_lean_guarded"),
    TwinSpec("core.kernel", "StepKernel.run_profiled"),
    TwinSpec("core.kernel", "StepKernel.step_instrumented"),
    TwinSpec("core.soa.kernel", "SoaKernel._run_columnar"),
    TwinSpec("core.soa.kernel", "SoaKernel._run_vectorized"),
)

#: Roots of the soa *vectorized* path.  Per the PR 6 backend contract
#: only the columnar fallback may consume policy RNG (it replays the
#: object kernel's node-visit order); anything reachable from these
#: roots must be RNG-free, which is what DET203 enforces.
VECTORIZED_ENTRYPOINTS: Tuple[TwinSpec, ...] = (
    TwinSpec("core.soa.kernel", "SoaKernel._run_vectorized"),
    TwinSpec("core.soa.kernel", "SoaKernel._step_buffered_vectorized"),
)
