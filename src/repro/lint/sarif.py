"""SARIF 2.1.0 rendering for CI code-scanning annotations.

Emits the minimal valid document GitHub code scanning ingests: one run,
one driver, rule metadata for every rule that produced a finding, and
one result per actionable finding.  Baselined findings are omitted on
purpose — an annotation on a known, recorded violation is noise that
trains reviewers to ignore the signal.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List

from repro.lint.baseline import normalize_path
from repro.lint.findings import Finding, Severity
from repro.lint.rules import get_rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.runner import LintReport

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "sarif_payload"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {Severity.WARNING: "warning", Severity.ERROR: "error"}


def _rule_descriptor(rule_id: str) -> Dict[str, Any]:
    rule = get_rule(rule_id)
    return {
        "id": rule.id,
        "name": rule.name,
        "shortDescription": {"text": rule.description},
        "defaultConfiguration": {"level": _LEVELS[rule.severity]},
    }


def _result(finding: Finding) -> Dict[str, Any]:
    return {
        "ruleId": finding.rule_id,
        "level": _LEVELS[finding.severity],
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": normalize_path(finding.path)
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                }
            }
        ],
    }


def sarif_payload(report: "LintReport") -> Dict[str, Any]:
    """The SARIF document for one lint run's actionable findings."""
    rule_ids = sorted({f.rule_id for f in report.findings})
    rules: List[Dict[str, Any]] = [
        _rule_descriptor(rule_id) for rule_id in rule_ids
    ]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "results": [
                    _result(finding) for finding in report.findings
                ],
            }
        ],
    }
