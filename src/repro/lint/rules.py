"""Rule base class and registry.

A rule is a stateless checker over one module's AST.  Rules declare
their identity (``id``, ``name``), a default :class:`Severity`, and an
optional *domain* scope — the package layers they police (see
:func:`repro.lint.context.domain_of`).  A rule with ``domains = None``
runs everywhere; ``exempt_modules`` carves out dotted-suffix
exceptions (the RNG rule must not fire inside ``core.rng`` itself,
which is the one sanctioned home of raw entropy).
"""

from __future__ import annotations

import ast
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Tuple,
    Type,
)

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.project import ProjectModel

#: id -> rule class, in registration order (dicts preserve it).
_REGISTRY: Dict[str, Type["Rule"]] = {}


def register(rule_cls: Type["Rule"]) -> Type["Rule"]:
    """Class decorator adding a rule to the global registry."""
    rule_id = rule_cls.id
    if not rule_id or rule_id == Rule.id:
        raise ValueError(f"{rule_cls.__name__} must define a rule id")
    if rule_id in _REGISTRY:
        raise ValueError(
            f"duplicate rule id {rule_id!r}: "
            f"{rule_cls.__name__} vs {_REGISTRY[rule_id].__name__}"
        )
    _REGISTRY[rule_id] = rule_cls
    return rule_cls


def all_rules() -> List["Rule"]:
    """Fresh instances of every registered rule, in registration order."""
    return [cls() for cls in _REGISTRY.values()]


def rule_ids() -> Tuple[str, ...]:
    return tuple(_REGISTRY)


def get_rule(rule_id: str) -> "Rule":
    """Instantiate one registered rule by id (case-insensitive)."""
    cls = _REGISTRY.get(rule_id.upper())
    if cls is None:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {', '.join(_REGISTRY)}"
        )
    return cls()


class Rule:
    """One determinism check.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding a :class:`Finding` per violation via :meth:`finding`.
    """

    #: Stable identifier, e.g. ``DET101`` (upper-case by convention).
    id: str = ""
    #: Short human name, e.g. ``unseeded-random``.
    name: str = ""
    #: One-line statement of the invariant the rule protects.
    description: str = ""
    severity: Severity = Severity.ERROR
    #: Package layers the rule polices; ``None`` means everywhere.
    domains: Optional[FrozenSet[str]] = None
    #: Dotted-module suffixes exempt from this rule.
    exempt_modules: Tuple[str, ...] = ()

    def applies_to(self, context: ModuleContext) -> bool:
        """Whether this rule runs against the given module at all."""
        for suffix in self.exempt_modules:
            if context.module == suffix or context.module.endswith(
                "." + suffix
            ):
                return False
        if self.domains is None:
            return True
        return context.domain in self.domains

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module.  Subclasses must override."""
        raise NotImplementedError

    def finding(
        self, context: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at an AST node."""
        return Finding(
            path=context.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.id,
            severity=self.severity,
            message=message,
        )

    def describe(self) -> str:
        scope = (
            "all modules"
            if self.domains is None
            else "/".join(sorted(self.domains))
        )
        return (
            f"{self.id} {self.name} [{self.severity}, {scope}]: "
            f"{self.description}"
        )


class ProjectRule(Rule):
    """A rule over the whole project model rather than one module.

    Project rules run in pass 2 against the
    :class:`~repro.lint.project.ProjectModel` that pass 1 built; they
    answer questions no single AST can ("is this call reachable from
    the vectorized loop?", "did the columnar twin disappear?").  Their
    findings still anchor at concrete module locations, so per-line
    suppressions and ``--select``/``--ignore`` work unchanged.
    """

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        """Project rules contribute nothing in the per-module pass."""
        return iter(())

    def check_project(
        self, project: "ProjectModel"
    ) -> Iterator[Finding]:
        """Yield findings over the whole project.  Must override."""
        raise NotImplementedError
