"""Determinism-focused static analysis for the routing engine.

The simulator's correctness argument leans on an invariant the paper
never states explicitly: a run is a *pure function of its seed*.  The
fast-path/instrumented-loop equivalence (both loops must consume policy
RNG streams in lockstep), the livelock detector (repeated global state
proves a cycle), and every recorded experiment in ``BENCH_engine.json``
all silently assume that nothing in the engine draws entropy from the
OS, iterates a salted hash container, or branches on the environment.

``repro.lint`` makes that invariant checkable.  It is a small AST-based
rule framework (:mod:`repro.lint.rules`) plus domain-specific
determinism rules (:mod:`repro.lint.determinism`), wired into
``python -m repro lint`` and ``make lint``.  Findings can be suppressed
per line with ``# repro: noqa[RULE]`` when a use is provably
order-insensitive; the suppression is visible in review, which is the
point.
"""

from __future__ import annotations

from repro.lint.determinism import DETERMINISM_RULES
from repro.lint.dataflow import DATAFLOW_RULES
from repro.lint.contracts import CONTRACT_RULES
from repro.lint.arrays import ARRAY_RULES
from repro.lint.parallel import PARALLEL_RULES
from repro.lint.obs import OBS_RULES
from repro.lint.snapshots import SNAPSHOT_RULES
from repro.lint.baseline import Baseline, load_baseline, write_baseline
from repro.lint.findings import Finding, Severity
from repro.lint.project import ProjectModel, SymbolTable
from repro.lint.rules import (
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
    register,
    rule_ids,
)
from repro.lint.runner import LintReport, lint_file, lint_paths

#: Every shipped rule family, in registration order.
ALL_RULE_FAMILIES = (
    DETERMINISM_RULES,
    DATAFLOW_RULES,
    CONTRACT_RULES,
    ARRAY_RULES,
    PARALLEL_RULES,
    OBS_RULES,
    SNAPSHOT_RULES,
)

__all__ = [
    "ALL_RULE_FAMILIES",
    "ARRAY_RULES",
    "Baseline",
    "CONTRACT_RULES",
    "DATAFLOW_RULES",
    "DETERMINISM_RULES",
    "OBS_RULES",
    "Finding",
    "LintReport",
    "PARALLEL_RULES",
    "ProjectModel",
    "ProjectRule",
    "Rule",
    "SNAPSHOT_RULES",
    "Severity",
    "SymbolTable",
    "all_rules",
    "get_rule",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "register",
    "rule_ids",
    "write_baseline",
]
