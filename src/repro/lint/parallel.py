"""Parallel payload purity rules (PAR5xx).

``CaseSpec`` factories and ``ParallelExecutor`` payloads cross a
process boundary, so they must pickle — which means module-level
functions or ``functools.partial`` over them, never lambdas or
locally-defined callables.  Today that contract is documented on
``CaseSpec`` and fails at runtime, deep inside a pool worker, with a
pickling traceback that names none of the offending code.  These rules
move the failure to lint time:

* ``PAR501`` — a lambda (inline or via a local name) flows into a
  submission call;
* ``PAR502`` — a function defined inside another function flows into a
  submission call (pickle serializes by qualified name; ``<locals>``
  names never resolve in the worker).
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Set, Tuple

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding, Severity
from repro.lint.rules import Rule, register

__all__ = ["PARALLEL_RULES"]

#: Rule ids this module registers, in registration order.
PARALLEL_RULES = ("PAR501", "PAR502")

#: Calls whose arguments cross the pickling boundary: spec
#: construction, executor and campaign-pool submission, and the
#: analysis front doors that forward factories into specs.
_SUBMISSION_CALLS: FrozenSet[str] = frozenset(
    {
        "CaseSpec",
        "compare_policies",
        "run_batch",
        "run_case",
        "run_cases",
        "submit",
        "sweep",
    }
)


#: Keyword arguments of submission calls that stay in the parent
#: process: result callbacks fire after the worker's payload comes
#: back, so they never pickle and may close over anything.
_PARENT_SIDE_KEYWORDS: FrozenSet[str] = frozenset(
    {"on_point", "on_result"}
)


def _call_name(node: ast.Call) -> str:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return ""


def _payload_args(node: ast.Call) -> Iterator[ast.expr]:
    yield from node.args
    for keyword in node.keywords:
        if keyword.arg in _PARENT_SIDE_KEYWORDS:
            continue
        yield keyword.value


class _LocalCallables:
    """Names bound to unpicklable callables, per enclosing function.

    A single module-wide scan: for every function, the names of defs
    nested inside it (PAR502) and the names assigned a lambda anywhere
    in the module (PAR501 — lambdas are unpicklable regardless of the
    scope holding the name).
    """

    def __init__(self, tree: ast.Module) -> None:
        self.lambda_names: Set[str] = set()
        self.nested_defs: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Lambda
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.lambda_names.add(target.id)
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                for inner in ast.walk(node):
                    if inner is node:
                        continue
                    if isinstance(
                        inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        self.nested_defs.add(inner.name)


def _submission_payloads(
    context: ModuleContext,
) -> Iterator[Tuple[ast.Call, ast.expr]]:
    for node in ast.walk(context.tree):
        if (
            isinstance(node, ast.Call)
            and _call_name(node) in _SUBMISSION_CALLS
        ):
            for arg in _payload_args(node):
                yield node, arg


def _unwrap_partial(arg: ast.expr) -> ast.expr:
    """The callable inside ``functools.partial(f, ...)``, else ``arg``.

    ``partial`` over a module-level function pickles fine; ``partial``
    over a lambda does not, so the check recurses into the first
    positional argument.
    """
    if (
        isinstance(arg, ast.Call)
        and _call_name(arg) == "partial"
        and arg.args
    ):
        return arg.args[0]
    return arg


@register
class LambdaPayloadRule(Rule):
    """PAR501: lambda flowing into a pickled submission."""

    id = "PAR501"
    name = "lambda-payload"
    description = (
        "lambdas cannot pickle; CaseSpec factories and executor "
        "payloads must be module-level functions or functools.partial "
        "over them"
    )
    severity = Severity.ERROR
    domains = None

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        local = _LocalCallables(context.tree)
        for call, arg in _submission_payloads(context):
            payload = _unwrap_partial(arg)
            if isinstance(payload, ast.Lambda):
                yield self.finding(
                    context,
                    payload,
                    f"lambda passed to {_call_name(call)}(); it fails "
                    "to pickle only once a pool worker unpacks it",
                )
            elif (
                isinstance(payload, ast.Name)
                and payload.id in local.lambda_names
            ):
                yield self.finding(
                    context,
                    call,
                    f"'{payload.id}' is lambda-valued and passed to "
                    f"{_call_name(call)}(); replace with a "
                    "module-level function",
                )


@register
class LocalCallablePayloadRule(Rule):
    """PAR502: locally-defined callable flowing into a submission."""

    id = "PAR502"
    name = "local-callable-payload"
    description = (
        "functions defined inside other functions pickle by a "
        "<locals> qualname that never resolves in a pool worker"
    )
    severity = Severity.ERROR
    domains = None

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        local = _LocalCallables(context.tree)
        for call, arg in _submission_payloads(context):
            payload = _unwrap_partial(arg)
            if (
                isinstance(payload, ast.Name)
                and payload.id in local.nested_defs
                and payload.id not in local.lambda_names
            ):
                yield self.finding(
                    context,
                    call,
                    f"locally-defined '{payload.id}' passed to "
                    f"{_call_name(call)}(); move it to module level "
                    "so it pickles by qualified name",
                )
