"""Per-line suppression comments: ``# repro: noqa[RULE, ...]``.

A bare ``# repro: noqa`` silences every rule on its line; the bracketed
form silences only the listed rule ids.  Suppressions are deliberately
line-scoped and explicit — a reviewer sees exactly which invariant the
author is claiming doesn't apply, and the linter's tests require every
shipped rule to have a working suppression (the escape hatch is part of
the contract, not an afterthought).
"""

from __future__ import annotations

import re
from typing import FrozenSet, Optional

#: Matches ``# repro: noqa`` with an optional ``[RULE1, RULE2]`` list.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\s*\[(?P<rules>[A-Za-z0-9_,\s]*)\])?",
    re.IGNORECASE,
)

#: Sentinel rule-set meaning "all rules suppressed on this line".
ALL_RULES: FrozenSet[str] = frozenset({"*"})


def parse_noqa(line: str) -> Optional[FrozenSet[str]]:
    """Suppressed rule ids on a source line, or None when unmarked.

    Returns :data:`ALL_RULES` for the bare form.  An empty bracket list
    (``# repro: noqa[]``) suppresses nothing — the author started to
    name rules and named none, which is more likely a typo than a
    blanket waiver.
    """
    match = _NOQA_RE.search(line)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return ALL_RULES
    listed = frozenset(
        part.strip().upper() for part in rules.split(",") if part.strip()
    )
    return listed


def is_suppressed(line: str, rule_id: str) -> bool:
    """True when ``line`` carries a noqa covering ``rule_id``."""
    suppressed = parse_noqa(line)
    if suppressed is None:
        return False
    return "*" in suppressed or rule_id.upper() in suppressed
