"""File collection and the two-pass lint driver.

Pass 1 parses every file exactly once into
:class:`~repro.lint.context.ModuleContext` objects and assembles the
:class:`~repro.lint.project.ProjectModel` (symbol tables + import
graph).  Pass 2 runs the per-module rules over each context and the
:class:`~repro.lint.rules.ProjectRule` families over the model, applies
line/statement-scoped suppressions, then partitions the result against
an optional committed baseline.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.baseline import Baseline, compute_fingerprints
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding, Severity
from repro.lint.project import ProjectModel
from repro.lint.rules import ProjectRule, Rule, all_rules
from repro.lint.suppressions import is_suppressed


@dataclass
class LintReport:
    """Outcome of one lint run.

    ``findings`` holds the *actionable* findings; when a baseline was
    applied, matched findings move to ``baselined`` and recorded
    fingerprints that no longer fire land in ``stale_baseline`` —
    neither affects the exit code, but both are rendered so the
    baseline burns down visibly.
    """

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[str] = field(default_factory=list)
    fingerprints: Dict[Finding, str] = field(default_factory=dict)

    def worst_severity(self) -> Optional[Severity]:
        if not self.findings:
            return None
        return max(finding.severity for finding in self.findings)

    def exit_code(self, fail_on: Severity = Severity.WARNING) -> int:
        """0 when clean; 1 on findings at/above ``fail_on``; 2 on
        files the linter could not even parse."""
        if self.parse_errors:
            return 2
        worst = self.worst_severity()
        if worst is not None and worst >= fail_on:
            return 1
        return 0


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Expand files/directories into a sorted stream of ``.py`` files.

    Sorted walk: the report order must not depend on filesystem
    enumeration order.
    """
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs.sort()
            dirs[:] = [d for d in dirs if d != "__pycache__"]
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def select_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """The active rule set after ``--select`` / ``--ignore`` filters."""
    rules = all_rules()
    if select:
        wanted = {rule_id.upper() for rule_id in select}
        unknown = wanted - {rule.id for rule in rules}
        if unknown:
            raise KeyError(
                f"unknown rule id(s) in --select: {sorted(unknown)}"
            )
        rules = [rule for rule in rules if rule.id in wanted]
    if ignore:
        dropped = {rule_id.upper() for rule_id in ignore}
        rules = [rule for rule in rules if rule.id not in dropped]
    return rules


def _suppressed(context: ModuleContext, finding: Finding) -> bool:
    """Whether any line of the enclosing statement carries a noqa."""
    return any(
        is_suppressed(context.line_text(lineno), finding.rule_id)
        for lineno in context.suppression_lines(finding.line)
    )


def _run_rules(
    contexts: Sequence[ModuleContext],
    rules: Sequence[Rule],
) -> List[Finding]:
    """Pass 2: per-module rules, then project rules over the model."""
    project = ProjectModel(contexts)
    by_path = {context.path: context for context in contexts}
    raw: List[Finding] = []
    for context in contexts:
        for rule in rules:
            if isinstance(rule, ProjectRule):
                continue
            if not rule.applies_to(context):
                continue
            raw.extend(rule.check(context))
    for rule in rules:
        if isinstance(rule, ProjectRule):
            raw.extend(rule.check_project(project))
    findings = [
        finding
        for finding in raw
        if finding.path not in by_path
        or not _suppressed(by_path[finding.path], finding)
    ]
    findings.sort()
    return findings


def _apply_baseline(report: LintReport, baseline: Baseline) -> None:
    """Partition findings against the baseline; record stale entries."""
    seen: Set[str] = set()
    fresh: List[Finding] = []
    for finding in report.findings:
        fingerprint = report.fingerprints[finding]
        if fingerprint in baseline:
            report.baselined.append(finding)
            seen.add(fingerprint)
        else:
            fresh.append(finding)
    report.findings = fresh
    report.stale_baseline = sorted(set(baseline.entries) - seen)


def lint_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Lint every Python file under ``paths``."""
    rules = select_rules(select, ignore)
    report = LintReport()
    contexts: List[ModuleContext] = []
    for path in iter_python_files(paths):
        report.files_checked += 1
        try:
            contexts.append(ModuleContext.from_file(path))
        except SyntaxError as error:
            report.parse_errors.append(f"{path}: {error}")
        except OSError as error:
            report.parse_errors.append(f"{path}: {error}")
    report.findings = _run_rules(contexts, rules)
    by_path = {context.path: context for context in contexts}
    report.fingerprints = compute_fingerprints(
        report.findings,
        lambda finding: by_path[finding.path].line_text(finding.line)
        if finding.path in by_path
        else "",
    )
    if baseline is not None:
        _apply_baseline(report, baseline)
    return report


def lint_file(
    path: str, rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Lint one file; suppressions already applied.

    The file is its own one-module project, so project rules still run
    — a fixture missing a declared kernel twin fires KER303 even when
    linted alone.
    """
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path, rules)[1]


def parse_source(source: str, path: str = "<string>") -> ast.Module:
    """Parse helper exposed for the linter's own tests."""
    return ast.parse(source, filename=path)


def lint_source(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
) -> Tuple[ModuleContext, List[Finding]]:
    """Lint an in-memory module (test hook; mirrors :func:`lint_file`)."""
    active = list(rules) if rules is not None else all_rules()
    context = ModuleContext(path, source)
    return context, _run_rules([context], active)
