"""File collection and the lint driver."""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding, Severity
from repro.lint.rules import Rule, all_rules
from repro.lint.suppressions import is_suppressed


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)

    def worst_severity(self) -> Optional[Severity]:
        if not self.findings:
            return None
        return max(finding.severity for finding in self.findings)

    def exit_code(self, fail_on: Severity = Severity.WARNING) -> int:
        """0 when clean; 1 on findings at/above ``fail_on``; 2 on
        files the linter could not even parse."""
        if self.parse_errors:
            return 2
        worst = self.worst_severity()
        if worst is not None and worst >= fail_on:
            return 1
        return 0


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Expand files/directories into a sorted stream of ``.py`` files.

    Sorted walk: the report order must not depend on filesystem
    enumeration order.
    """
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs.sort()
            dirs[:] = [d for d in dirs if d != "__pycache__"]
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def select_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """The active rule set after ``--select`` / ``--ignore`` filters."""
    rules = all_rules()
    if select:
        wanted = {rule_id.upper() for rule_id in select}
        unknown = wanted - {rule.id for rule in rules}
        if unknown:
            raise KeyError(
                f"unknown rule id(s) in --select: {sorted(unknown)}"
            )
        rules = [rule for rule in rules if rule.id in wanted]
    if ignore:
        dropped = {rule_id.upper() for rule_id in ignore}
        rules = [rule for rule in rules if rule.id not in dropped]
    return rules


def lint_file(
    path: str, rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Lint one file; suppressions already applied."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path, rules)[1]


def lint_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint every Python file under ``paths``."""
    rules = select_rules(select, ignore)
    report = LintReport()
    for path in iter_python_files(paths):
        try:
            report.findings.extend(lint_file(path, rules))
        except SyntaxError as error:
            report.parse_errors.append(f"{path}: {error}")
        except OSError as error:
            report.parse_errors.append(f"{path}: {error}")
        report.files_checked += 1
    report.findings.sort()
    return report


def parse_source(source: str, path: str = "<string>") -> ast.Module:
    """Parse helper exposed for the linter's own tests."""
    return ast.parse(source, filename=path)


def lint_source(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
) -> Tuple[ModuleContext, List[Finding]]:
    """Lint an in-memory module (test hook; mirrors :func:`lint_file`)."""
    active = list(rules) if rules is not None else all_rules()
    context = ModuleContext(path, source)
    findings: List[Finding] = []
    for rule in active:
        if not rule.applies_to(context):
            continue
        for finding in rule.check(context):
            if is_suppressed(
                context.line_text(finding.line), finding.rule_id
            ):
                continue
            findings.append(finding)
    findings.sort()
    return context, findings
