"""Lint findings and severities."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict


class Severity(enum.IntEnum):
    """How bad a finding is; ordering is meaningful (higher = worse).

    ``WARNING`` marks constructs that are suspicious in engine code but
    have legitimate uses elsewhere (wall-clock reads belong in
    benchmarks, not step loops); ``ERROR`` marks constructs that break
    the run-is-a-pure-function-of-the-seed invariant outright.
    """

    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{[s.name.lower() for s in cls]}"
            ) from None


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    The dataclass is ordered so reports are deterministically sorted by
    location — the linter holds itself to its own standard.
    """

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str

    def format_text(self) -> str:
        """The one-line ``path:line:col: RULE severity message`` form."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} {self.severity}: {self.message}"
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": str(self.severity),
            "message": self.message,
        }
