"""Committed-findings baseline: ratchet semantics for new rules.

Turning on a project-wide rule family over an existing tree surfaces
findings nobody can fix in the same change.  The baseline file records
those pre-existing findings by *fingerprint* so ``--strict-new`` can
fail CI on new violations while the recorded ones burn down; a
fingerprint that stops matching is reported as stale so the file
shrinks monotonically instead of rotting.

Fingerprints hash the normalized path, rule id, the stripped source
line text, and an occurrence index — deliberately *not* the line
number, so unrelated edits above a baselined finding don't unbaseline
it, while the occurrence index keeps two identical lines in one file
distinct.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.lint.findings import Finding

__all__ = [
    "BASELINE_VERSION",
    "Baseline",
    "baseline_payload",
    "compute_fingerprints",
    "load_baseline",
    "normalize_path",
    "write_baseline",
]

BASELINE_VERSION = 1
_TOOL_NAME = "repro-lint"


def normalize_path(path: str) -> str:
    """Repo-relative forward-slash path when possible.

    Fingerprints must agree between a developer's checkout and CI, so
    paths under the working directory are relativized; paths outside it
    (tempdir fixtures in tests) stay absolute rather than acquiring
    fragile ``../..`` prefixes.
    """
    try:
        rel = os.path.relpath(path)
    except ValueError:  # pragma: no cover - windows cross-drive only
        rel = path
    if not rel.startswith(".."):
        path = rel
    return path.replace(os.sep, "/")


def compute_fingerprints(
    findings: Sequence[Finding],
    line_text_of: Callable[[Finding], str],
) -> Dict[Finding, str]:
    """Stable fingerprint per finding (input must be pre-sorted).

    The occurrence index is assigned in report order, so the *n*-th
    identical violation on identical line text keeps its identity as
    long as the earlier ones survive.
    """
    counts: Dict[Tuple[str, str, str], int] = {}
    fingerprints: Dict[Finding, str] = {}
    for finding in findings:
        text = line_text_of(finding).strip()
        key = (normalize_path(finding.path), finding.rule_id, text)
        index = counts.get(key, 0)
        counts[key] = index + 1
        token = "\x00".join((key[0], key[1], key[2], str(index)))
        fingerprints[finding] = hashlib.sha1(
            token.encode("utf-8")
        ).hexdigest()
    return fingerprints


@dataclass
class Baseline:
    """A loaded baseline file: fingerprint → recorded entry."""

    entries: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    path: str = ""

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.entries

    def __len__(self) -> int:
        return len(self.entries)


def load_baseline(path: str) -> Baseline:
    """Read and validate a baseline file.

    Raises:
        ValueError: on a malformed file — a silently ignored baseline
            would quietly re-admit every recorded violation.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}: not valid JSON ({error})") from None
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: baseline must be a JSON object")
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {version!r} "
            f"(expected {BASELINE_VERSION})"
        )
    raw_entries = payload.get("entries")
    if not isinstance(raw_entries, list):
        raise ValueError(f"{path}: 'entries' must be a list")
    entries: Dict[str, Dict[str, Any]] = {}
    for position, entry in enumerate(raw_entries):
        if not isinstance(entry, dict) or not isinstance(
            entry.get("fingerprint"), str
        ):
            raise ValueError(
                f"{path}: entry {position} lacks a string fingerprint"
            )
        entries[entry["fingerprint"]] = entry
    return Baseline(entries=entries, path=path)


def baseline_payload(
    findings: Sequence[Finding],
    fingerprints: Dict[Finding, str],
) -> Dict[str, Any]:
    """The JSON document recording ``findings`` as the new baseline."""
    entries: List[Dict[str, Any]] = [
        {
            "fingerprint": fingerprints[finding],
            "rule": finding.rule_id,
            "path": normalize_path(finding.path),
            "line": finding.line,
            "message": finding.message,
        }
        for finding in sorted(findings)
    ]
    return {
        "version": BASELINE_VERSION,
        "tool": _TOOL_NAME,
        "entries": entries,
    }


def write_baseline(
    path: str,
    findings: Sequence[Finding],
    fingerprints: Dict[Finding, str],
) -> None:
    payload = baseline_payload(findings, fingerprints)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
