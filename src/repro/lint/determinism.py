"""Domain-specific determinism rules.

Every rule here defends one facet of the same invariant: **a routing
run is a pure function of (problem, policy, seed)**.  That invariant is
what makes the fast-path/instrumented equivalence tests meaningful,
what lets the livelock detector treat a repeated global state as proof
of a cycle, and what makes the numbers in ``BENCH_engine.json``
reproducible on another machine.

The rules are syntactic (no type inference), so each is scoped to the
package layers where its pattern is unambiguous enough to act on, and
every rule honors ``# repro: noqa[RULE]`` for the provably-safe cases.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding, Severity
from repro.lint.rules import Rule, register

#: ``random`` module functions that draw from (or mutate) the hidden
#: module-level stream.  Using them anywhere in the library bypasses
#: the explicit ``random.Random`` plumbing of ``repro.core.rng``.
_GLOBAL_STREAM_FUNCS: FrozenSet[str] = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "setstate",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: ``time`` module calls that read the wall clock (or block on it).
_WALL_CLOCK_FUNCS: FrozenSet[str] = frozenset(
    {
        "clock_gettime",
        "clock_gettime_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "sleep",
        "time",
        "time_ns",
    }
)

#: ``datetime`` constructors that capture "now".
_NOW_FUNCS: FrozenSet[str] = frozenset(
    {
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``math`` functions returning floats whose exact bit patterns should
#: never be compared with ``==``.
_FLOAT_MATH_FUNCS: FrozenSet[str] = frozenset(
    {
        "acos",
        "asin",
        "atan",
        "atan2",
        "cbrt",
        "cos",
        "dist",
        "exp",
        "expm1",
        "fsum",
        "hypot",
        "log",
        "log10",
        "log1p",
        "log2",
        "pow",
        "sin",
        "sqrt",
        "tan",
    }
)

#: Methods that resize or reorder a container in place.
_MUTATING_METHODS: FrozenSet[str] = frozenset(
    {
        "add",
        "append",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)

#: Dict views whose iteration is iteration over the dict itself.
_DICT_VIEWS: FrozenSet[str] = frozenset({"items", "keys", "values"})


def _iter_targets(tree: ast.Module) -> Iterator[Tuple[ast.AST, ast.expr]]:
    """Yield ``(owner, iterable)`` for every for-loop and comprehension.

    ``owner`` is the node a finding should anchor to (the loop or the
    comprehension); ``iterable`` is the expression being iterated.
    """
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node, node.iter
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for comp in node.generators:
                yield node, comp.iter


def _is_set_display(node: ast.expr) -> bool:
    """A literal set, a set comprehension, or a set()/frozenset() call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _scopes(tree: ast.Module) -> Iterator[List[ast.stmt]]:
    """Module body plus each function body (class bodies fold into the
    module scope for the simple name-tracking the set rule does)."""
    yield tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.body


def _container_key(node: ast.expr) -> Optional[str]:
    """A stable key for "the same container expression", or None.

    Only plain names and dotted attribute chains qualify — anything
    with calls or subscripts in it may denote a different object on
    each mention, so the mutation rule stays silent about it.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@register
class UnseededRandomRule(Rule):
    """DET101 — all randomness must flow through ``repro.core.rng``.

    The module-level ``random.*`` functions share one hidden global
    stream: any call re-orders every later draw in the process, and
    ``random.seed`` silently couples unrelated components.  Zero-arg
    ``random.Random()`` and any ``numpy.random`` use pull OS entropy /
    global state the run result then depends on.  ``repro.core.rng``
    itself is exempt — it is the sanctioned wrapper.
    """

    id = "DET101"
    name = "unseeded-random"
    description = (
        "module-level or unseeded random source outside repro.core.rng"
    )
    severity = Severity.ERROR
    domains = None
    exempt_modules = ("core.rng",)

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        resolve = context.imports.resolve
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = resolve(node.func)
            if origin is None:
                continue
            if origin.startswith("numpy.random"):
                yield self.finding(
                    context,
                    node,
                    f"call through numpy.random ({origin}) bypasses the "
                    "seeded random.Random plumbing; take an explicit "
                    "rng/seed parameter (see repro.core.rng)",
                )
            elif origin == "random.Random" and not (
                node.args or node.keywords
            ):
                yield self.finding(
                    context,
                    node,
                    "random.Random() with no seed draws OS entropy; pass "
                    "an explicit seed or accept an rng parameter",
                )
            elif (
                origin.startswith("random.")
                and origin.split(".", 1)[1] in _GLOBAL_STREAM_FUNCS
            ):
                yield self.finding(
                    context,
                    node,
                    f"{origin}() uses the hidden module-level stream; "
                    "draw from an explicit random.Random "
                    "(see repro.core.rng.make_rng)",
                )


@register
class SetIterationRule(Rule):
    """DET102 — no iteration over bare sets in engine/algorithm code.

    Set iteration order depends on element hashes — salted for strings
    (``PYTHONHASHSEED``) and an implementation detail for everything
    else.  Inside ``core``/``algorithms``/``dynamic`` step loops, an
    iteration order leak becomes a different node visit order, hence a
    different policy RNG stream, hence a different run.  Sort, or
    dedupe with ``dict.fromkeys`` (insertion-ordered) instead.
    """

    id = "DET102"
    name = "set-iteration"
    description = (
        "iteration over a bare set/frozenset in order-sensitive "
        "engine code"
    )
    severity = Severity.ERROR
    domains = frozenset({"core", "algorithms", "dynamic"})

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        set_names = self._set_valued_names(context.tree)
        for owner, iterable in _iter_targets(context.tree):
            if _is_set_display(iterable) or (
                isinstance(iterable, ast.Name)
                and iterable.id in set_names
            ):
                yield self.finding(
                    context,
                    owner,
                    "iterating a set/frozenset leaks hash order into the "
                    "run; use sorted(...) or dict.fromkeys(...) to fix "
                    "the order",
                )

    @staticmethod
    def _set_valued_names(tree: ast.Module) -> Set[str]:
        """Names assigned a set display anywhere in the module.

        Coarse by design: a name rebound to a list later would still be
        flagged, and ``# repro: noqa[DET102]`` covers that rare case.
        """
        names: Set[str] = set()
        for scope in _scopes(tree):
            for stmt in scope:
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and _is_set_display(stmt.value)
                ):
                    names.add(stmt.targets[0].id)
        return names


@register
class EnvBranchingRule(Rule):
    """DET103 — engine behavior must not depend on the environment.

    ``os.environ``/``os.getenv`` reads inside ``core``/``algorithms``/
    ``dynamic`` make two runs with identical (problem, policy, seed)
    differ across shells and CI runners — precisely the divergence the
    differential tests exist to rule out.  Environment knobs belong at
    the harness boundary (CLI flags, benchmark scripts), where they
    are recorded.
    """

    id = "DET103"
    name = "env-branching"
    description = "os.environ/os.getenv dependence inside engine code"
    severity = Severity.ERROR
    domains = frozenset({"core", "algorithms", "dynamic"})

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        resolve = context.imports.resolve
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.Attribute, ast.Name)):
                origin = resolve(node)
                if origin in ("os.environ", "os.environb", "os.getenv"):
                    # Flag the read itself; attribute chains hanging off
                    # environ (environ.get) resolve to a longer origin
                    # and are reported at their environ base instead.
                    yield self.finding(
                        context,
                        node,
                        f"{origin} read makes engine behavior depend on "
                        "the caller's environment; pass the value in as "
                        "an explicit parameter",
                    )


@register
class FloatEqualityRule(Rule):
    """DET104 — no ``==``/``!=`` on floats in the potential layer.

    The paper's potential arguments are exact inequalities over
    integer-valued quantities; the float-typed helpers (bounds,
    recurrences) accumulate rounding, so exact comparison silently
    flips near boundaries.  Compare with ``math.isclose`` or keep the
    potential integral.
    """

    id = "DET104"
    name = "float-equality"
    description = "exact ==/!= against float-valued expressions"
    severity = Severity.ERROR
    domains = frozenset({"potential"})

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(
                isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
            ):
                continue
            operands = [node.left, *node.comparators]
            if any(self._float_like(context, o) for o in operands):
                yield self.finding(
                    context,
                    node,
                    "exact ==/!= on a float-valued expression; use "
                    "math.isclose(...) or integer potentials",
                )

    @staticmethod
    def _float_like(context: ModuleContext, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id == "float":
                return True
            origin = context.imports.resolve(node.func)
            if origin is not None and origin.startswith("math."):
                return origin.split(".", 1)[1] in _FLOAT_MATH_FUNCS
        return False


@register
class IterationMutationRule(Rule):
    """DET105 — never mutate the container being iterated.

    Resizing a dict during iteration raises ``RuntimeError`` — but only
    when the rehash happens to trigger, so the bug surfaces on some
    workloads and not others; list mutation during iteration silently
    skips or repeats elements.  Either way the visit sequence stops
    being a pure function of the container's contents.  Iterate a
    snapshot (``list(xs)``) or build a new container.
    """

    id = "DET105"
    name = "iteration-mutation"
    description = "container mutated while being iterated"
    severity = Severity.ERROR
    domains = None

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            key = self._iterated_container(node.iter)
            if key is None:
                continue
            for stmt in node.body:
                for inner in ast.walk(stmt):
                    mutation = self._mutation_of(inner, key)
                    if mutation is not None:
                        yield self.finding(
                            context,
                            inner,
                            f"{mutation} mutates {key!r} while the loop at "
                            f"line {node.lineno} iterates it; iterate "
                            f"list({key}) or collect changes and apply "
                            "after the loop",
                        )

    @staticmethod
    def _iterated_container(iterable: ast.expr) -> Optional[str]:
        """Key of the container a loop iterates directly, if any.

        ``for x in d`` and ``for k, v in d.items()`` both iterate
        ``d``; ``for x in list(d)`` iterates a snapshot and is fine.
        """
        if isinstance(
            iterable, ast.Call
        ) and isinstance(iterable.func, ast.Attribute):
            if (
                iterable.func.attr in _DICT_VIEWS
                and not iterable.args
                and not iterable.keywords
            ):
                return _container_key(iterable.func.value)
            return None
        return _container_key(iterable)

    @staticmethod
    def _mutation_of(node: ast.AST, key: str) -> Optional[str]:
        """Describe how ``node`` mutates the container ``key``, if it does."""
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if (
                node.func.attr in _MUTATING_METHODS
                and _container_key(node.func.value) == key
            ):
                return f".{node.func.attr}()"
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and _container_key(target.value) == key
                ):
                    return "del"
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and _container_key(target.value) == key
                ):
                    return "subscript assignment"
        return None


@register
class WallClockRule(Rule):
    """DET106 — no wall-clock reads in engine code.

    Simulation time is ``engine.time``, advanced by the step loop; the
    host's clock has no business inside ``core``/``algorithms``/
    ``dynamic``/``obs``/``faults``.  A ``time.time()`` that leaks into
    a decision
    (or even a log emitted mid-step) makes runs unreproducible and
    benchmarks unattributable.  Timing belongs in the benchmark
    harness, which records what it measured.  ``obs.clock`` is the one
    sanctioned home of raw clock reads — it plays the role for DET106
    that ``core.rng`` plays for DET101, so the rest of the
    observability layer (profiler, manifests) must route every
    timestamp through it.  Severity is *warning*: a clock read is
    suspect in engine code but not proof of divergence by itself.
    """

    id = "DET106"
    name = "wall-clock"
    description = "time.*/datetime.now read inside engine code"
    severity = Severity.WARNING
    domains = frozenset(
        {"core", "algorithms", "dynamic", "obs", "faults", "campaign"}
    )
    exempt_modules = ("obs.clock",)

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        resolve = context.imports.resolve
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = resolve(node.func)
            if origin is None:
                continue
            if (
                origin.startswith("time.")
                and origin.split(".", 1)[1] in _WALL_CLOCK_FUNCS
            ) or origin in _NOW_FUNCS:
                yield self.finding(
                    context,
                    node,
                    f"{origin}() reads the wall clock inside engine "
                    "code; simulation time is engine.time — measure in "
                    "the benchmark harness instead",
                )


#: The shipped determinism rule set, in id order.
DETERMINISM_RULES: Tuple[str, ...] = (
    UnseededRandomRule.id,
    SetIterationRule.id,
    EnvBranchingRule.id,
    FloatEqualityRule.id,
    IterationMutationRule.id,
    WallClockRule.id,
)
