"""RNG dataflow rules (DET2xx).

The DET1xx family catches syntactically obvious entropy (bare
``random.Random()``, module-level ``random.shuffle``).  This family
tracks where RNG *values* come from and where they flow:

* ``DET201`` — every seeded RNG must be constructed through the
  sanctioned ``repro.core.rng`` factories (``make_rng``/``spawn``),
  which normalize seeds and record provenance; a raw
  ``random.Random(seed)`` elsewhere silently forks the seed-derivation
  scheme.
* ``DET202`` — an RNG stored in a module global is shared mutable
  state: two runs in one process consume from the same stream and stop
  being pure functions of their seeds.
* ``DET203`` — a project-wide reachability pass over the call graph
  rooted at the soa *vectorized* entrypoints.  Per the backend
  contract only the columnar fallback may consume policy RNG (it
  replays the object kernel's node-visit order draw for draw); any RNG
  consumption reachable from the vectorized roots would diverge from
  the object kernel on the first draw.  The pass is argument-sensitive:
  a shared helper like ``conflict.resolve_node`` is legal as long as
  the vectorized call site passes ``rng=None``.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.lint.context import ImportMap, ModuleContext
from repro.lint.findings import Finding, Severity
from repro.lint.kernelspec import VECTORIZED_ENTRYPOINTS
from repro.lint.project import (
    FunctionNode,
    ProjectModel,
    resolve_call,
)
from repro.lint.rules import ProjectRule, Rule, register

__all__ = ["DATAFLOW_RULES"]

#: Rule ids this module registers, in registration order.
DATAFLOW_RULES = ("DET201", "DET202", "DET203")

#: Origins that construct a raw standard-library RNG.
_RANDOM_CLASSES = frozenset({"random.Random", "random.SystemRandom"})

#: Methods that advance a ``random.Random`` stream when called.
_STREAM_METHODS: FrozenSet[str] = frozenset(
    {
        "betavariate",
        "binomialvariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: Attribute names that conventionally hold the sanctioned RNG.
_RNG_ATTRS = frozenset({"rng", "_rng"})


def _is_factory_origin(origin: str) -> bool:
    """True for ``<pkg>.rng.make_rng`` / ``<pkg>.rng.spawn`` origins."""
    parts = origin.split(".")
    return (
        len(parts) >= 2
        and parts[-1] in ("make_rng", "spawn")
        and parts[-2] == "rng"
    )


def _rng_source_origin(
    imports: ImportMap, node: ast.Call
) -> Optional[str]:
    """The dotted origin when a call constructs an RNG, else None."""
    origin = imports.resolve(node.func)
    if origin is None:
        return None
    if origin in _RANDOM_CLASSES or _is_factory_origin(origin):
        return origin
    return None


@register
class RngConstructionRule(Rule):
    """DET201: seeded RNG construction outside the sanctioned factory."""

    id = "DET201"
    name = "rng-outside-factory"
    description = (
        "seeded random.Random construction bypasses the repro.core.rng "
        "factories that normalize seeds and record provenance"
    )
    severity = Severity.ERROR
    domains = None
    exempt_modules = ("core.rng",)

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = context.imports.resolve(node.func)
            if origin == "random.SystemRandom":
                yield self.finding(
                    context,
                    node,
                    "random.SystemRandom draws OS entropy and can "
                    "never replay; use make_rng(seed) from the "
                    "sanctioned rng module",
                )
            elif origin == "random.Random" and (
                node.args or node.keywords
            ):
                # The bare unseeded form is DET101's finding.
                yield self.finding(
                    context,
                    node,
                    "seeded RNG constructed outside the sanctioned "
                    "factory; use make_rng(seed) / spawn(rng, key) so "
                    "seed derivation stays uniform",
                )


@register
class ModuleGlobalRngRule(Rule):
    """DET202: RNG stored in module-global state."""

    id = "DET202"
    name = "module-global-rng"
    description = (
        "an RNG bound to a module global is cross-run shared state; "
        "runs stop being pure functions of their seeds"
    )
    severity = Severity.ERROR
    domains = None
    exempt_modules = ("core.rng",)

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        yield from self._module_level(context)
        yield from self._via_global_stmt(context)

    def _module_level(self, context: ModuleContext) -> Iterator[Finding]:
        for stmt in context.tree.body:
            value = self._assigned_value(stmt)
            if value is None or not isinstance(value, ast.Call):
                continue
            origin = _rng_source_origin(context.imports, value)
            if origin is not None:
                yield self.finding(
                    context,
                    stmt,
                    f"RNG from {origin} stored in a module global; "
                    "thread it through run state instead",
                )

    def _via_global_stmt(self, context: ModuleContext) -> Iterator[Finding]:
        for func in ast.walk(context.tree):
            if not isinstance(
                func, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            declared: Set[str] = set()
            for node in ast.walk(func):
                if isinstance(node, ast.Global):
                    declared.update(node.names)
            if not declared:
                continue
            for node in ast.walk(func):
                value = self._assigned_value(node)
                if value is None or not isinstance(value, ast.Call):
                    continue
                if not self._targets_any(node, declared):
                    continue
                origin = _rng_source_origin(context.imports, value)
                if origin is not None:
                    yield self.finding(
                        context,
                        node,
                        f"RNG from {origin} published to module "
                        "global via 'global' statement",
                    )

    @staticmethod
    def _assigned_value(node: ast.AST) -> Optional[ast.expr]:
        if isinstance(node, ast.Assign):
            return node.value
        if isinstance(node, ast.AnnAssign):
            return node.value
        return None

    @staticmethod
    def _targets_any(node: ast.AST, names: Set[str]) -> bool:
        targets: List[ast.expr]
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        else:
            return False
        return any(
            isinstance(target, ast.Name) and target.id in names
            for target in targets
        )


class _RegionFunction:
    """One function in the vectorized-reachable region."""

    __slots__ = ("context", "qualname", "node", "param_marks")

    def __init__(
        self,
        context: ModuleContext,
        qualname: str,
        node: FunctionNode,
    ) -> None:
        self.context = context
        self.qualname = qualname
        self.node = node
        #: Parameter names proven RNG-valued by call edges *within*
        #: the region; call sites outside the region never contribute
        #: (that is what makes the pass argument-sensitive).
        self.param_marks: Set[str] = set()

    @property
    def key(self) -> Tuple[str, str]:
        return (self.context.module, self.qualname)

    def param_names(self) -> List[str]:
        args = self.node.args
        return [
            arg.arg
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        ]


@register
class VectorizedRngRule(ProjectRule):
    """DET203: RNG consumption reachable from the vectorized path."""

    id = "DET203"
    name = "vectorized-rng"
    description = (
        "RNG use reachable from the soa vectorized entrypoints; only "
        "the columnar fallback may consume policy RNG (it replays the "
        "object kernel's draw order)"
    )
    severity = Severity.ERROR
    domains = None

    def __init__(self) -> None:
        #: id(Call) -> resolved (module, qualname) target, rebuilt per
        #: run — AST node ids are only unique while the model lives.
        self._resolved: Dict[int, Optional[Tuple[str, str]]] = {}
        self._returning: Set[Tuple[str, str]] = set()

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        self._resolved = {}
        self._returning = set()
        region = self._build_region(project)
        if not region:
            return
        self._fixpoint(project, region)
        for key in sorted(region):
            yield from self._collect(project, region, region[key])

    # -- region construction ------------------------------------------

    def _build_region(
        self, project: ProjectModel
    ) -> Dict[Tuple[str, str], _RegionFunction]:
        region: Dict[Tuple[str, str], _RegionFunction] = {}
        worklist: List[_RegionFunction] = []
        for spec in VECTORIZED_ENTRYPOINTS:
            for context in project.modules_matching(spec.module_suffix):
                node = project.function(context.module, spec.qualname)
                if node is None:
                    continue
                entry = _RegionFunction(context, spec.qualname, node)
                if entry.key not in region:
                    region[entry.key] = entry
                    worklist.append(entry)
        while worklist:
            current = worklist.pop()
            for call in ast.walk(current.node):
                if not isinstance(call, ast.Call):
                    continue
                resolved = resolve_call(
                    project, current.context, current.qualname, call
                )
                if resolved is None or resolved in region:
                    continue
                module, qualname = resolved
                node = project.function(module, qualname)
                if node is None:
                    continue
                callee = _RegionFunction(
                    project.by_module[module], qualname, node
                )
                region[callee.key] = callee
                worklist.append(callee)
        return region

    # -- dataflow ------------------------------------------------------

    def _fixpoint(
        self,
        project: ProjectModel,
        region: Dict[Tuple[str, str], _RegionFunction],
    ) -> None:
        """Propagate RNG marks along region call edges to a fixpoint."""
        returning: Set[Tuple[str, str]] = set()
        for _ in range(len(region) + 2):
            changed = False
            for key in sorted(region):
                func = region[key]
                marked = self._local_marks(func, region, returning)
                if self._returns_rng(func, marked, region, returning):
                    if key not in returning:
                        returning.add(key)
                        changed = True
                changed |= self._propagate_args(
                    project, func, marked, region, returning
                )
            if not changed:
                break
        self._returning = returning

    def _local_marks(
        self,
        func: _RegionFunction,
        region: Dict[Tuple[str, str], _RegionFunction],
        returning: Set[Tuple[str, str]],
    ) -> Set[str]:
        """Names bound to RNG values inside one function."""
        marked: Set[str] = set(func.param_marks)
        for _ in range(32):
            grew = False
            for node in ast.walk(func.node):
                value = None
                targets: List[ast.expr] = []
                if isinstance(node, ast.Assign):
                    value, targets = node.value, list(node.targets)
                elif isinstance(node, ast.AnnAssign) and node.value:
                    value, targets = node.value, [node.target]
                if value is None:
                    continue
                if not self._is_rng_expr(
                    value, marked, func, region, returning
                ):
                    continue
                for target in targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id not in marked
                    ):
                        marked.add(target.id)
                        grew = True
            if not grew:
                break
        return marked

    def _is_rng_expr(
        self,
        expr: ast.expr,
        marked: Set[str],
        func: _RegionFunction,
        region: Dict[Tuple[str, str], _RegionFunction],
        returning: Set[Tuple[str, str]],
    ) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in marked
        if isinstance(expr, ast.Attribute):
            return expr.attr in _RNG_ATTRS
        if isinstance(expr, ast.Call):
            if (
                _rng_source_origin(func.context.imports, expr)
                is not None
            ):
                return True
            resolved = self._resolved.get(id(expr))
            return resolved is not None and resolved in returning
        return False

    def _returns_rng(
        self,
        func: _RegionFunction,
        marked: Set[str],
        region: Dict[Tuple[str, str], _RegionFunction],
        returning: Set[Tuple[str, str]],
    ) -> bool:
        for node in ast.walk(func.node):
            if isinstance(node, ast.Return) and node.value is not None:
                if self._is_rng_expr(
                    node.value, marked, func, region, returning
                ):
                    return True
        return False

    def _propagate_args(
        self,
        project: ProjectModel,
        func: _RegionFunction,
        marked: Set[str],
        region: Dict[Tuple[str, str], _RegionFunction],
        returning: Set[Tuple[str, str]],
    ) -> bool:
        """Push RNG-valued arguments into callee parameter marks."""
        changed = False
        for call in ast.walk(func.node):
            if not isinstance(call, ast.Call):
                continue
            resolved = resolve_call(
                project, func.context, func.qualname, call
            )
            self._resolved[id(call)] = resolved
            if resolved is None or resolved not in region:
                continue
            callee = region[resolved]
            names = callee.param_names()
            offset = 1 if self._is_bound_call(call, callee) else 0
            for index, arg in enumerate(call.args):
                if not self._is_rng_expr(
                    arg, marked, func, region, returning
                ):
                    continue
                slot = index + offset
                if slot < len(names) and names[slot] not in (
                    callee.param_marks
                ):
                    callee.param_marks.add(names[slot])
                    changed = True
            for keyword in call.keywords:
                if keyword.arg is None:
                    continue
                if not self._is_rng_expr(
                    keyword.value, marked, func, region, returning
                ):
                    continue
                if (
                    keyword.arg in names
                    and keyword.arg not in callee.param_marks
                ):
                    callee.param_marks.add(keyword.arg)
                    changed = True
        return changed

    @staticmethod
    def _is_bound_call(
        call: ast.Call, callee: _RegionFunction
    ) -> bool:
        """``self.method(...)`` skips the receiver's ``self`` slot."""
        return (
            isinstance(call.func, ast.Attribute)
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id == "self"
            and "." in callee.qualname
        )

    # -- finding collection -------------------------------------------

    def _collect(
        self,
        project: ProjectModel,
        region: Dict[Tuple[str, str], _RegionFunction],
        func: _RegionFunction,
    ) -> Iterator[Finding]:
        returning = self._returning
        marked = self._local_marks(func, region, returning)
        for call in ast.walk(func.node):
            if not isinstance(call, ast.Call):
                continue
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in _STREAM_METHODS
                and self._is_rng_expr(
                    call.func.value, marked, func, region, returning
                )
            ):
                yield self.finding(
                    func.context,
                    call,
                    f"'.{call.func.attr}()' draw on the vectorized "
                    f"path (in {func.qualname}); only the columnar "
                    "fallback may consume policy RNG",
                )
                continue
            resolved = self._resolved.get(id(call))
            if resolved is not None and resolved in region:
                continue  # propagation handled the edge
            for arg in (*call.args, *(k.value for k in call.keywords)):
                if self._is_rng_expr(
                    arg, marked, func, region, returning
                ):
                    yield self.finding(
                        func.context,
                        call,
                        f"RNG value escapes the vectorized path (in "
                        f"{func.qualname}) into a call the linter "
                        "cannot resolve; pass None on this path",
                    )
                    break
