"""Kernel-twin phase contract rules (KER3xx).

The declared contract lives in :mod:`repro.lint.kernelspec`; this
module extracts each twin's *observed* phase sequence from its AST and
checks the two against each other:

* ``KER301`` — phases out of order (a rank computed after its arc
  assignment can't have decided it);
* ``KER302`` — a required phase missing entirely;
* ``KER303`` — a declared twin that no longer resolves (the loop was
  renamed or deleted and the contract declaration went stale).

Extraction is by *marker*, not by naming convention: a phase's marker
is the syntactic shape the twins actually share (``self._admit(...)``
for injection, a ``decide(...)`` call or stable sort for ranking,
``pending[...] = ...`` / ``resolve_node(...)`` for arc assignment, a
``hops`` increment for movement, a ``delivered_at`` store for
delivery).  The *last* occurrence of each marker is what's ordered —
loops interleave bookkeeping, and the final occurrence is the one that
commits the phase.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding, Severity
from repro.lint.kernelspec import (
    KERNEL_TWINS,
    OPTIONAL_PHASES,
    PHASE_ORDER,
    TwinSpec,
)
from repro.lint.project import FunctionNode, ProjectModel
from repro.lint.rules import ProjectRule, register

__all__ = ["CONTRACT_RULES", "extract_phases"]

#: Rule ids this module registers, in registration order.
CONTRACT_RULES = ("KER301", "KER302", "KER303")

_INJECT_CALLS = frozenset({"_admit", "_admit_batch", "admit_batch"})
_FAULT_CALLS = frozenset({"_apply_faults"})
_RANK_SORTS = frozenset({"sort", "argsort", "lexsort"})
_ARC_CALLS = frozenset({"resolve_node", "build_infos"})
#: Serves movement *and* delivery: the instrumented step delegates
#: both to one helper, which is a legal tie in the ordering check.
_MOVE_DELIVER_CALLS = frozenset({"_move_instrumented"})


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _is_store_into(target: ast.expr, name: str) -> bool:
    """``name[...] = ...`` subscript-store detection."""
    return (
        isinstance(target, ast.Subscript)
        and isinstance(target.value, ast.Name)
        and target.value.id == name
    )


def _is_hops_target(target: ast.expr) -> bool:
    if isinstance(target, ast.Attribute):
        return target.attr == "hops"
    if isinstance(target, ast.Name):
        return target.id == "hops"
    return _is_store_into(target, "hops")


def _is_hops_increment_assign(node: ast.Assign) -> bool:
    """``hops = hops + 1`` (the vectorized twin's whole-column form)."""
    if len(node.targets) != 1:
        return False
    target = node.targets[0]
    if not (isinstance(target, ast.Name) and target.id == "hops"):
        return False
    value = node.value
    return (
        isinstance(value, ast.BinOp)
        and isinstance(value.op, ast.Add)
        and any(
            isinstance(side, ast.Name) and side.id == "hops"
            for side in (value.left, value.right)
        )
    )


def _phases_of_node(node: ast.AST) -> Iterator[str]:
    """Phase markers one AST node carries (usually zero or one)."""
    if isinstance(node, ast.Call):
        name = _call_name(node)
        if name is None:
            return
        if name in _INJECT_CALLS:
            yield "inject"
        elif name in _FAULT_CALLS:
            yield "faults"
        elif name == "decide" or name in _RANK_SORTS:
            yield "rank"
        elif name in _ARC_CALLS:
            yield "arc_assign"
        elif name in _MOVE_DELIVER_CALLS:
            yield "move"
            yield "deliver"
    elif isinstance(node, ast.AugAssign):
        if isinstance(node.op, ast.Add) and _is_hops_target(node.target):
            yield "move"
    elif isinstance(node, ast.Assign):
        if _is_hops_increment_assign(node):
            yield "move"
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and target.attr == "delivered_at"
            ) or _is_store_into(target, "delivered_at"):
                yield "deliver"
                break
        else:
            if any(
                _is_store_into(target, "pending")
                for target in node.targets
            ):
                yield "arc_assign"


def extract_phases(
    node: FunctionNode,
) -> Dict[str, Tuple[int, ast.AST]]:
    """Observed phases of one twin: phase → (last line, marker node)."""
    found: Dict[str, Tuple[int, ast.AST]] = {}
    for sub in ast.walk(node):
        line = getattr(sub, "lineno", None)
        if line is None:
            continue
        for phase in _phases_of_node(sub):
            previous = found.get(phase)
            if previous is None or line >= previous[0]:
                found[phase] = (line, sub)
    return found


def _resolved_twins(
    project: ProjectModel,
) -> Iterator[Tuple[ModuleContext, TwinSpec, FunctionNode]]:
    """Every declared twin that resolves in the linted project."""
    for spec in KERNEL_TWINS:
        for context in project.modules_matching(spec.module_suffix):
            node = project.function(context.module, spec.qualname)
            if node is not None:
                yield context, spec, node


@register
class PhaseOrderRule(ProjectRule):
    """KER301: twin executes contract phases out of order."""

    id = "KER301"
    name = "phase-order"
    description = (
        "a kernel loop twin runs contract phases out of the declared "
        "faults->inject->rank->arc-assign->move->deliver order"
    )
    severity = Severity.ERROR
    domains = None

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        for context, spec, node in _resolved_twins(project):
            found = extract_phases(node)
            previous: Optional[Tuple[str, int, ast.AST]] = None
            for phase in PHASE_ORDER:
                if phase not in found:
                    continue
                line, marker = found[phase]
                if previous is not None and line < previous[1]:
                    yield self.finding(
                        context,
                        previous[2],
                        f"phase '{previous[0]}' (line {previous[1]}) "
                        f"runs after '{phase}' (line {line}) in "
                        f"{spec.qualname}; the contract orders "
                        f"{' -> '.join(PHASE_ORDER)}",
                    )
                    break
                previous = (phase, line, marker)


@register
class PhaseMissingRule(ProjectRule):
    """KER302: twin lacks a required contract phase."""

    id = "KER302"
    name = "phase-missing"
    description = (
        "a kernel loop twin is missing a required phase of the "
        "declared contract"
    )
    severity = Severity.ERROR
    domains = None

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        for context, spec, node in _resolved_twins(project):
            found = extract_phases(node)
            missing = [
                phase
                for phase in PHASE_ORDER
                if phase not in found and phase not in OPTIONAL_PHASES
            ]
            if missing:
                yield self.finding(
                    context,
                    node,
                    f"{spec.qualname} has no "
                    f"{', '.join(missing)} phase marker(s); every "
                    "twin must run the full contract",
                )


@register
class TwinResolutionRule(ProjectRule):
    """KER303: a declared twin no longer resolves to a function."""

    id = "KER303"
    name = "twin-unresolved"
    description = (
        "a kernel twin declared in the phase contract does not "
        "resolve; the declaration in repro.lint.kernelspec is stale "
        "or the loop was renamed without updating it"
    )
    severity = Severity.ERROR
    domains = None

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        for spec in KERNEL_TWINS:
            for context in project.modules_matching(spec.module_suffix):
                if project.function(context.module, spec.qualname):
                    continue
                anchor = self._anchor(project, context, spec)
                yield self.finding(
                    context,
                    anchor,
                    f"declared kernel twin {spec.qualname} not found "
                    f"in {context.module}; update the loop or the "
                    "contract declaration together",
                )

    @staticmethod
    def _anchor(
        project: ProjectModel,
        context: ModuleContext,
        spec: TwinSpec,
    ) -> ast.AST:
        """The owning class when it exists, else the module node."""
        if "." in spec.qualname:
            cls = spec.qualname.rsplit(".", 1)[0]
            table = project.symbols[context.module]
            node = table.classes.get(cls)
            if node is not None:
                return node
        return context.tree
