"""The ``repro lint`` subcommand: argument handling and rendering.

Kept separate from :mod:`repro.cli` so the linter is usable as a
library (``repro.lint.lint_paths``) and testable without a process
boundary; the top-level CLI delegates here.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import IO, List, Optional

from repro.lint.findings import Severity
from repro.lint.rules import all_rules
from repro.lint.runner import LintReport, lint_paths


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint options on an (sub)parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only these rule ids (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULE",
        help="skip these rule ids (repeatable)",
    )
    parser.add_argument(
        "--fail-on",
        choices=tuple(str(s) for s in Severity),
        default=str(Severity.WARNING),
        help="lowest severity that makes the exit code non-zero "
        "(default: warning — any finding fails)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe the registered rules and exit",
    )


def render_text(report: LintReport, stream: IO[str]) -> None:
    for error in report.parse_errors:
        print(f"parse error: {error}", file=stream)
    for finding in report.findings:
        print(finding.format_text(), file=stream)
    noun = "file" if report.files_checked == 1 else "files"
    if report.findings or report.parse_errors:
        print(
            f"{len(report.findings)} finding(s), "
            f"{len(report.parse_errors)} parse error(s) in "
            f"{report.files_checked} {noun}",
            file=stream,
        )
    else:
        print(f"clean: {report.files_checked} {noun} checked", file=stream)


def render_json(report: LintReport, stream: IO[str]) -> None:
    payload = {
        "files_checked": report.files_checked,
        "parse_errors": list(report.parse_errors),
        "findings": [finding.to_json() for finding in report.findings],
    }
    json.dump(payload, stream, indent=2)
    stream.write("\n")


def run_lint(args: argparse.Namespace, stream: IO[str]) -> int:
    """Execute the lint subcommand; returns the process exit code."""
    if args.list_rules:
        for rule in all_rules():
            print(rule.describe(), file=stream)
        return 0
    try:
        report = lint_paths(args.paths, args.select, args.ignore)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=stream)
        return 2
    if args.format == "json":
        render_json(report, stream)
    else:
        render_text(report, stream)
    return report.exit_code(Severity.parse(args.fail_on))


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Determinism linter for the routing engine.",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv), sys.stdout)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
