"""The ``repro lint`` subcommand: argument handling and rendering.

Kept separate from :mod:`repro.cli` so the linter is usable as a
library (``repro.lint.lint_paths``) and testable without a process
boundary; the top-level CLI delegates here.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import IO, List, Optional

from repro.lint.baseline import (
    Baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.findings import Severity
from repro.lint.rules import all_rules
from repro.lint.runner import LintReport, lint_paths
from repro.lint.sarif import sarif_payload

#: Default committed baseline location (repo-root relative).
DEFAULT_BASELINE = "lint-baseline.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint options on an (sub)parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        help="write the report to PATH instead of stdout "
        "(summary still prints to stdout)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only these rule ids (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULE",
        help="skip these rule ids (repeatable)",
    )
    parser.add_argument(
        "--fail-on",
        choices=tuple(str(s) for s in Severity),
        default=str(Severity.WARNING),
        help="lowest severity that makes the exit code non-zero "
        "(default: warning — any finding fails)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="suppress findings recorded in this baseline file; "
        "only new findings affect the exit code",
    )
    parser.add_argument(
        "--strict-new",
        action="store_true",
        help=f"CI mode: apply the baseline ({DEFAULT_BASELINE} unless "
        "--baseline is given) and fail on any finding it does not "
        "record",
    )
    parser.add_argument(
        "--write-baseline",
        nargs="?",
        const=DEFAULT_BASELINE,
        metavar="PATH",
        help="record the current findings as the new baseline "
        f"(default path: {DEFAULT_BASELINE}) and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe the registered rules and exit",
    )


def render_text(report: LintReport, stream: IO[str]) -> None:
    for error in report.parse_errors:
        print(f"parse error: {error}", file=stream)
    for finding in report.findings:
        print(finding.format_text(), file=stream)
    noun = "file" if report.files_checked == 1 else "files"
    extras = []
    if report.baselined:
        extras.append(f"{len(report.baselined)} baselined")
    if report.stale_baseline:
        extras.append(
            f"{len(report.stale_baseline)} stale baseline entr"
            + ("y" if len(report.stale_baseline) == 1 else "ies")
            + " (re-run with --write-baseline)"
        )
    suffix = f" [{'; '.join(extras)}]" if extras else ""
    if report.findings or report.parse_errors:
        print(
            f"{len(report.findings)} finding(s), "
            f"{len(report.parse_errors)} parse error(s) in "
            f"{report.files_checked} {noun}{suffix}",
            file=stream,
        )
    else:
        print(
            f"clean: {report.files_checked} {noun} checked{suffix}",
            file=stream,
        )


def render_json(report: LintReport, stream: IO[str]) -> None:
    payload = {
        "files_checked": report.files_checked,
        "parse_errors": list(report.parse_errors),
        "findings": [finding.to_json() for finding in report.findings],
        "baselined": [
            finding.to_json() for finding in report.baselined
        ],
        "stale_baseline": list(report.stale_baseline),
    }
    json.dump(payload, stream, indent=2)
    stream.write("\n")


def render_sarif(report: LintReport, stream: IO[str]) -> None:
    json.dump(sarif_payload(report), stream, indent=2)
    stream.write("\n")


def _load_baseline_arg(
    args: argparse.Namespace, stream: IO[str]
) -> Optional[Baseline]:
    """The baseline to apply, honoring --strict-new's default path."""
    path = args.baseline
    if path is None and args.strict_new:
        path = DEFAULT_BASELINE
    if path is None:
        return None
    try:
        return load_baseline(path)
    except FileNotFoundError:
        if args.baseline is None:
            # --strict-new with no committed baseline yet: everything
            # is a new finding, which is exactly strict.
            return Baseline()
        print(f"error: baseline {path!r} not found", file=stream)
        return None
    except ValueError as error:
        print(f"error: {error}", file=stream)
        return None


def run_lint(args: argparse.Namespace, stream: IO[str]) -> int:
    """Execute the lint subcommand; returns the process exit code."""
    if args.list_rules:
        for rule in all_rules():
            print(rule.describe(), file=stream)
        return 0
    wants_baseline = bool(args.baseline) or args.strict_new
    baseline: Optional[Baseline] = None
    if wants_baseline and args.write_baseline is None:
        baseline = _load_baseline_arg(args, stream)
        if baseline is None:
            return 2
    try:
        report = lint_paths(
            args.paths, args.select, args.ignore, baseline=baseline
        )
    except KeyError as error:
        print(f"error: {error.args[0]}", file=stream)
        return 2
    if args.write_baseline is not None:
        write_baseline(
            args.write_baseline, report.findings, report.fingerprints
        )
        print(
            f"baseline: {len(report.findings)} finding(s) recorded "
            f"in {args.write_baseline}",
            file=stream,
        )
        return 0
    renderers = {
        "json": render_json,
        "sarif": render_sarif,
        "text": render_text,
    }
    render = renderers[args.format]
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            render(report, handle)
        render_text(report, stream)
    else:
        render(report, stream)
    return report.exit_code(Severity.parse(args.fail_on))


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Determinism linter for the routing engine.",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv), sys.stdout)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
