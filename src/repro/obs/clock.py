"""The sanctioned wall-clock home.

Determinism rule DET106 flags wall-clock reads in engine code: wall
time must never influence routing decisions, and stray ``time.time()``
calls in hot loops are a classic source of unreproducible "it was
slower that day" artifacts.  Profiling still needs a clock, so —
exactly as :mod:`repro.core.rng` is the one sanctioned home for RNG
construction under DET101 — this module is the one place in the
policed domains allowed to touch :mod:`time`.  Everything else in
``repro.obs`` goes through these helpers, keeping the rest of the
observability layer lint-clean without per-line ``noqa`` scatter.
"""

from __future__ import annotations

import datetime
import time

__all__ = ["perf_ns", "sleep_for", "utc_now_iso"]


def perf_ns() -> int:
    """Monotonic high-resolution timestamp for phase timing."""
    return time.perf_counter_ns()


def sleep_for(seconds: float) -> None:
    """Block the calling thread (retry backoff in the campaign pool).

    Sleeping never belongs in engine code — simulation time is
    ``engine.time`` — but the experiment orchestrator genuinely waits
    between pool retry attempts, and that wait must flow through the
    sanctioned clock module exactly like every other wall-time touch.
    """
    time.sleep(seconds)


def utc_now_iso(timespec: str = "seconds") -> str:
    """Current UTC wall time as an ISO-8601 string (manifests and the
    campaign event log; the latter passes ``"milliseconds"`` so live
    progress can compute sub-second throughput)."""
    return datetime.datetime.now(datetime.timezone.utc).isoformat(
        timespec=timespec
    )
