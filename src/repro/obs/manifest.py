"""Structured run manifests and the JSONL run logger.

Every serious evaluation in the deflection-routing literature reports
*what exactly ran*: topology, demand, policy, seed, code version,
machine.  :class:`RunManifest` packages that self-description for one
run — engine configuration, seed description, git sha, interpreter and
machine, the run's :class:`~repro.obs.telemetry.RunTelemetry`, and
(when profiled) per-phase timings — and serializes it as one JSON line
so sweeps append cheaply and analyses stream them back with
:func:`read_manifests`.

:class:`JsonlRunLogger` is the observer face of this module: attach it
to any of the four engines and a manifest is appended at run end.  It
declares ``needs_steps = False``, so engines keep their lean kernel
loop — logging a manifest never de-optimizes the run it describes.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.core.events import RunObserver
from repro.core.metrics import RunResult
from repro.obs.clock import utc_now_iso
from repro.obs.profiler import PhaseProfiler
from repro.obs.telemetry import RunTelemetry

__all__ = [
    "SCHEMA_VERSION",
    "JsonlRunLogger",
    "RunManifest",
    "append_jsonl",
    "append_manifest",
    "git_sha",
    "manifest_for_engine",
    "manifest_from_run_result",
    "read_manifests",
    "validate_manifest",
]

#: Bump when manifest fields change incompatibly.
SCHEMA_VERSION = 1

#: Engine class name -> the CLI's engine vocabulary.
_ENGINE_KINDS = {
    "HotPotatoEngine": "hot-potato",
    "BufferedEngine": "buffered",
    "DynamicEngine": "dynamic",
    "BufferedDynamicEngine": "buffered-dynamic",
}

#: Required manifest keys and the JSON types they must parse back as.
_REQUIRED_FIELDS: Dict[str, tuple] = {
    "schema_version": (int,),
    "created_at": (str,),
    "command": (str,),
    "engine": (str,),
    "mesh": (dict,),
    "workload": (str,),
    "policy": (str,),
    "seed": (int, str, type(None)),
    "git_sha": (str,),
    "python": (str,),
    "machine": (str,),
    "result": (dict,),
    "telemetry": (dict, type(None)),
    "phases": (dict, type(None)),
}

#: Optional manifest keys (newer writers only) and their JSON types.
#: ``case`` is the sweep-checkpoint identity payload (see
#: :mod:`repro.analysis.checkpoint`); readers must tolerate its absence.
_OPTIONAL_FIELDS: Dict[str, tuple] = {
    "case": (dict, type(None)),
}


def git_sha(cwd: Optional[str] = None) -> str:
    """Short commit hash of the running tree (``-dirty`` suffix when the
    working copy differs from HEAD); ``"unknown"`` without git."""
    where = cwd or os.path.dirname(os.path.abspath(__file__))
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=where,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    sha = out.stdout.strip()
    try:
        dirty = subprocess.run(
            ["git", "diff", "--quiet", "HEAD"],
            cwd=where,
            capture_output=True,
            timeout=10,
        ).returncode
    except (OSError, subprocess.TimeoutExpired):
        return sha
    return f"{sha}-dirty" if dirty else sha


@dataclass
class RunManifest:
    """Self-description of one run, ready for JSONL serialization."""

    command: str
    engine: str
    mesh: Dict[str, Any]
    workload: str
    policy: str
    seed: Optional[Union[int, str]]
    result: Dict[str, Any]
    telemetry: Optional[Dict[str, int]] = None
    phases: Optional[Dict[str, int]] = None
    #: Sweep-checkpoint identity: which CaseSpec produced this run.
    case: Optional[Dict[str, Any]] = None
    schema_version: int = SCHEMA_VERSION
    created_at: str = field(default_factory=utc_now_iso)
    git_sha: str = field(default_factory=git_sha)
    python: str = field(default_factory=platform.python_version)
    machine: str = field(default_factory=platform.machine)

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "schema_version": self.schema_version,
            "created_at": self.created_at,
            "command": self.command,
            "engine": self.engine,
            "mesh": self.mesh,
            "workload": self.workload,
            "policy": self.policy,
            "seed": self.seed,
            "git_sha": self.git_sha,
            "python": self.python,
            "machine": self.machine,
            "result": self.result,
            "telemetry": self.telemetry,
            "phases": self.phases,
        }
        if self.case is not None:
            payload["case"] = self.case
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunManifest":
        """Rebuild a manifest from a parsed JSONL line (validated)."""
        problems = validate_manifest(data)
        if problems:
            raise ValueError(
                "invalid run manifest: " + "; ".join(problems)
            )
        return cls(
            command=data["command"],
            engine=data["engine"],
            mesh=dict(data["mesh"]),
            workload=data["workload"],
            policy=data["policy"],
            seed=data["seed"],
            result=dict(data["result"]),
            telemetry=(
                dict(data["telemetry"])
                if data["telemetry"] is not None
                else None
            ),
            phases=(
                dict(data["phases"]) if data["phases"] is not None else None
            ),
            case=(
                dict(data["case"])
                if data.get("case") is not None
                else None
            ),
            schema_version=data["schema_version"],
            created_at=data["created_at"],
            git_sha=data["git_sha"],
            python=data["python"],
            machine=data["machine"],
        )

    def run_telemetry(self) -> Optional[RunTelemetry]:
        """The telemetry payload as a :class:`RunTelemetry` (or None)."""
        if self.telemetry is None:
            return None
        return RunTelemetry.from_dict(self.telemetry)

    def phase_profile(self) -> Optional[PhaseProfiler]:
        """The phase payload as a :class:`PhaseProfiler` (or None)."""
        if self.phases is None:
            return None
        return PhaseProfiler.from_dict(self.phases)


def validate_manifest(data: Mapping[str, Any]) -> List[str]:
    """Schema-check one parsed manifest; returns problem strings
    (empty when valid).  Used by tests and the CI smoke step."""
    problems: List[str] = []
    for name, types in _REQUIRED_FIELDS.items():
        if name not in data:
            problems.append(f"missing field {name!r}")
            continue
        value = data[name]
        if isinstance(value, bool) or not isinstance(value, types):
            expected = "/".join(t.__name__ for t in types)
            problems.append(
                f"field {name!r} must be {expected}, "
                f"got {type(value).__name__}"
            )
    if not problems and data["schema_version"] != SCHEMA_VERSION:
        problems.append(
            f"schema_version {data['schema_version']} != {SCHEMA_VERSION}"
        )
    for name, types in _OPTIONAL_FIELDS.items():
        if name not in data:
            continue
        value = data[name]
        if isinstance(value, bool) or not isinstance(value, types):
            expected = "/".join(t.__name__ for t in types)
            problems.append(
                f"field {name!r} must be {expected}, "
                f"got {type(value).__name__}"
            )
    unknown = set(data) - set(_REQUIRED_FIELDS) - set(_OPTIONAL_FIELDS)
    if unknown:
        problems.append(f"unknown fields {sorted(unknown)}")
    return problems


def _mesh_dict(mesh: Any) -> Dict[str, Any]:
    return {
        "kind": mesh.kind,
        "dimension": mesh.dimension,
        "side": mesh.side,
        "num_nodes": mesh.num_nodes,
    }


def _result_dict(result: Any) -> Dict[str, Any]:
    """A compact outcome summary for either result flavor."""
    abort = getattr(result, "abort", None)
    if isinstance(result, RunResult):
        payload = {
            "kind": "batch",
            "completed": result.completed,
            "total_steps": result.total_steps,
            "k": result.k,
            "delivered": result.delivered,
            "total_deflections": result.total_deflections,
        }
    else:
        # DynamicStats, duck-typed so this module never imports
        # repro.dynamic.
        payload = {
            "kind": "dynamic",
            "horizon": result.horizon,
            "delivered": result.delivered_count,
            "mean_latency": result.mean_latency,
            "throughput": result.throughput,
            "final_in_flight": result.final_in_flight,
            "final_backlog": result.final_backlog,
        }
    if abort is not None:
        payload["abort"] = abort.to_dict()
    return payload


def _workload_description(engine: Any) -> str:
    problem = getattr(engine, "problem", None)
    if problem is not None:
        return str(problem.describe())
    traffic = getattr(engine, "traffic", None)
    if traffic is None:
        return ""
    parts = [type(traffic).__name__]
    rate = getattr(traffic, "rate", None)
    if rate is not None:
        parts.append(f"rate={rate}")
    warmup = getattr(engine, "warmup", None)
    if warmup:
        parts.append(f"warmup={warmup}")
    return " ".join(parts)


def manifest_for_engine(
    engine: Any,
    result: Any,
    *,
    command: str = "",
    workload: str = "",
    profiler: Optional[PhaseProfiler] = None,
) -> RunManifest:
    """Build a manifest by introspecting a finished engine.

    Works on all four engines: they share ``mesh``/``policy`` and the
    seeded ``_seed`` description, and carry their
    :class:`~repro.obs.telemetry.RunTelemetry` as ``telemetry``.
    """
    telemetry = getattr(engine, "telemetry", None)
    return RunManifest(
        command=command,
        engine=_ENGINE_KINDS.get(
            type(engine).__name__, type(engine).__name__
        ),
        mesh=_mesh_dict(engine.mesh),
        workload=workload or _workload_description(engine),
        policy=engine.policy.name,
        seed=getattr(engine, "_seed", None),
        result=_result_dict(result),
        telemetry=telemetry.to_dict() if telemetry is not None else None,
        phases=profiler.to_dict() if profiler is not None else None,
    )


def manifest_from_run_result(
    result: RunResult,
    *,
    command: str = "",
    engine: str = "hot-potato",
    workload: str = "",
    profiler: Optional[PhaseProfiler] = None,
    case: Optional[Dict[str, Any]] = None,
) -> RunManifest:
    """Build a manifest from a bare :class:`RunResult` (no engine in
    hand — e.g. sweep points shipped back from worker processes).

    ``case`` attaches the sweep-checkpoint identity payload so crashed
    sweeps can be resumed from the manifest file alone.
    """
    return RunManifest(
        case=case,
        command=command,
        engine=engine,
        mesh={
            "kind": result.mesh_kind,
            "dimension": result.dimension,
            "side": result.side,
            "num_nodes": None,
        },
        workload=workload or result.problem_name,
        policy=result.policy_name,
        seed=result.seed,
        result=_result_dict(result),
        telemetry=(
            result.telemetry.to_dict()
            if result.telemetry is not None
            else None
        ),
        phases=profiler.to_dict() if profiler is not None else None,
    )


# Syscall seams for the durability layer.  Production code never
# rebinds these; the chaos harness (repro.chaos) patches them to
# inject fsync failures, ENOSPC short writes, and torn tails at exact
# byte offsets — the failure modes the recovery paths claim to
# survive.  Keeping the indirection at module level (instead of
# monkey-patching ``os``) scopes injection to this file's appends.
_os_write = os.write
_os_fsync = os.fsync


def append_jsonl(
    payloads: Sequence[Mapping[str, Any]], path: str, *, fsync: bool = False
) -> None:
    """Append JSON lines in one write (parents created as needed).

    The whole batch is encoded into a single buffer and pushed through
    one ``O_APPEND`` file descriptor.  ``O_APPEND`` makes each write
    land atomically at the current end of file, so concurrent writers
    (campaign workers appending to a shared event log) interleave whole
    buffers, never bytes — a torn *line* can only come from a crash
    mid-write, not from interleaving.

    With ``fsync=True`` the buffer is fsynced before the descriptor
    closes, so a crash immediately after the call can lose at most a
    torn trailing line, never an acknowledged one — the durability
    contract the sweep checkpoint and the campaign event log both rely
    on.  Batching several payloads into one call pays the fsync once
    for the whole batch.
    """
    if not payloads:
        return
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    # ensure_ascii=False keeps non-ASCII payload text (workload
    # labels, fault descriptions) as real UTF-8 instead of \uXXXX
    # escapes — which is why every reader of these files must (and
    # does) tolerate a tail torn mid-way through a multi-byte
    # character.
    buffer = b"".join(
        json.dumps(
            payload, separators=(",", ":"), ensure_ascii=False
        ).encode("utf-8")
        + b"\n"
        for payload in payloads
    )
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        view = memoryview(buffer)
        while view:
            written = _os_write(fd, view)
            view = view[written:]
        if fsync:
            _os_fsync(fd)
    finally:
        os.close(fd)


def append_manifest(
    manifest: RunManifest, path: str, *, fsync: bool = False
) -> None:
    """Append one manifest as a JSON line (see :func:`append_jsonl`)."""
    append_jsonl([manifest.to_dict()], path, fsync=fsync)


def read_manifests(
    path: str, *, errors: Optional[List[str]] = None
) -> List[RunManifest]:
    """Parse a JSONL manifest file back (blank lines skipped).

    By default a malformed line raises, preserving strict behavior for
    curated files.  Passing ``errors`` switches to recovery mode: bad
    lines — torn tails from a crashed writer, invalid payloads — are
    skipped and one description per casualty is appended to ``errors``,
    so checkpoint restores survive a dirty shutdown while still
    reporting what was lost.
    """
    manifests: List[RunManifest] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if errors is None:
                manifests.append(RunManifest.from_dict(json.loads(line)))
                continue
            try:
                manifests.append(RunManifest.from_dict(json.loads(line)))
            except (ValueError, TypeError, KeyError) as problem:
                errors.append(f"{path}:{number}: {problem}")
    return manifests


class JsonlRunLogger(RunObserver):
    """Observer that appends a :class:`RunManifest` at run end.

    Step-free by design (``needs_steps = False``): attaching this
    logger never forces an engine off its lean kernel loop.  Works on
    all four engines — batch runs hand ``on_run_end`` a
    :class:`~repro.core.metrics.RunResult`, dynamic runs a
    :class:`~repro.dynamic.stats.DynamicStats`.
    """

    needs_steps = False

    def __init__(
        self,
        path: str,
        *,
        command: str = "",
        workload: str = "",
        profiler: Optional[PhaseProfiler] = None,
    ) -> None:
        self.path = path
        self.command = command
        self.workload = workload
        self.profiler = profiler
        self.written = 0
        self._engine: Optional[Any] = None

    def on_run_start(self, engine: Any) -> None:
        self._engine = engine

    def on_run_end(self, result: Any) -> None:
        if self._engine is not None:
            manifest = manifest_for_engine(
                self._engine,
                result,
                command=self.command,
                workload=self.workload,
                profiler=self.profiler,
            )
        elif isinstance(result, RunResult):
            manifest = manifest_from_run_result(
                result, command=self.command, profiler=self.profiler
            )
        else:
            raise RuntimeError(
                "JsonlRunLogger.on_run_end fired without on_run_start "
                "and without a RunResult; nothing to describe"
            )
        append_manifest(manifest, self.path)
        self.written += 1
