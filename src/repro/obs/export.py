"""Schema-versioned exporters: JSONL sinks and Prometheus text.

Three export surfaces, all deterministic renderings of in-memory
observability state (no clocks, no sampling — byte-identical output
for byte-identical input):

* :func:`write_series_jsonl` / :func:`read_series_jsonl` — a
  :class:`~repro.obs.series.StepSeries` as a header line plus one
  sample object per line (``SERIES_SCHEMA_VERSION`` stamped on the
  header, validated on read).
* :func:`write_trace_jsonl` / :func:`read_trace_jsonl` — a
  :class:`~repro.obs.tracing.PacketTrace` in the same shape under
  ``TRACE_SCHEMA_VERSION``.
* :func:`render_prometheus` — a
  :class:`~repro.obs.metrics.MetricRegistry` snapshot in the
  Prometheus text exposition format (``# HELP``/``# TYPE`` headers,
  cumulative ``_bucket{le="..."}`` histogram lines), so any scraper or
  ``promtool check metrics`` can consume campaign aggregates.

Like the rest of the low-level obs layer this module never imports
``repro.core``; it renders whatever payloads it is handed.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
)
from repro.obs.series import (
    SERIES_COLUMNS,
    SERIES_SCHEMA_VERSION,
    StepSeries,
)
from repro.obs.tracing import TRACE_SCHEMA_VERSION, PacketTrace, TraceEvent

__all__ = [
    "read_series_jsonl",
    "read_trace_jsonl",
    "render_prometheus",
    "write_series_jsonl",
    "write_trace_jsonl",
]


def _write_jsonl(
    path: Union[str, "os.PathLike[str]"],
    lines: List[Dict[str, Any]],
    fsync: bool,
) -> None:
    with open(path, "a", encoding="utf-8") as handle:
        for payload in lines:
            handle.write(
                json.dumps(payload, separators=(",", ":"), sort_keys=True)
            )
            handle.write("\n")
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())


# ----------------------------------------------------------------------
# Series
# ----------------------------------------------------------------------


def write_series_jsonl(
    series: StepSeries,
    path: Union[str, "os.PathLike[str]"],
    *,
    meta: Optional[Mapping[str, Any]] = None,
    fsync: bool = False,
) -> int:
    """Append a series to ``path``: one header line, one line per
    sample.  ``meta`` (run identification — policy, seed, case key) is
    embedded in the header under ``"meta"``.  Returns the number of
    sample lines written.
    """
    payload = series.to_dict()
    columns = payload.pop("columns")
    header: Dict[str, Any] = {"kind": "series-header", **payload}
    if meta is not None:
        header["meta"] = dict(meta)
    names = list(SERIES_COLUMNS)
    lines = [header]
    for row in zip(*(columns[name] for name in names)):
        sample: Dict[str, Any] = {"kind": "sample"}
        sample.update(zip(names, row))
        lines.append(sample)
    _write_jsonl(path, lines, fsync)
    return len(lines) - 1


def read_series_jsonl(
    path: Union[str, "os.PathLike[str]"],
) -> List[Tuple[Dict[str, Any], StepSeries]]:
    """Read every (header, series) pair appended to ``path``.

    Strict: unknown kinds, schema-version mismatches, samples before a
    header, and header/sample count disagreements all raise
    ``ValueError`` — an exported series is a proof artifact, not a log.
    """
    results: List[Tuple[Dict[str, Any], StepSeries]] = []
    header: Optional[Dict[str, Any]] = None
    series: Optional[StepSeries] = None

    def _finish() -> None:
        if header is None or series is None:
            return
        if len(series) != header["samples"]:
            raise ValueError(
                f"series header promised {header['samples']} samples, "
                f"found {len(series)}"
            )
        series.stride = header["stride"]
        series.dropped = header["dropped"]
        results.append((header, series))

    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            kind = data.get("kind")
            if kind == "series-header":
                _finish()
                version = data.get("schema_version")
                if version != SERIES_SCHEMA_VERSION:
                    raise ValueError(
                        f"{path}:{lineno}: unsupported series "
                        f"schema_version {version!r}"
                    )
                header = data
                series = StepSeries(
                    capacity=data["capacity"], mode=data["mode"]
                )
            elif kind == "sample":
                if series is None:
                    raise ValueError(
                        f"{path}:{lineno}: sample before series-header"
                    )
                for name, column in series.columns.items():
                    column.append(int(data[name]))
            else:
                raise ValueError(
                    f"{path}:{lineno}: unknown line kind {kind!r}"
                )
    _finish()
    return results


# ----------------------------------------------------------------------
# Traces
# ----------------------------------------------------------------------


def write_trace_jsonl(
    trace: PacketTrace,
    path: Union[str, "os.PathLike[str]"],
    *,
    meta: Optional[Mapping[str, Any]] = None,
    fsync: bool = False,
) -> int:
    """Append a trace to ``path``: header line plus one event per
    line.  Returns the number of event lines written."""
    header: Dict[str, Any] = {
        "kind": "trace-header",
        "schema_version": TRACE_SCHEMA_VERSION,
        "events": len(trace),
    }
    if meta is not None:
        header["meta"] = dict(meta)
    lines = [header]
    for event in trace.events:
        payload: Dict[str, Any] = {"kind": "event"}
        payload["event"] = event.to_dict()
        lines.append(payload)
    _write_jsonl(path, lines, fsync)
    return len(lines) - 1


def read_trace_jsonl(
    path: Union[str, "os.PathLike[str]"],
) -> List[Tuple[Dict[str, Any], PacketTrace]]:
    """Read every (header, trace) pair appended to ``path``."""
    results: List[Tuple[Dict[str, Any], PacketTrace]] = []
    header: Optional[Dict[str, Any]] = None
    trace: Optional[PacketTrace] = None

    def _finish() -> None:
        if header is None or trace is None:
            return
        if len(trace) != header["events"]:
            raise ValueError(
                f"trace header promised {header['events']} events, "
                f"found {len(trace)}"
            )
        results.append((header, trace))

    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            kind = data.get("kind")
            if kind == "trace-header":
                _finish()
                version = data.get("schema_version")
                if version != TRACE_SCHEMA_VERSION:
                    raise ValueError(
                        f"{path}:{lineno}: unsupported trace "
                        f"schema_version {version!r}"
                    )
                header = data
                trace = PacketTrace()
            elif kind == "event":
                if trace is None:
                    raise ValueError(
                        f"{path}:{lineno}: event before trace-header"
                    )
                trace.append(TraceEvent.from_dict(data["event"]))
            else:
                raise ValueError(
                    f"{path}:{lineno}: unknown line kind {kind!r}"
                )
    _finish()
    return results


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def render_prometheus(
    registry: Union[MetricRegistry, Mapping[str, Any]],
) -> str:
    """Render a registry (or snapshot) as Prometheus exposition text.

    Counters and gauges render as single samples; histograms render
    with *cumulative* ``_bucket{le="..."}`` samples (the registry
    stores per-bucket counts), a ``+Inf`` bucket, ``_sum`` and
    ``_count``.  Metrics appear in sorted-name order, so the output is
    deterministic.
    """
    if not isinstance(registry, MetricRegistry):
        registry = MetricRegistry.from_snapshot(registry)
    out: List[str] = []
    for metric in registry.metrics():
        if metric.help:
            out.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
        out.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            out.append(f"{metric.name} {metric.value}")
        elif isinstance(metric, Histogram):
            cumulative = 0
            for bound, count in zip(metric.buckets, metric.counts):
                cumulative += count
                out.append(
                    f'{metric.name}_bucket{{le="{bound}"}} {cumulative}'
                )
            out.append(
                f'{metric.name}_bucket{{le="+Inf"}} {metric.count}'
            )
            out.append(f"{metric.name}_sum {metric.sum}")
            out.append(f"{metric.name}_count {metric.count}")
    return "\n".join(out) + "\n" if out else ""
