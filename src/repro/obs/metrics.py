"""Deterministic metric registry: counters, gauges, histograms.

The registry is the observability layer's general-purpose instrument
store.  Three metric kinds, all plain-integer and bit-reproducible:

* :class:`Counter` — a monotone total (``inc``).
* :class:`Gauge` — a **high-water mark** (``set`` keeps the maximum).
  Last-write-wins gauges cannot be merged order-independently across
  workers, so the registry deliberately does not offer them.
* :class:`Histogram` — fixed upper-bound buckets declared at creation
  time (``observe``).  No adaptive bucketing, no sampling: two runs
  that observe the same values produce byte-identical snapshots.

Nothing here reads a clock or an RNG (lint rules OBS602/DET106 police
that), and the cross-registry :meth:`MetricRegistry.merge` is
commutative and associative — counters add, gauges take the max,
histogram buckets add elementwise — so campaign-level aggregation
cannot depend on worker completion order (pinned by the property tests
in ``tests/obs/test_merge_properties.py``).

Metrics must be created *through the registry* (``registry.counter``,
``registry.gauge``, ``registry.histogram``) so every instrument is
named, deduplicated, and snapshot-visible; lint rule OBS601 flags
direct ``Counter(...)`` construction outside this module.

Like :mod:`repro.obs.telemetry`, this module must stay import-light:
engine code attaches its recorders, so nothing here may import
``repro.core`` at runtime.  :class:`RunMetricsRecorder` is therefore
duck-typed against the :class:`~repro.core.events.RunObserver`
protocol rather than subclassing it.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional
from typing import Sequence, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.kernel import StepSummary

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "RunMetricsRecorder",
    "REGISTRY_SCHEMA_VERSION",
    "fold_telemetry",
]

#: Version stamp carried by every registry snapshot.
REGISTRY_SCHEMA_VERSION = 1

_NAME_ALPHABET_FIRST = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:"
)
_NAME_ALPHABET = _NAME_ALPHABET_FIRST | frozenset("0123456789")


def _check_name(name: str) -> str:
    """Enforce the Prometheus metric-name grammar at creation time."""
    if (
        not name
        or name[0] not in _NAME_ALPHABET_FIRST
        or any(ch not in _NAME_ALPHABET for ch in name)
    ):
        raise ValueError(
            f"invalid metric name {name!r}: must match "
            "[a-zA-Z_:][a-zA-Z0-9_:]*"
        )
    return name


def _check_amount(amount: int) -> int:
    if isinstance(amount, bool) or not isinstance(amount, int):
        raise TypeError(f"metric values must be plain ints, got {amount!r}")
    return amount


class Counter:
    """A monotonically increasing integer total."""

    __slots__ = ("name", "help", "value")

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (a non-negative int) to the total."""
        if _check_amount(amount) < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "help": self.help,
            "value": self.value,
        }


class Gauge:
    """A high-water mark: ``set`` keeps the maximum ever seen.

    The max fold is what makes cross-worker merges order-independent;
    a last-write-wins gauge would silently depend on completion order.
    """

    __slots__ = ("name", "help", "value")

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        self.value = 0

    def set(self, value: int) -> None:
        """Record ``value``; the gauge keeps the maximum."""
        if _check_amount(value) > self.value:
            self.value = value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "help": self.help,
            "value": self.value,
        }


class Histogram:
    """Fixed-bucket integer histogram (cumulative +Inf bucket implicit).

    ``buckets`` are strictly increasing upper bounds; an observation
    lands in the first bucket whose bound is ``>= value``, or in the
    implicit overflow bucket.  ``counts`` has ``len(buckets) + 1``
    entries (the last is the overflow).
    """

    __slots__ = ("name", "help", "buckets", "counts", "sum", "count")

    kind = "histogram"

    def __init__(
        self, name: str, buckets: Sequence[int], help: str = ""
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        bounds = tuple(_check_amount(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError(
                f"histogram {name!r} buckets must be a non-empty "
                f"strictly increasing sequence, got {bounds!r}"
            )
        self.buckets: Tuple[int, ...] = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum = 0
        self.count = 0

    def observe(self, value: int) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.buckets, _check_amount(value))] += 1
        self.sum += value
        self.count += 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "help": self.help,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricRegistry:
    """The one sanctioned factory and store for metrics.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking for
    an existing name returns the existing instrument (kind and buckets
    must match), so library code and its callers can share metrics
    without coordination.  Snapshots iterate in sorted-name order,
    making every export deterministic regardless of creation order.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, name: str, factory: Any, kind: str) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {kind}"
                )
            return existing
        metric: Metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._get_or_create(
            name, lambda: Counter(name, help), "counter"
        )
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._get_or_create(
            name, lambda: Gauge(name, help), "gauge"
        )
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self, name: str, buckets: Sequence[int], help: str = ""
    ) -> Histogram:
        metric = self._get_or_create(
            name, lambda: Histogram(name, buckets, help), "histogram"
        )
        assert isinstance(metric, Histogram)
        if metric.buckets != tuple(buckets):
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{metric.buckets!r}, not {tuple(buckets)!r}"
            )
        return metric

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def metrics(self) -> List[Metric]:
        """All instruments, sorted by name (the canonical order)."""
        return [self._metrics[k] for k in sorted(self._metrics)]

    # ------------------------------------------------------------------
    # Snapshots and merging
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A schema-versioned, JSON-safe copy of every instrument."""
        return {
            "schema_version": REGISTRY_SCHEMA_VERSION,
            "metrics": [m.to_dict() for m in self.metrics()],
        }

    @classmethod
    def from_snapshot(cls, data: Mapping[str, Any]) -> "MetricRegistry":
        """Rebuild a registry from :meth:`snapshot` output."""
        version = data.get("schema_version")
        if version != REGISTRY_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported registry schema_version {version!r} "
                f"(expected {REGISTRY_SCHEMA_VERSION})"
            )
        registry = cls()
        entries = data.get("metrics")
        if not isinstance(entries, list):
            raise ValueError("registry snapshot 'metrics' must be a list")
        for entry in entries:
            kind = entry.get("kind")
            name = entry.get("name")
            help_text = entry.get("help", "")
            if kind == "counter":
                registry.counter(name, help_text).inc(entry["value"])
            elif kind == "gauge":
                registry.gauge(name, help_text).set(entry["value"])
            elif kind == "histogram":
                hist = registry.histogram(
                    name, entry["buckets"], help_text
                )
                counts = entry["counts"]
                if len(counts) != len(hist.counts):
                    raise ValueError(
                        f"histogram {name!r} snapshot has "
                        f"{len(counts)} counts, expected "
                        f"{len(hist.counts)}"
                    )
                hist.counts = [_check_amount(c) for c in counts]
                hist.sum = _check_amount(entry["sum"])
                hist.count = _check_amount(entry["count"])
            else:
                raise ValueError(f"unknown metric kind {kind!r}")
        return registry

    def merge(
        self, other: Union["MetricRegistry", Mapping[str, Any]]
    ) -> None:
        """Fold another registry (or snapshot) into this one.

        Counters add, gauges take the max, histogram buckets add
        elementwise (bucket bounds must agree).  Metrics unknown to
        ``self`` are created, so merging into an empty registry copies.
        The fold is commutative and associative.
        """
        if not isinstance(other, MetricRegistry):
            other = MetricRegistry.from_snapshot(other)
        for metric in other.metrics():
            if isinstance(metric, Counter):
                self.counter(metric.name, metric.help).inc(metric.value)
            elif isinstance(metric, Gauge):
                self.gauge(metric.name, metric.help).set(metric.value)
            else:
                hist = self.histogram(
                    metric.name, metric.buckets, metric.help
                )
                hist.counts = [
                    a + b for a, b in zip(hist.counts, metric.counts)
                ]
                hist.sum += metric.sum
                hist.count += metric.count


def fold_telemetry(
    registry: MetricRegistry, telemetry: Any, prefix: str = "repro_run"
) -> None:
    """Fold one run's :class:`~repro.obs.telemetry.RunTelemetry` into
    campaign-level registry metrics.

    Totals land in ``<prefix>_*_total`` counters, peaks in
    ``<prefix>_peak_*`` gauges — the same add/max fold as
    :meth:`~repro.obs.telemetry.RunTelemetry.merge`, so folding N runs
    one at a time equals folding their merged telemetry once.
    ``telemetry`` is duck-typed (anything with the counter attributes)
    to keep this module free of core imports; ``None`` is a no-op.
    """
    if telemetry is None:
        return
    for field in (
        "steps",
        "packet_steps",
        "generated",
        "injected",
        "delivered",
        "advances",
        "deflections",
        "dropped",
    ):
        registry.counter(
            f"{prefix}_{field}_total",
            f"Total {field.replace('_', ' ')} across runs",
        ).inc(getattr(telemetry, field))
    for field in ("max_in_flight", "max_node_load", "max_backlog"):
        registry.gauge(
            f"{prefix}_peak_{field[4:]}",
            f"Peak per-step {field[4:].replace('_', ' ')} of any run",
        ).set(getattr(telemetry, field))


#: Bucket bounds for the per-step node-load histogram (powers of two:
#: node load is bounded by in-degree plus injections, small meshes saturate
#: the low buckets, pathological congestion shows up in the overflow).
NODE_LOAD_BUCKETS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)

#: Bucket bounds for the per-step deflection-count histogram.
DEFLECTION_BUCKETS: Tuple[int, ...] = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256)


class RunMetricsRecorder:
    """Run observer that keeps a :class:`MetricRegistry` per step.

    A lean-loop-safe observer (``needs_steps = False``,
    ``needs_summaries = True``): it consumes only the
    :class:`~repro.core.kernel.StepSummary` every kernel path already
    emits, so attaching it never forces the instrumented loop and the
    routing outcome is bit-identical with or without it (pinned by the
    obs differential tests).

    Metrics kept, all under the ``repro_step`` namespace:

    * counters ``repro_step_steps_total``, ``_packet_steps_total``,
      ``_advances_total``, ``_deflections_total``, ``_delivered_total``,
      ``_injected_total``, ``_generated_total``, ``_dropped_total``;
    * gauges ``repro_step_peak_in_flight``, ``_peak_node_load``,
      ``_peak_backlog``;
    * histograms ``repro_step_node_load`` (per-step max node load) and
      ``repro_step_deflections`` (per-step deflection count).
    """

    needs_steps = False
    needs_summaries = True

    def __init__(self, registry: Optional[MetricRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        reg = self.registry
        self._steps = reg.counter(
            "repro_step_steps_total", "Kernel steps executed"
        )
        self._packet_steps = reg.counter(
            "repro_step_packet_steps_total",
            "In-flight packets summed over steps",
        )
        self._advances = reg.counter(
            "repro_step_advances_total", "Distance-reducing hops"
        )
        self._deflections = reg.counter(
            "repro_step_deflections_total", "Deflected hops (Definition 5)"
        )
        self._delivered = reg.counter(
            "repro_step_delivered_total", "Packets absorbed at destination"
        )
        self._injected = reg.counter(
            "repro_step_injected_total", "Packets injected by a source"
        )
        self._generated = reg.counter(
            "repro_step_generated_total", "Packets generated by a source"
        )
        self._dropped = reg.counter(
            "repro_step_dropped_total", "Packets removed by fault events"
        )
        self._peak_in_flight = reg.gauge(
            "repro_step_peak_in_flight", "Peak in-flight population"
        )
        self._peak_node_load = reg.gauge(
            "repro_step_peak_node_load", "Peak single-node load"
        )
        self._peak_backlog = reg.gauge(
            "repro_step_peak_backlog", "Peak source backlog"
        )
        self._load_hist = reg.histogram(
            "repro_step_node_load",
            NODE_LOAD_BUCKETS,
            "Per-step max node load distribution",
        )
        self._deflection_hist = reg.histogram(
            "repro_step_deflections",
            DEFLECTION_BUCKETS,
            "Per-step deflection count distribution",
        )

    def on_summary(self, summary: "StepSummary") -> None:
        """Accumulate one step (fires on every kernel path)."""
        deflected = summary.moved - summary.advancing
        self._steps.inc()
        self._packet_steps.inc(summary.routed)
        self._advances.inc(summary.advancing)
        self._deflections.inc(deflected)
        self._delivered.inc(summary.delivered)
        self._injected.inc(summary.injected)
        self._generated.inc(summary.generated)
        self._dropped.inc(summary.dropped)
        self._peak_in_flight.set(summary.routed)
        self._peak_node_load.set(summary.max_node_load)
        self._peak_backlog.set(summary.backlog)
        self._load_hist.observe(summary.max_node_load)
        self._deflection_hist.observe(deflected)

    # Checkpoint protocol (see repro.snapshot): counters add, gauges
    # keep maxima and histograms add elementwise, so merging a
    # snapshot into the fresh all-zeros registry is an exact restore —
    # and the cached instrument handles above stay valid because
    # merge() mutates the existing instruments in place.
    def snapshot_state(self) -> Dict[str, Any]:
        return self.registry.snapshot()

    def restore_state(self, payload: Dict[str, Any]) -> None:
        self.registry.merge(payload)

    # RunObserver protocol (duck-typed; run boundaries are no-ops).
    def on_run_start(self, engine: Any) -> None:
        """Nothing to do at run start."""

    def on_step(self, record: Any, metrics: Any) -> None:
        """Never fires: ``needs_steps`` is False."""

    def on_run_end(self, result: Any) -> None:
        """Nothing to do at run end; read :attr:`registry` any time."""
