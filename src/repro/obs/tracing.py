"""Deflection-causality tracing: per-packet lifecycle events.

The paper's potential argument hinges on Definition 5 — "p is
*deflected by* q" when q takes an arc p needed — and on following the
consequences of each deflection through time.  :class:`PacketTracer`
makes that causality observable: an opt-in structured trace of every
packet's lifecycle (``inject`` → ``advance``/``deflect(by=q)`` →
``deliver``) with a query layer (:class:`PacketTrace`) that
reconstructs deflection chains.

Cost model: tracing consumes per-step :class:`StepRecord`\\ s, so it
declares ``needs_steps = True`` and forces the engine onto the
instrumented loop (and off the soa backend).  That is the deliberate
opposite of the metric/series recorders — tracing answers *why did
this packet wander*, not *how fast are we going* — and attaching it
must not change the routing outcome: the obs differential tests pin
traced runs bit-identical to untraced ones, including under fault
schedules on the guarded loop.

Deflector attribution: for a deflected packet p routed at node v, the
candidates are the packets assigned one of p's good directions out of
v (the arcs p could have advanced along).  Advancing candidates are
preferred (the paper's Definition 5 shape), and the smallest packet id
wins ties, so the attribution is deterministic.  ``by`` is ``None``
when no candidate exists (a policy deflected p without contention).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.types import Node, PacketId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.metrics import StepMetrics, StepRecord

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "EVENT_KINDS",
    "PacketTrace",
    "PacketTracer",
    "TraceEvent",
]

#: Version stamp carried by every exported trace payload.
TRACE_SCHEMA_VERSION = 1

#: The lifecycle event vocabulary, in lifecycle order.
EVENT_KINDS = ("inject", "advance", "deflect", "deliver")


@dataclass(frozen=True)
class TraceEvent:
    """One packet lifecycle event.

    ``node`` is where the event happened (the routing node for moves,
    the source for ``inject``, the destination for ``deliver``);
    ``to`` is the move's target node (``None`` for inject/deliver);
    ``by`` is the attributed deflector (``deflect`` only, may be
    ``None`` when the deflection had no contending packet).
    """

    kind: str
    step: int
    packet: PacketId
    node: Node
    to: Optional[Node] = None
    by: Optional[PacketId] = None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "kind": self.kind,
            "step": self.step,
            "packet": self.packet,
            "node": list(self.node),
        }
        if self.to is not None:
            payload["to"] = list(self.to)
        if self.by is not None:
            payload["by"] = self.by
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceEvent":
        if data.get("kind") not in EVENT_KINDS:
            raise ValueError(f"unknown trace event kind {data.get('kind')!r}")
        to = data.get("to")
        return cls(
            kind=data["kind"],
            step=int(data["step"]),
            packet=data["packet"],
            node=tuple(data["node"]),
            to=tuple(to) if to is not None else None,
            by=data.get("by"),
        )


class PacketTrace:
    """An ordered event log with per-packet indices and chain queries."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._by_packet: Dict[PacketId, List[TraceEvent]] = {}

    def __len__(self) -> int:
        return len(self.events)

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)
        self._by_packet.setdefault(event.packet, []).append(event)

    def packets(self) -> List[PacketId]:
        """All packet ids seen, sorted."""
        return sorted(self._by_packet)

    def events_for(self, packet: PacketId) -> List[TraceEvent]:
        """One packet's full lifecycle, in step order."""
        return list(self._by_packet.get(packet, ()))

    def deflections_of(self, packet: PacketId) -> List[TraceEvent]:
        """Just the packet's ``deflect`` events, in step order."""
        return [
            e for e in self._by_packet.get(packet, ()) if e.kind == "deflect"
        ]

    def deflection_chain(
        self, packet: PacketId, step: Optional[int] = None
    ) -> List[TraceEvent]:
        """Reconstruct the causal chain behind a deflection.

        Starting from ``packet``'s deflection at ``step`` (its last
        deflection when ``step`` is ``None``), follow the attributed
        deflector ``q``, then ``q``'s own most recent deflection at an
        earlier step, and so on — the trace-level reconstruction of the
        paper's "p deflected by q" relation iterated through time.  The
        chain ends at a packet that was never deflected before the
        point it did its deflecting (or whose deflection had no
        attributed cause).
        """
        chain: List[TraceEvent] = []
        deflections = self.deflections_of(packet)
        if step is not None:
            deflections = [e for e in deflections if e.step == step]
        if not deflections:
            return chain
        current = deflections[-1]
        seen: set[Tuple[PacketId, int]] = set()
        while True:
            key = (current.packet, current.step)
            if key in seen:  # cannot happen on a well-formed trace
                break
            seen.add(key)
            chain.append(current)
            if current.by is None:
                break
            earlier = [
                e
                for e in self.deflections_of(current.by)
                if e.step < current.step
            ]
            if not earlier:
                break
            current = earlier[-1]
        return chain

    def deflected_by_counts(self) -> Dict[Tuple[PacketId, PacketId], int]:
        """How often each (victim, deflector) pair occurred."""
        counts: Dict[Tuple[PacketId, PacketId], int] = {}
        for event in self.events:
            if event.kind == "deflect" and event.by is not None:
                pair = (event.packet, event.by)
                counts[pair] = counts.get(pair, 0) + 1
        return counts

    def to_dicts(self) -> List[Dict[str, Any]]:
        """All events as JSON-safe dicts, in order."""
        return [event.to_dict() for event in self.events]


class PacketTracer:
    """Run observer that builds a :class:`PacketTrace`.

    Requires the instrumented loop (``needs_steps = True``); see the
    module docstring for the cost model and attribution rule.  Works on
    every engine that delivers :class:`~repro.core.metrics.StepRecord`
    objects — batch hot-potato, buffered (waiting packets emit no
    event), and both dynamic engines (source injections emit
    ``inject`` on first appearance).
    """

    needs_steps = True
    needs_summaries = False

    def __init__(self) -> None:
        self.trace = PacketTrace()
        self._mesh: Any = None
        self._seen: set[PacketId] = set()

    def on_run_start(self, engine: Any) -> None:
        self._mesh = engine.mesh
        start = engine.time
        for packet in engine.in_flight:
            self._seen.add(packet.id)
            self.trace.append(
                TraceEvent(
                    kind="inject",
                    step=start,
                    packet=packet.id,
                    node=packet.location,
                )
            )

    def on_step(self, record: "StepRecord", metrics: "StepMetrics") -> None:
        mesh = self._mesh
        groups = record.node_groups()
        for node in sorted(groups):
            infos = groups[node]
            for info in infos:
                if info.packet_id not in self._seen:
                    self._seen.add(info.packet_id)
                    self.trace.append(
                        TraceEvent(
                            kind="inject",
                            step=record.step,
                            packet=info.packet_id,
                            node=info.node,
                        )
                    )
            for info in infos:
                if info.next_node == info.node:
                    continue  # buffered wait: no movement event
                if info.advanced:
                    self.trace.append(
                        TraceEvent(
                            kind="advance",
                            step=record.step,
                            packet=info.packet_id,
                            node=info.node,
                            to=info.next_node,
                        )
                    )
                    continue
                good = mesh.good_directions(info.node, info.destination)
                candidates = [
                    other
                    for other in infos
                    if other.packet_id != info.packet_id
                    and other.assigned_direction in good
                ]
                advancing = [c for c in candidates if c.advanced]
                pool = advancing if advancing else candidates
                by = (
                    min(c.packet_id for c in pool) if pool else None
                )
                self.trace.append(
                    TraceEvent(
                        kind="deflect",
                        step=record.step,
                        packet=info.packet_id,
                        node=info.node,
                        to=info.next_node,
                        by=by,
                    )
                )
        for packet_id in record.delivered_after:
            info = record.infos[packet_id]
            self.trace.append(
                TraceEvent(
                    kind="deliver",
                    step=record.step,
                    packet=packet_id,
                    node=info.next_node,
                )
            )

    def on_summary(self, summary: Any) -> None:
        """Never fires: ``needs_summaries`` is False."""

    def on_run_end(self, result: Any) -> None:
        """Nothing to finalize; read :attr:`trace` any time."""
