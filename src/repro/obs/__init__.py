"""Observability: lean-path counters, phase profiling, run manifests.

Three layers, in increasing cost:

* :class:`~repro.obs.telemetry.RunTelemetry` — integer counters the
  kernel's lean loop bumps inline; always on, near-zero cost, rides on
  :class:`~repro.core.metrics.RunResult` (and across worker processes
  in sweeps).
* :class:`~repro.obs.profiler.PhaseProfiler` — opt-in wall-clock
  timing of the kernel pipeline phases via
  :meth:`~repro.core.kernel.StepKernel.run_profiled`; identical
  routing semantics, just timestamped.
* :class:`~repro.obs.manifest.RunManifest` /
  :class:`~repro.obs.manifest.JsonlRunLogger` — structured JSONL
  self-descriptions of whole runs (config, seed, git sha, telemetry,
  phase timings), written from the CLI via ``--telemetry PATH``.

This package is the sanctioned wall-clock domain for the DET106 lint
rule (``repro.obs.clock`` specifically), mirroring how
:mod:`repro.core.rng` is the sanctioned RNG home for DET101.

Import structure: :mod:`repro.obs.telemetry`, ``.clock`` and
``.profiler`` never import ``repro.core`` at runtime (the core engines
import *them*, so this direction must stay acyclic).  Manifest names
are re-exported lazily — they pull in the core layer.
"""

from typing import Any

from repro.obs.profiler import PHASES, PhaseProfiler
from repro.obs.telemetry import RunTelemetry, aggregate

__all__ = [
    "PHASES",
    "JsonlRunLogger",
    "PhaseProfiler",
    "RunManifest",
    "RunTelemetry",
    "aggregate",
    "append_manifest",
    "git_sha",
    "manifest_for_engine",
    "manifest_from_run_result",
    "read_manifests",
    "validate_manifest",
]

_MANIFEST_NAMES = frozenset(
    {
        "JsonlRunLogger",
        "RunManifest",
        "append_manifest",
        "git_sha",
        "manifest_for_engine",
        "manifest_from_run_result",
        "read_manifests",
        "validate_manifest",
    }
)


def __getattr__(name: str) -> Any:
    """PEP 562 lazy re-export of the manifest layer (imports core)."""
    if name in _MANIFEST_NAMES:
        from repro.obs import manifest

        return getattr(manifest, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
