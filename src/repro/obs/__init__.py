"""Observability: counters, metrics, series, traces, manifests.

The layers, in increasing cost:

* :class:`~repro.obs.telemetry.RunTelemetry` — integer counters the
  kernel's lean loop bumps inline; always on, near-zero cost, rides on
  :class:`~repro.core.metrics.RunResult` (and across worker processes
  in sweeps).
* :class:`~repro.obs.metrics.MetricRegistry` — the deterministic
  metric registry (counters, high-water gauges, fixed-bucket
  histograms) with order-independent merge;
  :class:`~repro.obs.metrics.RunMetricsRecorder` feeds one per step.
* :class:`~repro.obs.series.StepSeries` — bounded per-step time series
  (Φ, in-flight, deflections, max node load) via
  :class:`~repro.obs.series.SeriesRecorder`.  Both recorders consume
  only the kernel's per-step summaries (``needs_summaries``), so they
  ride the lean loops and the soa backend unchanged.
* :class:`~repro.obs.tracing.PacketTracer` — opt-in
  deflection-causality tracing (inject → advance/deflect(by=q) →
  deliver); needs the instrumented loop.
* :class:`~repro.obs.profiler.PhaseProfiler` — opt-in wall-clock
  timing of the kernel pipeline phases via
  :meth:`~repro.core.kernel.StepKernel.run_profiled`; identical
  routing semantics, just timestamped.
* :class:`~repro.obs.manifest.RunManifest` /
  :class:`~repro.obs.manifest.JsonlRunLogger` — structured JSONL
  self-descriptions of whole runs (config, seed, git sha, telemetry,
  phase timings), written from the CLI via ``--telemetry PATH``.
* :mod:`~repro.obs.export` — schema-versioned JSONL series/trace
  sinks plus Prometheus text exposition of a registry snapshot.

This package is the sanctioned wall-clock domain for the DET106 lint
rule (``repro.obs.clock`` specifically), mirroring how
:mod:`repro.core.rng` is the sanctioned RNG home for DET101; the
OBS6xx family additionally polices that metrics flow through the
registry and that nothing else in ``repro.obs`` imports a clock.

Import structure: :mod:`repro.obs.telemetry`, ``.clock``,
``.profiler``, ``.metrics``, ``.series``, ``.tracing`` and ``.export``
never import ``repro.core`` at runtime (the core engines import
*them*, so this direction must stay acyclic).  Manifest names are
re-exported lazily — they pull in the core layer.

See ``docs/observability.md`` for the complete catalog of counters,
metrics, series columns, trace events, and schema versions.
"""

from typing import Any

from repro.obs.export import (
    read_series_jsonl,
    read_trace_jsonl,
    render_prometheus,
    write_series_jsonl,
    write_trace_jsonl,
)
from repro.obs.metrics import (
    REGISTRY_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    RunMetricsRecorder,
    fold_telemetry,
)
from repro.obs.profiler import PHASES, PhaseProfiler
from repro.obs.series import (
    SERIES_SCHEMA_VERSION,
    SeriesRecorder,
    StepSeries,
)
from repro.obs.telemetry import RunTelemetry, aggregate
from repro.obs.tracing import (
    TRACE_SCHEMA_VERSION,
    PacketTrace,
    PacketTracer,
    TraceEvent,
)

__all__ = [
    "PHASES",
    "REGISTRY_SCHEMA_VERSION",
    "SERIES_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlRunLogger",
    "MetricRegistry",
    "PacketTrace",
    "PacketTracer",
    "PhaseProfiler",
    "RunManifest",
    "RunMetricsRecorder",
    "RunTelemetry",
    "SeriesRecorder",
    "StepSeries",
    "TraceEvent",
    "aggregate",
    "append_manifest",
    "fold_telemetry",
    "git_sha",
    "manifest_for_engine",
    "manifest_from_run_result",
    "read_manifests",
    "read_series_jsonl",
    "read_trace_jsonl",
    "render_prometheus",
    "validate_manifest",
    "write_series_jsonl",
    "write_trace_jsonl",
]

_MANIFEST_NAMES = frozenset(
    {
        "JsonlRunLogger",
        "RunManifest",
        "append_manifest",
        "git_sha",
        "manifest_for_engine",
        "manifest_from_run_result",
        "read_manifests",
        "validate_manifest",
    }
)


def __getattr__(name: str) -> Any:
    """PEP 562 lazy re-export of the manifest layer (imports core)."""
    if name in _MANIFEST_NAMES:
        from repro.obs import manifest

        return getattr(manifest, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
