"""Per-step time series with bounded, deterministic storage.

The paper's whole argument is about *trajectories*: the potential Φ
decreases as packets advance and is perturbed every time "p is
deflected by q" (Definition 5).  :class:`StepSeries` records exactly
those trajectories — Φ (the distance potential, i.e. the sum of
in-flight packets' distances the kernel already computes as
``StepSummary.total_distance``), the in-flight population, per-step
deflection counts, and max node load — without forcing the engines off
their lean loops: :class:`SeriesRecorder` is a summary observer
(``needs_steps = False``, ``needs_summaries = True``) fed by the
per-step :class:`~repro.core.kernel.StepSummary` every kernel path
already emits.

Storage is bounded and deterministic.  Two modes:

* ``"decimate"`` (default): when ``capacity`` samples are held, every
  second sample is dropped and the keep-stride doubles, so the series
  always spans the whole run at progressively coarser resolution.
  Which samples survive depends only on step numbers — never on time
  or sampling randomness — so two identical runs keep identical
  samples.
* ``"ring"``: keep the most recent ``capacity`` samples (a sliding
  window over the run's tail).

No wall clock, no RNG, no floats in storage: rates are derived on
demand from the stored integer columns.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.kernel import StepSummary

__all__ = [
    "SERIES_SCHEMA_VERSION",
    "SeriesRecorder",
    "StepSeries",
    "SERIES_COLUMNS",
]

#: Version stamp carried by every exported series payload.
SERIES_SCHEMA_VERSION = 1

#: The integer columns a series stores, in canonical order.
SERIES_COLUMNS = (
    "step",
    "phi",
    "in_flight",
    "advancing",
    "deflected",
    "delivered",
    "max_node_load",
    "backlog",
)

_MODES = ("decimate", "ring")


class StepSeries:
    """Columnar per-step samples with bounded storage.

    Columns (parallel integer lists, one entry per kept sample):

    * ``step`` — kernel step number;
    * ``phi`` — distance potential Φ: sum over in-flight packets of
      their distance to destination at the start of the step;
    * ``in_flight`` — packets routed this step;
    * ``advancing`` — packets that moved closer to their destination;
    * ``deflected`` — packets that moved but not closer (Definition 5);
    * ``delivered`` — packets absorbed this step;
    * ``max_node_load`` — largest single-node load this step;
    * ``backlog`` — source backlog (0 for batch runs).
    """

    __slots__ = ("capacity", "mode", "stride", "dropped", "columns")

    def __init__(self, capacity: int = 4096, mode: str = "decimate") -> None:
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.capacity = capacity
        self.mode = mode
        #: Keep one sample per ``stride`` steps (decimate mode only).
        self.stride = 1
        #: Samples discarded by bounding (ring evictions + decimation
        #: drops + stride skips) — exported so consumers can tell a
        #: complete series from a bounded one.
        self.dropped = 0
        self.columns: Dict[str, List[int]] = {
            name: [] for name in SERIES_COLUMNS
        }

    def __len__(self) -> int:
        return len(self.columns["step"])

    def record(self, summary: "StepSummary") -> None:
        """Append one step's sample (subject to the bounding policy)."""
        if self.mode == "decimate" and summary.step % self.stride != 0:
            self.dropped += 1
            return
        cols = self.columns
        cols["step"].append(summary.step)
        cols["phi"].append(summary.total_distance)
        cols["in_flight"].append(summary.routed)
        cols["advancing"].append(summary.advancing)
        cols["deflected"].append(summary.moved - summary.advancing)
        cols["delivered"].append(summary.delivered)
        cols["max_node_load"].append(summary.max_node_load)
        cols["backlog"].append(summary.backlog)
        if len(cols["step"]) <= self.capacity:
            return
        if self.mode == "ring":
            for column in cols.values():
                del column[0]
            self.dropped += 1
        else:
            # Halve resolution: double the stride, keep only samples
            # whose step number is a multiple of it.  Depends only on
            # step numbers — two identical runs decimate identically,
            # and the survivors agree with the append-time check.
            self.stride *= 2
            keep = [
                i
                for i, step in enumerate(cols["step"])
                if step % self.stride == 0
            ]
            self.dropped += len(cols["step"]) - len(keep)
            for name in SERIES_COLUMNS:
                column = cols[name]
                cols[name] = [column[i] for i in keep]

    def deflection_rates(self) -> List[float]:
        """Per-sample deflection rate: deflected / moved (0.0 idle)."""
        rates: List[float] = []
        for advancing, deflected in zip(
            self.columns["advancing"], self.columns["deflected"]
        ):
            moved = advancing + deflected
            rates.append(deflected / moved if moved else 0.0)
        return rates

    def to_dict(self) -> Dict[str, Any]:
        """A schema-versioned, JSON-safe payload of the series."""
        return {
            "schema_version": SERIES_SCHEMA_VERSION,
            "mode": self.mode,
            "capacity": self.capacity,
            "stride": self.stride,
            "dropped": self.dropped,
            "samples": len(self),
            "columns": {
                name: list(column) for name, column in self.columns.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StepSeries":
        """Inverse of :meth:`to_dict` (strict on schema and columns)."""
        version = data.get("schema_version")
        if version != SERIES_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported series schema_version {version!r} "
                f"(expected {SERIES_SCHEMA_VERSION})"
            )
        series = cls(capacity=data["capacity"], mode=data["mode"])
        series.stride = data["stride"]
        series.dropped = data["dropped"]
        columns = data["columns"]
        if set(columns) != set(SERIES_COLUMNS):
            raise ValueError(
                f"series columns {sorted(columns)} do not match "
                f"{sorted(SERIES_COLUMNS)}"
            )
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged series columns: lengths {lengths}")
        series.columns = {
            name: [int(v) for v in columns[name]] for name in SERIES_COLUMNS
        }
        return series


class SeriesRecorder:
    """Run observer that feeds a :class:`StepSeries` from summaries.

    Lean-loop safe (``needs_steps = False``, ``needs_summaries = True``)
    and backend-agnostic: the soa kernel emits the same summaries, so
    the same recorder works under ``backend="soa"``.
    """

    needs_steps = False
    needs_summaries = True

    def __init__(
        self,
        series: Optional[StepSeries] = None,
        *,
        capacity: int = 4096,
        mode: str = "decimate",
    ) -> None:
        self.series = (
            series
            if series is not None
            else StepSeries(capacity=capacity, mode=mode)
        )

    def on_summary(self, summary: "StepSummary") -> None:
        self.series.record(summary)

    # Checkpoint protocol (see repro.snapshot): the series payload is
    # already schema-versioned and exact, so snapshots reuse it.
    def snapshot_state(self) -> Dict[str, Any]:
        return self.series.to_dict()

    def restore_state(self, payload: Dict[str, Any]) -> None:
        self.series = StepSeries.from_dict(payload)

    # RunObserver protocol (duck-typed; run boundaries are no-ops).
    def on_run_start(self, engine: Any) -> None:
        """Nothing to do at run start."""

    def on_step(self, record: Any, metrics: Any) -> None:
        """Never fires: ``needs_steps`` is False."""

    def on_run_end(self, result: Any) -> None:
        """Nothing to do at run end; read :attr:`series` any time."""
