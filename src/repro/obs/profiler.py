"""Opt-in per-phase wall-clock profiler for the step kernel.

:class:`PhaseProfiler` satisfies the kernel's
:class:`~repro.core.kernel.PhaseSink` protocol: it supplies the clock
(:func:`repro.obs.clock.perf_ns` — the kernel itself owns no clock,
keeping DET106 happy) and accumulates nanoseconds per pipeline phase
(*inject → rank → arc-assign → move → deliver*) as
:meth:`~repro.core.kernel.StepKernel.run_profiled` reports each step.
Timing is additive bookkeeping only: the profiled loop executes the
exact lean-loop semantics, so results stay bit-identical.

Phase meanings:

* ``inject`` — injection-source admission (zero work for batch runs).
* ``rank`` — grouping packets by node plus the per-node policy
  decision (``assign``/``forward``), the part the paper's priority
  schemes make interesting.
* ``arc_assign`` — validating the policy's output and staging moves.
* ``move`` — applying moves and distance bookkeeping.
* ``deliver`` — the absorption scan and delivery callbacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping

from repro.obs.clock import perf_ns

__all__ = ["PHASES", "PhaseProfiler"]

#: Pipeline phases in execution order; keys everywhere phases appear.
PHASES = ("inject", "rank", "arc_assign", "move", "deliver")


@dataclass(slots=True)
class PhaseProfiler:
    """Accumulated nanoseconds per kernel pipeline phase."""

    steps: int = 0
    inject_ns: int = 0
    rank_ns: int = 0
    arc_assign_ns: int = 0
    move_ns: int = 0
    deliver_ns: int = 0

    def clock(self) -> int:
        """The timestamp source the profiled kernel loop reads."""
        return perf_ns()

    def record_step(
        self,
        inject: int,
        rank: int,
        arc_assign: int,
        move: int,
        deliver: int,
    ) -> None:
        """Add one step's per-phase durations (nanoseconds)."""
        self.steps += 1
        self.inject_ns += inject
        self.rank_ns += rank
        self.arc_assign_ns += arc_assign
        self.move_ns += move
        self.deliver_ns += deliver

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def totals(self) -> Dict[str, int]:
        """Nanoseconds per phase, keyed by :data:`PHASES` names."""
        return {
            "inject": self.inject_ns,
            "rank": self.rank_ns,
            "arc_assign": self.arc_assign_ns,
            "move": self.move_ns,
            "deliver": self.deliver_ns,
        }

    @property
    def total_ns(self) -> int:
        """Nanoseconds across all phases."""
        return (
            self.inject_ns
            + self.rank_ns
            + self.arc_assign_ns
            + self.move_ns
            + self.deliver_ns
        )

    def shares(self) -> Dict[str, float]:
        """Fraction of total time per phase (all zero on an empty run)."""
        total = self.total_ns
        if total == 0:
            return {phase: 0.0 for phase in PHASES}
        return {
            phase: duration / total
            for phase, duration in self.totals().items()
        }

    def merge(self, other: "PhaseProfiler") -> None:
        """Fold another profile into this one (everything adds)."""
        self.steps += other.steps
        self.inject_ns += other.inject_ns
        self.rank_ns += other.rank_ns
        self.arc_assign_ns += other.arc_assign_ns
        self.move_ns += other.move_ns
        self.deliver_ns += other.deliver_ns

    def to_dict(self) -> Dict[str, int]:
        """Manifest payload: step count plus per-phase nanoseconds."""
        return {
            "steps": self.steps,
            "inject_ns": self.inject_ns,
            "rank_ns": self.rank_ns,
            "arc_assign_ns": self.arc_assign_ns,
            "move_ns": self.move_ns,
            "deliver_ns": self.deliver_ns,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PhaseProfiler":
        """Inverse of :meth:`to_dict`; rejects unknown or non-int keys."""
        known = {
            "steps",
            "inject_ns",
            "rank_ns",
            "arc_assign_ns",
            "move_ns",
            "deliver_ns",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown profiler fields: {sorted(unknown)}")
        values: Dict[str, int] = {}
        for name, value in data.items():
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValueError(
                    f"profiler field {name!r} must be an int, got {value!r}"
                )
            values[name] = value
        return cls(**values)

    def format_table(self) -> str:
        """A fixed-width phase-time table (the ``repro profile`` view)."""
        total = self.total_ns
        lines = [
            f"{'phase':<12} {'time (ms)':>12} {'share':>8}",
            "-" * 34,
        ]
        for phase, duration in self.totals().items():
            share = duration / total if total else 0.0
            lines.append(
                f"{phase:<12} {duration / 1e6:>12.3f} {share:>7.1%}"
            )
        lines.append("-" * 34)
        per_step = total / self.steps if self.steps else 0.0
        lines.append(
            f"{'total':<12} {total / 1e6:>12.3f} {'':>8}  "
            f"({self.steps} steps, {per_step / 1e3:.1f} us/step)"
        )
        return "\n".join(lines)
