"""Traffic models for dynamic (continuous-injection) routing.

The paper analyzes *batch* routing, but its motivating systems —
multihop lightwave networks [AS], [ZA], the Manhattan Street network
[Ma], deflection hypercubes [GH], [Sz] — run with continuous traffic:
every node generates packets over time.  A :class:`TrafficModel`
decides, each step, how many new packets every node generates and
where they are destined; the dynamic engine injects them as capacity
permits.
"""

from __future__ import annotations

import abc
import random
from typing import List, Optional, Sequence, Tuple

from repro.core.rng import make_rng
from repro.mesh.topology import Mesh
from repro.types import Node


class TrafficModel(abc.ABC):
    """Generates routing demand over time."""

    @abc.abstractmethod
    def prepare(self, mesh: Mesh, rng: random.Random) -> None:
        """Called once before the run starts."""

    @abc.abstractmethod
    def arrivals(self, node: Node, step: int) -> List[Node]:
        """Destinations of the packets ``node`` generates at ``step``.

        Return an empty list for no arrival.  The engine may delay the
        actual injection when the node is full; generation time (for
        latency accounting) is ``step`` regardless.
        """


class BernoulliTraffic(TrafficModel):
    """Independent Bernoulli arrivals with uniform random destinations.

    Each node generates a packet with probability ``rate`` per step
    (so ``rate`` is also the per-node offered load in packets/step).
    Destinations are uniform over all other nodes, the standard
    uniform-traffic assumption of the deflection-network literature.
    """

    def __init__(self, rate: float) -> None:
        if not 0 <= rate <= 1:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self.rate = rate
        self._nodes: List[Node] = []
        self._rng = make_rng(0)

    def prepare(self, mesh: Mesh, rng: random.Random) -> None:
        self._nodes = list(mesh.nodes())
        self._rng = rng

    def arrivals(self, node: Node, step: int) -> List[Node]:
        if self._rng.random() >= self.rate:
            return []
        destination = self._rng.choice(self._nodes)
        while destination == node:
            destination = self._rng.choice(self._nodes)
        return [destination]


class HotSpotTraffic(TrafficModel):
    """Bernoulli arrivals with a fraction of traffic aimed at one node.

    With probability ``hot_fraction`` a generated packet goes to the
    ``hot_spot`` (default: mesh center); otherwise uniform.  Models the
    server/memory-bank hot spots of multiprocessor interconnects.
    """

    def __init__(
        self,
        rate: float,
        hot_fraction: float = 0.2,
        hot_spot: Optional[Node] = None,
    ) -> None:
        if not 0 <= rate <= 1:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if not 0 <= hot_fraction <= 1:
            raise ValueError(
                f"hot_fraction must be in [0, 1], got {hot_fraction}"
            )
        self.rate = rate
        self.hot_fraction = hot_fraction
        self.hot_spot = hot_spot
        self._nodes: List[Node] = []
        self._rng = make_rng(0)

    def prepare(self, mesh: Mesh, rng: random.Random) -> None:
        self._nodes = list(mesh.nodes())
        self._rng = rng
        if self.hot_spot is None:
            self.hot_spot = mesh.center()
        elif not mesh.contains(self.hot_spot):
            raise ValueError(f"hot spot {self.hot_spot} not a mesh node")

    def arrivals(self, node: Node, step: int) -> List[Node]:
        if self._rng.random() >= self.rate:
            return []
        if self._rng.random() < self.hot_fraction and node != self.hot_spot:
            return [self.hot_spot]
        destination = self._rng.choice(self._nodes)
        while destination == node:
            destination = self._rng.choice(self._nodes)
        return [destination]


class ScriptedTraffic(TrafficModel):
    """Deterministic demand script, for tests.

    ``script`` maps ``(node, step)`` to a list of destinations.
    """

    def __init__(
        self, script: Sequence[Tuple[Node, int, Node]]
    ) -> None:
        self._script = {}
        for node, step, destination in script:
            self._script.setdefault((node, step), []).append(destination)

    def prepare(self, mesh: Mesh, rng: random.Random) -> None:
        for (node, _), destinations in self._script.items():
            if not mesh.contains(node):
                raise ValueError(f"scripted source {node} not in mesh")
            for destination in destinations:
                if not mesh.contains(destination):
                    raise ValueError(
                        f"scripted destination {destination} not in mesh"
                    )

    def arrivals(self, node: Node, step: int) -> List[Node]:
        return list(self._script.get((node, step), []))
