"""Dynamic (continuous-injection) hot-potato routing.

The batch model of the paper, extended to the continuous-traffic
operating mode of its motivating systems (multihop lightwave networks,
deflection multiprocessor interconnects): Bernoulli/hot-spot traffic
models, an injection-capable engine reusing the batch policies, and
steady-state statistics (latency percentiles, throughput, deflection
rate, source backlog).
"""

from repro.dynamic.buffered import BufferedDynamicEngine
from repro.dynamic.engine import DynamicEngine
from repro.dynamic.injection import (
    BernoulliTraffic,
    HotSpotTraffic,
    ScriptedTraffic,
    TrafficModel,
)
from repro.dynamic.sources import CapacityLimitedInjection, ImmediateInjection
from repro.dynamic.stats import DeliveryRecord, DynamicStats, StepSample

__all__ = [
    "BernoulliTraffic",
    "BufferedDynamicEngine",
    "CapacityLimitedInjection",
    "DeliveryRecord",
    "DynamicEngine",
    "DynamicStats",
    "HotSpotTraffic",
    "ImmediateInjection",
    "ScriptedTraffic",
    "StepSample",
    "TrafficModel",
]
