"""Injection sources: how demand enters a kernel run.

The kernel's *inject* phase is an
:class:`~repro.core.kernel.InjectionSource`; the two disciplines the
paper's comparison needs are here:

* :class:`CapacityLimitedInjection` — the hot-potato rule.  A node may
  inject only as many packets as it has free outgoing arcs after the
  packets already present (otherwise "everyone leaves next step" would
  be violated); the rest wait in a per-node source queue whose latency
  clock started at *generation*.
* :class:`ImmediateInjection` — the store-and-forward rule.  Buffers
  absorb everything, so generated packets enter the fabric at once and
  waiting happens inside the network.

Both own the demand process, the packet-id counter and the
generation-time table, so engines can delegate those wholesale.

Determinism contract: generation visits ``mesh.nodes()`` in mesh
order, and capacity-limited injection drains ``backlog.items()`` in
*insertion* order (nodes enter the dict on their first generation and
keep that position), which fixes packet ids and hence every downstream
RNG-sensitive decision.  Do not "clean up" either iteration order.
"""

from __future__ import annotations

import random
from collections import defaultdict, deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.core.kernel import InjectionSource
from repro.core.packet import Packet
from repro.dynamic.injection import TrafficModel
from repro.mesh.topology import Mesh
from repro.types import Node, PacketId


class CapacityLimitedInjection(InjectionSource):
    """Inject up to each node's free out-degree; queue the rest."""

    def __init__(self, traffic: TrafficModel) -> None:
        self.traffic = traffic
        #: Pending (generated, not yet injected) packets per node:
        #: queue of (generation step, destination).
        self.backlog: Dict[Node, Deque[Tuple[int, Node]]] = defaultdict(deque)
        self.next_id: PacketId = 0
        self.generated_at: Dict[PacketId, int] = {}
        self._mesh: Optional[Mesh] = None

    def prepare(self, mesh: Mesh, rng: random.Random) -> None:
        self._mesh = mesh
        self.traffic.prepare(mesh, rng)

    def admit(self, time: int, in_flight: List[Packet]) -> Tuple[int, int]:
        loads: Dict[Node, int] = defaultdict(int)
        for packet in in_flight:
            loads[packet.location] += 1
        generated, injected = self.admit_batch(time, loads)
        in_flight.extend(injected)
        return generated, len(injected)

    def admit_batch(
        self, time: int, loads: Dict[Node, int]
    ) -> Tuple[int, List[Packet]]:
        """The inject phase against precomputed node loads.

        Same generation and drain order as :meth:`admit` — the array
        kernel calls this directly with loads derived from its
        position column, so the traffic stream and packet ids stay
        bit-identical to the object kernel.  ``loads`` is updated with
        the injected packets (callers that reuse it see post-injection
        occupancy, like the object path's local count did).
        """
        mesh = self._mesh
        assert mesh is not None, "prepare() must run before admit()"
        generated = 0
        for node in mesh.nodes():
            for destination in self.traffic.arrivals(node, time):
                if destination == node:
                    continue  # zero-distance demand is a no-op
                self.backlog[node].append((time, destination))
                generated += 1
        injected: List[Packet] = []
        for node, queue in self.backlog.items():
            free = mesh.degree(node) - loads.get(node, 0)
            count = 0
            while queue and free > 0:
                generated_at, destination = queue.popleft()
                packet = Packet(
                    id=self.next_id, source=node, destination=destination
                )
                self.generated_at[packet.id] = generated_at
                self.next_id += 1
                injected.append(packet)
                count += 1
                free -= 1
            if count:
                loads[node] = loads.get(node, 0) + count
        return generated, injected

    def backlog_size(self) -> int:
        return sum(len(queue) for queue in self.backlog.values())

    def snapshot_state(self) -> Dict[str, Any]:
        """JSON-safe source state (see :mod:`repro.snapshot`).

        The backlog is serialized as an ordered list of
        ``[node, [[generated, destination], ...]]`` pairs: dict
        *insertion* order is the drain-order determinism contract, so
        it must survive the round trip — including nodes whose queue
        is currently empty, which keep their position.
        """
        return {
            "type": "capacity-limited",
            "next_id": self.next_id,
            "generated_at": {
                str(packet_id): step
                for packet_id, step in self.generated_at.items()
            },
            "backlog": [
                [
                    list(node),
                    [[step, list(destination)] for step, destination in queue],
                ]
                for node, queue in self.backlog.items()
            ],
        }

    def restore_state(self, payload: Dict[str, Any]) -> None:
        if payload.get("type") != "capacity-limited":
            raise ValueError(
                f"source snapshot type {payload.get('type')!r} does not "
                f"match CapacityLimitedInjection"
            )
        self.next_id = int(payload["next_id"])
        self.generated_at = {
            int(packet_id): int(step)
            for packet_id, step in payload["generated_at"].items()
        }
        self.backlog = defaultdict(deque)
        for node_data, queue_data in payload["backlog"]:
            node = tuple(int(c) for c in node_data)
            self.backlog[node] = deque(
                (int(step), tuple(int(c) for c in destination))
                for step, destination in queue_data
            )


class ImmediateInjection(InjectionSource):
    """Inject every generated packet at once (buffered fabric)."""

    def __init__(self, traffic: TrafficModel) -> None:
        self.traffic = traffic
        self.next_id: PacketId = 0
        self.generated_at: Dict[PacketId, int] = {}
        self._mesh: Optional[Mesh] = None

    def prepare(self, mesh: Mesh, rng: random.Random) -> None:
        self._mesh = mesh
        self.traffic.prepare(mesh, rng)

    def admit(self, time: int, in_flight: List[Packet]) -> Tuple[int, int]:
        generated, injected = self.admit_batch(time, {})
        in_flight.extend(injected)
        return generated, len(injected)

    def admit_batch(
        self, time: int, loads: Dict[Node, int]
    ) -> Tuple[int, List[Packet]]:
        """Batch twin of :meth:`admit`; ``loads`` is ignored (buffers
        absorb everything)."""
        mesh = self._mesh
        assert mesh is not None, "prepare() must run before admit()"
        injected: List[Packet] = []
        for node in mesh.nodes():
            for destination in self.traffic.arrivals(node, time):
                if destination == node:
                    continue
                packet = Packet(
                    id=self.next_id, source=node, destination=destination
                )
                self.generated_at[packet.id] = time
                self.next_id += 1
                injected.append(packet)
        return len(injected), injected

    def snapshot_state(self) -> Dict[str, Any]:
        """JSON-safe source state (no backlog: buffers absorb all)."""
        return {
            "type": "immediate",
            "next_id": self.next_id,
            "generated_at": {
                str(packet_id): step
                for packet_id, step in self.generated_at.items()
            },
        }

    def restore_state(self, payload: Dict[str, Any]) -> None:
        if payload.get("type") != "immediate":
            raise ValueError(
                f"source snapshot type {payload.get('type')!r} does not "
                f"match ImmediateInjection"
            )
        self.next_id = int(payload["next_id"])
        self.generated_at = {
            int(packet_id): int(step)
            for packet_id, step in payload["generated_at"].items()
        }
