"""Store-and-forward under continuous traffic.

The direct counterpart of Maxemchuk's study the paper cites —
"Comparison of deflection and store and forward techniques" [Ma] —
needs both disciplines running under the same traffic.
:class:`BufferedDynamicEngine` is the buffered side: packets are
injected unconditionally into node queues, each step every node sends
at most one packet per outgoing arc under a
:class:`~repro.core.policy.BufferedPolicy` (dimension-order by
default), and waiting happens *inside* the fabric — the queue
occupancy the hot-potato discipline exists to eliminate.

Statistics are the shared :class:`~repro.dynamic.stats.DynamicStats`,
so the two engines' latency/throughput curves compare directly
(benchmark E21).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from repro.core.node_view import NodeView
from repro.core.packet import Packet
from repro.core.policy import BufferedPolicy
from repro.core.problem import RoutingProblem
from repro.core.rng import RngLike, make_rng
from repro.dynamic.injection import TrafficModel
from repro.dynamic.stats import DynamicStats, StepSample
from repro.exceptions import ArcAssignmentError
from repro.mesh.topology import Mesh
from repro.types import Node, PacketId


class BufferedDynamicEngine:
    """Continuous-traffic store-and-forward simulator.

    Mirrors :class:`~repro.dynamic.engine.DynamicEngine`'s interface;
    differences are the routing discipline (queues instead of
    deflections) and the injection rule (always immediate — buffers
    absorb everything, so the *fabric* holds the congestion).
    """

    def __init__(
        self,
        mesh: Mesh,
        policy: BufferedPolicy,
        traffic: TrafficModel,
        *,
        seed: RngLike = 0,
        warmup: int = 0,
    ) -> None:
        self.mesh = mesh
        self.policy = policy
        self.traffic = traffic
        self.rng = make_rng(seed)
        self.warmup = warmup

        self.time = 0
        self.in_flight: List[Packet] = []
        self._next_id: PacketId = 0
        self._generated_at: Dict[PacketId, int] = {}
        self._stats = DynamicStats(warmup=warmup)
        self._max_queue = 0
        self._started = False

    @property
    def max_queue_seen(self) -> int:
        """Largest single-node buffer occupancy observed."""
        return self._max_queue

    def run(self, steps: int) -> DynamicStats:
        """Simulate ``steps`` steps and return the statistics."""
        self._start()
        for _ in range(steps):
            self.step()
        self._stats.finalize(self.time, len(self.in_flight), 0)
        return self._stats

    def step(self) -> None:
        self._start()
        generated = self._generate()
        routed, advanced, delivered = self._route()
        self._stats.record_step(
            StepSample(
                step=self.time - 1,
                generated=generated,
                injected=generated,  # buffers always accept
                in_flight=routed,
                advancing=advanced,
                delivered=delivered,
                backlog=0,
            )
        )

    # ------------------------------------------------------------------

    def _start(self) -> None:
        if self._started:
            return
        self._started = True
        empty = RoutingProblem(mesh=self.mesh, requests=(), name="dynamic")
        self.policy.prepare(self.mesh, empty, self.rng)
        self.traffic.prepare(self.mesh, self.rng)

    def _generate(self) -> int:
        generated = 0
        for node in self.mesh.nodes():
            for destination in self.traffic.arrivals(node, self.time):
                if destination == node:
                    continue
                packet = Packet(
                    id=self._next_id, source=node, destination=destination
                )
                self._generated_at[packet.id] = self.time
                self._next_id += 1
                self.in_flight.append(packet)
                generated += 1
        return generated

    def _route(self):
        groups: Dict[Node, List[Packet]] = defaultdict(list)
        for packet in self.in_flight:
            groups[packet.location].append(packet)
        if groups:
            self._max_queue = max(
                self._max_queue, max(len(g) for g in groups.values())
            )

        moves: Dict[PacketId, Node] = {}
        for node in sorted(groups):
            view = NodeView(self.mesh, node, self.time, groups[node])
            assignment = self.policy.forward(view)
            seen = set()
            ids_here = {p.id for p in view.packets}
            for packet_id, direction in assignment.items():
                if packet_id not in ids_here or direction in seen:
                    raise ArcAssignmentError(
                        f"dynamic buffered step {self.time}: bad "
                        f"assignment at {node}"
                    )
                seen.add(direction)
                target = self.mesh.neighbor(node, direction)
                if target is None:
                    raise ArcAssignmentError(
                        f"dynamic buffered step {self.time}: direction "
                        f"{direction} leaves the mesh at {node}"
                    )
                moves[packet_id] = target

        self.time += 1
        routed = len(self.in_flight)
        advanced = 0
        delivered = 0
        remaining: List[Packet] = []
        for packet in self.in_flight:
            target = moves.get(packet.id)
            if target is not None:
                if self.mesh.distance(
                    target, packet.destination
                ) < self.mesh.distance(packet.location, packet.destination):
                    packet.advances += 1
                    advanced += 1
                else:
                    packet.deflections += 1
                packet.location = target
                packet.hops += 1
            if packet.location == packet.destination:
                packet.delivered_at = self.time
                delivered += 1
                generated = self._generated_at.pop(packet.id)
                self._stats.record_delivery(
                    generated_at=generated,
                    delivered_at=self.time,
                    hops=packet.hops,
                    deflections=packet.deflections,
                    shortest=self.mesh.distance(
                        packet.source, packet.destination
                    ),
                )
            else:
                remaining.append(packet)
        self.in_flight = remaining
        return routed, advanced, delivered
