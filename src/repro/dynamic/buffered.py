"""Store-and-forward under continuous traffic.

The direct counterpart of Maxemchuk's study the paper cites —
"Comparison of deflection and store and forward techniques" [Ma] —
needs both disciplines running under the same traffic.
:class:`BufferedDynamicEngine` is the buffered side: packets are
injected unconditionally into node queues (an
:class:`~repro.dynamic.sources.ImmediateInjection` source), each step
every node sends at most one packet per outgoing arc under a
:class:`~repro.core.policy.BufferedPolicy` (dimension-order by
default), and waiting happens *inside* the fabric — the queue
occupancy the hot-potato discipline exists to eliminate.

The step loop is the shared :class:`~repro.core.kernel.StepKernel`
(buffered semantics, sorted node order).  Statistics are the shared
:class:`~repro.dynamic.stats.DynamicStats`, so the two engines'
latency/throughput curves compare directly (benchmark E21).
"""

from __future__ import annotations

from typing import Any

from repro.core.kernel import StepSummary
from repro.dynamic.base import DynamicEngineBase
from repro.dynamic.injection import TrafficModel
from repro.dynamic.sources import ImmediateInjection


class BufferedDynamicEngine(DynamicEngineBase):
    """Continuous-traffic store-and-forward simulator.

    Mirrors :class:`~repro.dynamic.engine.DynamicEngine`'s interface;
    differences are the routing discipline (queues instead of
    deflections) and the injection rule (always immediate — buffers
    absorb everything, so the *fabric* holds the congestion, and the
    source backlog is identically zero).
    """

    buffered = True

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        self._max_queue = 0
        super().__init__(*args, **kwargs)

    def _make_source(self, traffic: TrafficModel) -> ImmediateInjection:
        return ImmediateInjection(traffic)

    def _observe_summary(self, summary: StepSummary) -> None:
        if summary.max_node_load > self._max_queue:
            self._max_queue = summary.max_node_load

    def _sample_backlog(self, summary: StepSummary) -> int:
        return 0

    def _final_backlog(self) -> int:
        return 0

    @property
    def max_queue_seen(self) -> int:
        """Largest single-node buffer occupancy observed."""
        return self._max_queue
