"""The dynamic (continuous-injection) hot-potato engine.

Extends the batch model of Section 2 to the operating mode of the
paper's motivating systems: every step, nodes *generate* new packets
(per a :class:`~repro.dynamic.injection.TrafficModel`), inject them
when they have spare capacity, and route everything hot-potato style
under an ordinary :class:`~repro.core.policy.RoutingPolicy`.

Injection discipline: a node may inject only as many packets as it has
free outgoing arcs after accounting for the packets already present
(otherwise the hot-potato rule — everyone leaves next step — would be
violated).  Generated packets that cannot be injected wait in a
source queue; their latency clock starts at *generation*, so source
queueing is part of measured latency, as in the deflection-network
literature.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, List, Tuple

from repro.core.node_view import NodeView
from repro.core.packet import Packet
from repro.core.policy import RoutingPolicy
from repro.core.problem import RoutingProblem
from repro.core.rng import RngLike, make_rng
from repro.dynamic.injection import TrafficModel
from repro.dynamic.stats import DynamicStats, StepSample
from repro.exceptions import ArcAssignmentError
from repro.mesh.topology import Mesh
from repro.types import Node, PacketId


class DynamicEngine:
    """Hot-potato routing under continuous traffic.

    Args:
        mesh: the network.
        policy: any hot-potato routing policy (same interface as the
            batch engine; :meth:`RoutingPolicy.prepare` receives an
            empty batch problem).
        traffic: the demand process.
        seed: RNG seed shared by traffic and policy.
        warmup: steps excluded from steady-state statistics (packets
            *generated* before ``warmup`` are routed but not counted).

    Call :meth:`run` with a horizon; the returned
    :class:`~repro.dynamic.stats.DynamicStats` carries latency,
    throughput, deflection-rate, and backlog series.
    """

    def __init__(
        self,
        mesh: Mesh,
        policy: RoutingPolicy,
        traffic: TrafficModel,
        *,
        seed: RngLike = 0,
        warmup: int = 0,
    ) -> None:
        self.mesh = mesh
        self.policy = policy
        self.traffic = traffic
        self.rng = make_rng(seed)
        self.warmup = warmup

        self.time = 0
        self.in_flight: List[Packet] = []
        #: Pending (generated, not yet injected) packets per node:
        #: queue of (generation step, destination).
        self.backlog: Dict[Node, Deque[Tuple[int, Node]]] = defaultdict(deque)
        self._next_id: PacketId = 0
        self._generated_at: Dict[PacketId, int] = {}
        self._stats = DynamicStats(warmup=warmup)
        self._started = False

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run(self, steps: int) -> DynamicStats:
        """Simulate ``steps`` steps and return the collected statistics."""
        self._start()
        for _ in range(steps):
            self.step()
        self._stats.finalize(self.time, len(self.in_flight), self._backlog_size())
        return self._stats

    def step(self) -> None:
        """One synchronous step: generate, inject, route, absorb."""
        self._start()
        self._generate()
        injected = self._inject()
        routed, advanced, delivered = self._route()
        self._stats.record_step(
            StepSample(
                step=self.time - 1,
                generated=self._last_generated,
                injected=injected,
                in_flight=routed,
                advancing=advanced,
                delivered=delivered,
                backlog=self._backlog_size(),
            )
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _start(self) -> None:
        if self._started:
            return
        self._started = True
        empty = RoutingProblem(mesh=self.mesh, requests=(), name="dynamic")
        self.policy.prepare(self.mesh, empty, self.rng)
        self.traffic.prepare(self.mesh, self.rng)

    def _generate(self) -> None:
        self._last_generated = 0
        for node in self.mesh.nodes():
            for destination in self.traffic.arrivals(node, self.time):
                if destination == node:
                    continue  # zero-distance demand is a no-op
                self.backlog[node].append((self.time, destination))
                self._last_generated += 1

    def _inject(self) -> int:
        loads: Dict[Node, int] = defaultdict(int)
        for packet in self.in_flight:
            loads[packet.location] += 1
        injected = 0
        for node, queue in self.backlog.items():
            free = self.mesh.degree(node) - loads[node]
            while queue and free > 0:
                generated_at, destination = queue.popleft()
                packet = Packet(
                    id=self._next_id, source=node, destination=destination
                )
                self._generated_at[packet.id] = generated_at
                self._next_id += 1
                self.in_flight.append(packet)
                loads[node] += 1
                free -= 1
                injected += 1
        return injected

    def _route(self) -> Tuple[int, int, int]:
        groups: Dict[Node, List[Packet]] = defaultdict(list)
        for packet in self.in_flight:
            groups[packet.location].append(packet)

        moves: Dict[PacketId, Tuple[Node, bool, bool]] = {}
        for node in sorted(groups):
            view = NodeView(self.mesh, node, self.time, groups[node])
            assignment = self.policy.assign(view)
            seen = set()
            for packet in view.packets:
                direction = assignment.get(packet.id)
                if direction is None or direction in seen:
                    raise ArcAssignmentError(
                        f"dynamic step {self.time}: bad assignment at {node}"
                    )
                seen.add(direction)
                next_node = self.mesh.neighbor(node, direction)
                if next_node is None:
                    raise ArcAssignmentError(
                        f"dynamic step {self.time}: direction {direction} "
                        f"leaves the mesh at {node}"
                    )
                before = self.mesh.distance(node, packet.destination)
                after = self.mesh.distance(next_node, packet.destination)
                advanced = after < before
                moves[packet.id] = (next_node, advanced, view.is_restricted(packet))

        self.time += 1
        routed = len(self.in_flight)
        advanced_count = 0
        delivered_count = 0
        remaining: List[Packet] = []
        for packet in self.in_flight:
            next_node, advanced, was_restricted = moves[packet.id]
            packet.restricted_last_step = was_restricted
            packet.advanced_last_step = advanced
            packet.location = next_node
            packet.hops += 1
            if advanced:
                packet.advances += 1
                advanced_count += 1
            else:
                packet.deflections += 1
            if packet.location == packet.destination:
                packet.delivered_at = self.time
                delivered_count += 1
                generated = self._generated_at.pop(packet.id)
                self._stats.record_delivery(
                    generated_at=generated,
                    delivered_at=self.time,
                    hops=packet.hops,
                    deflections=packet.deflections,
                    shortest=self.mesh.distance(
                        packet.source, packet.destination
                    ),
                )
            else:
                remaining.append(packet)
        self.in_flight = remaining
        return routed, advanced_count, delivered_count

    def _backlog_size(self) -> int:
        return sum(len(queue) for queue in self.backlog.values())
