"""The dynamic (continuous-injection) hot-potato engine.

Extends the batch model of Section 2 to the operating mode of the
paper's motivating systems: every step, nodes *generate* new packets
(per a :class:`~repro.dynamic.injection.TrafficModel`), inject them
when they have spare capacity, and route everything hot-potato style
under an ordinary :class:`~repro.core.policy.RoutingPolicy`.

Injection discipline: a node may inject only as many packets as it has
free outgoing arcs after accounting for the packets already present
(otherwise the hot-potato rule — everyone leaves next step — would be
violated).  Generated packets that cannot be injected wait in a
source queue; their latency clock starts at *generation*, so source
queueing is part of measured latency, as in the deflection-network
literature.

The step loop is the shared :class:`~repro.core.kernel.StepKernel`
configured with a
:class:`~repro.dynamic.sources.CapacityLimitedInjection` source,
sorted node order, and no entry-direction tracking (the historical
behavior of this engine; ``deflection="reverse"`` policies therefore
see no entry arc here, exactly as before).  Runs without step-consuming
observers use the kernel's lean loop; attach observers to get per-step
:class:`~repro.core.metrics.StepRecord`/:class:`StepMetrics` callbacks.
``on_run_end`` fires when :meth:`run` returns, carrying the finalized
:class:`~repro.dynamic.stats.DynamicStats` (there is no ``RunResult``
here).
"""

from __future__ import annotations

from typing import Deque, Dict, Tuple

from repro.dynamic.base import DynamicEngineBase
from repro.dynamic.injection import TrafficModel
from repro.dynamic.sources import CapacityLimitedInjection
from repro.types import Node


class DynamicEngine(DynamicEngineBase):
    """Hot-potato routing under continuous traffic.

    Args:
        mesh: the network.
        policy: any hot-potato routing policy (same interface as the
            batch engine; :meth:`RoutingPolicy.prepare` receives an
            empty batch problem).
        traffic: the demand process.
        seed: RNG seed shared by traffic and policy.
        warmup: steps excluded from steady-state statistics (packets
            *generated* before ``warmup`` are routed but not counted).
        observers: per-step observers; forces the instrumented loop.

    Call :meth:`run` with a horizon; the returned
    :class:`~repro.dynamic.stats.DynamicStats` carries latency,
    throughput, deflection-rate, and backlog series.
    """

    buffered = False

    def _make_source(
        self, traffic: TrafficModel
    ) -> CapacityLimitedInjection:
        return CapacityLimitedInjection(traffic)

    @property
    def backlog(self) -> Dict[Node, Deque[Tuple[int, Node]]]:
        """Pending (generated, not yet injected) demand per node."""
        return self._source.backlog
