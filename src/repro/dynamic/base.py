"""Shared chassis for the continuous-traffic engines.

:class:`DynamicEngineBase` owns everything the two dynamic engines
have in common — RNG/stat bookkeeping, lazy start (policy then source
preparation, in that order: both draw from the same stream, so the
order is part of the seeded contract), observer dispatch, and the
lean-vs-instrumented run decision.  Subclasses are pure configuration:
they pick the injection source and the kernel's ``buffered`` flag, and
say what "backlog" means for their discipline.

Observers get the full lifecycle: ``on_run_start`` before the first
step, ``on_step`` per step (instrumented loop only — observers that
declare ``needs_steps = False`` keep the lean loop and skip these),
and ``on_run_end`` when :meth:`DynamicEngineBase.run` returns, carrying
the finalized :class:`~repro.dynamic.stats.DynamicStats` in place of
the batch engines' :class:`~repro.core.metrics.RunResult`.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
)

from repro.core.events import RunObserver
from repro.core.kernel import (
    AnyPolicy,
    InjectionSource,
    PhaseSink,
    StepKernel,
    StepSummary,
    step_metrics_from_summary,
)
from repro.core.packet import Packet
from repro.core.problem import RoutingProblem
from repro.core.rng import RngLike, describe_seed, make_rng
from repro.faults import ActiveFaults, FaultSchedule, RunWatchdog
from repro.obs.telemetry import RunTelemetry
from repro.dynamic.injection import TrafficModel
from repro.dynamic.stats import DynamicStats, StepSample
from repro.mesh.topology import Mesh
from repro.types import PacketId

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.soa.adapters import PolicyAdapter


class DynamicEngineBase:
    """Common driver for engines fed by an injection source.

    Subclasses set :attr:`buffered` and implement :meth:`_make_source`;
    the remaining hooks (:meth:`_observe_summary`,
    :meth:`_sample_backlog`, :meth:`_final_backlog`) default to the
    hot-potato meaning and are overridden where the store-and-forward
    discipline differs.
    """

    #: Kernel mode: ``False`` routes hot-potato, ``True`` buffers.
    buffered = False

    def __init__(
        self,
        mesh: Mesh,
        policy: AnyPolicy,
        traffic: TrafficModel,
        *,
        seed: RngLike = 0,
        warmup: int = 0,
        observers: Iterable[RunObserver] = (),
        profiler: Optional[PhaseSink] = None,
        faults: Optional[FaultSchedule] = None,
        watchdog: Optional[RunWatchdog] = None,
        backend: str = "object",
        checkpoint_every: Optional[int] = None,
        on_checkpoint: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        if backend not in ("object", "soa"):
            raise ValueError(
                f"backend must be 'object' or 'soa', got {backend!r}"
            )
        self.backend = backend
        self._soa_adapter: Optional["PolicyAdapter"] = None
        if backend == "soa":
            from repro.core.soa import adapter_for

            if watchdog is not None:
                raise ValueError(
                    "backend='soa' does not support watchdogs"
                )
            if faults is not None:
                if not faults.is_empty:
                    raise ValueError(
                        "backend='soa' does not support fault "
                        "schedules; an empty FaultSchedule is "
                        "accepted and ignored"
                    )
                faults = None
            self._soa_adapter = adapter_for(
                policy, buffered=self.buffered, has_injection=True
            )
        self.mesh = mesh
        self.policy = policy
        self.traffic = traffic
        self.rng = make_rng(seed)
        self._seed = describe_seed(seed)
        self.warmup = warmup
        self.observers: List[RunObserver] = list(observers)
        self.profiler = profiler
        self.telemetry = RunTelemetry()
        self.faults = faults
        if watchdog is None and faults is not None:
            watchdog = RunWatchdog()
        self.watchdog = watchdog
        if profiler is not None and (
            faults is not None or watchdog is not None
        ):
            raise ValueError(
                "profiling is incompatible with faults/watchdogs; "
                "drop the profiler or the fault schedule"
            )
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ValueError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
            if on_checkpoint is None:
                raise ValueError(
                    "checkpoint_every needs an on_checkpoint sink to "
                    "receive the snapshots"
                )
        self.checkpoint_every = checkpoint_every
        self.on_checkpoint = on_checkpoint
        self._source = self._make_source(traffic)
        self._stats = DynamicStats(warmup=warmup)
        self._summary_sinks: List[Any] = []
        self._started = False
        self._resumed = False
        self._kernel = StepKernel(
            mesh,
            policy,
            buffered=self.buffered,
            node_order="sorted",
            injection=self._source,
            set_entry_direction=False,
            emit=self._note,
            on_deliver=self._on_deliver,
            telemetry=self.telemetry,
            faults=(
                ActiveFaults(mesh, faults) if faults is not None else None
            ),
            watchdog=watchdog,
        )

    # ------------------------------------------------------------------
    # Configuration hooks
    # ------------------------------------------------------------------

    def _make_source(self, traffic: TrafficModel) -> InjectionSource:
        raise NotImplementedError

    def _observe_summary(self, summary: StepSummary) -> None:
        """Subclass bookkeeping before the sample is recorded."""

    def _sample_backlog(self, summary: StepSummary) -> int:
        return summary.backlog

    def _final_backlog(self) -> int:
        return self._source.backlog_size()

    # ------------------------------------------------------------------
    # Kernel/source state under the engines' historical names
    # ------------------------------------------------------------------

    @property
    def time(self) -> int:
        return self._kernel.time

    @property
    def in_flight(self) -> List[Packet]:
        return self._kernel.in_flight

    @property
    def _next_id(self) -> PacketId:
        return self._source.next_id

    @property
    def _generated_at(self) -> Dict[PacketId, int]:
        return self._source.generated_at

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run(self, steps: int) -> DynamicStats:
        """Simulate ``steps`` steps and return the collected statistics.

        Fires ``on_run_end`` with the finalized stats on return, so
        run-boundary observers (manifest loggers) work on the dynamic
        engines exactly as on the batch ones.

        A watchdog verdict ends the run before the requested horizon;
        the structured :class:`~repro.faults.RunAborted` lands on
        ``stats.abort`` (``None`` when the horizon was reached).
        """
        self._start()
        watchdog = self._kernel.watchdog
        if watchdog is not None and not self._resumed:
            # A resumed run keeps its restored watchdog counters (see
            # HotPotatoEngine.run).
            watchdog.reset(self._kernel)
        until = self.time + steps
        every = self.checkpoint_every
        if any(getattr(o, "needs_steps", True) for o in self.observers):
            if self.backend == "soa":
                raise ValueError(
                    "backend='soa' runs the lean loop only; detach "
                    "step-consuming observers first"
                )
            if self.profiler is not None:
                raise ValueError(
                    "profiling times the lean kernel loop; detach "
                    "step-consuming observers first"
                )
            while self.time < until:
                if watchdog is not None:
                    verdict = watchdog.check(self._kernel)
                    if verdict is not None:
                        self._kernel.abort = verdict
                        break
                self.step()
                if every is not None and self.time % every == 0:
                    self._maybe_checkpoint(until)
        elif every is None:
            self._run_fast(until)
        else:
            # Segmented lean run at absolute step boundaries; the
            # injecting kernels run the full horizon, so segments
            # always make progress and the loop terminates.
            while self.time < until and self._kernel.abort is None:
                boundary = ((self.time // every) + 1) * every
                self._run_fast(min(until, boundary))
                self._maybe_checkpoint(until)
        self._stats.finalize(
            self.time,
            len(self.in_flight),
            self._final_backlog(),
            abort=self._kernel.abort,
        )
        for observer in self.observers:
            observer.on_run_end(self._stats)
        return self._stats

    def step(self) -> None:
        """One synchronous step: generate, inject, route, absorb."""
        self._start()
        record, summary = self._kernel.step_instrumented()
        self._note(summary)
        metrics = step_metrics_from_summary(summary)
        for observer in self.observers:
            observer.on_step(record, metrics)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Capture this engine's complete state — live packets,
        injection-source backlog, both RNG streams, statistics — as a
        JSON-safe dict (see :mod:`repro.snapshot`)."""
        from repro.snapshot.engine import engine_snapshot

        return engine_snapshot(self)

    def resume_from(self, payload: Dict[str, Any]) -> None:
        """Restore a snapshot onto this freshly constructed engine
        (same mesh/policy/traffic/seed, not yet run); the next
        :meth:`run` continues bit-identically."""
        from repro.snapshot.engine import resume_engine

        resume_engine(self, payload)

    def _run_fast(self, until: int) -> None:
        """One lean-loop segment up to absolute step ``until``."""
        if self.backend == "soa":
            from repro.core.soa import SoaKernel

            adapter = self._soa_adapter
            assert adapter is not None
            SoaKernel(self._kernel, adapter).run(
                until, profiler=self.profiler
            )
        elif self.profiler is not None:
            self._kernel.run_profiled(until, self.profiler)
        else:
            self._kernel.run_lean(until)

    def _maybe_checkpoint(self, until: int) -> None:
        """Checkpoint only when the run will continue past this
        boundary (dynamic runs keep going on an empty network, so the
        horizon and abort verdict are the only stop conditions)."""
        if (
            self.on_checkpoint is None
            or self._kernel.abort is not None
            or self.time >= until
        ):
            return
        self.on_checkpoint(self.snapshot())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _start(self) -> None:
        if self._started:
            return
        self._started = True
        empty = RoutingProblem(mesh=self.mesh, requests=(), name="dynamic")
        self.policy.prepare(self.mesh, empty, self.rng)
        self._source.prepare(self.mesh, self.rng)
        self._summary_sinks = [
            o.on_summary
            for o in self.observers
            if getattr(o, "needs_summaries", False)
        ]
        for observer in self.observers:
            observer.on_run_start(self)

    def _note(self, summary: StepSummary) -> None:
        self._observe_summary(summary)
        self._stats.record_step(
            StepSample(
                step=summary.step,
                generated=summary.generated,
                injected=summary.injected,
                in_flight=summary.routed,
                advancing=summary.advancing,
                delivered=summary.delivered,
                backlog=self._sample_backlog(summary),
            )
        )
        for sink in self._summary_sinks:
            sink(summary)

    def _on_deliver(self, packet: Packet) -> None:
        generated = self._source.generated_at.pop(packet.id)
        self._stats.record_delivery(
            generated_at=generated,
            delivered_at=self.time,
            hops=packet.hops,
            deflections=packet.deflections,
            shortest=self.mesh.distance(packet.source, packet.destination),
        )
