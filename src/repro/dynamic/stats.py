"""Steady-state statistics for dynamic runs.

Collects per-step samples and per-delivery records, with a warm-up
cutoff: deliveries of packets *generated* before the warm-up step are
routed but excluded from the statistics, the standard discipline for
measuring stationary behavior.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.report import RunAborted


@dataclass(frozen=True)
class StepSample:
    """Aggregate counters of one dynamic step."""

    step: int
    generated: int
    injected: int
    in_flight: int
    advancing: int
    delivered: int
    backlog: int


@dataclass(frozen=True)
class DeliveryRecord:
    """One delivered packet's life, for latency accounting."""

    generated_at: int
    delivered_at: int
    hops: int
    deflections: int
    shortest: int

    @property
    def latency(self) -> int:
        """Generation-to-delivery time (includes source queueing)."""
        return self.delivered_at - self.generated_at


@dataclass
class DynamicStats:
    """Everything measured during a dynamic run."""

    warmup: int = 0
    samples: List[StepSample] = field(default_factory=list)
    deliveries: List[DeliveryRecord] = field(default_factory=list)
    horizon: int = 0
    final_in_flight: int = 0
    final_backlog: int = 0
    #: Structured early-termination record when a watchdog ended the
    #: run before its requested horizon; None for runs that finished.
    abort: Optional["RunAborted"] = None

    # ------------------------------------------------------------------
    # Collection (called by the engine)
    # ------------------------------------------------------------------

    def record_step(self, sample: StepSample) -> None:
        self.samples.append(sample)

    def record_delivery(
        self,
        generated_at: int,
        delivered_at: int,
        hops: int,
        deflections: int,
        shortest: int,
    ) -> None:
        if generated_at < self.warmup:
            return
        self.deliveries.append(
            DeliveryRecord(
                generated_at=generated_at,
                delivered_at=delivered_at,
                hops=hops,
                deflections=deflections,
                shortest=shortest,
            )
        )

    def finalize(
        self,
        horizon: int,
        in_flight: int,
        backlog: int,
        abort: Optional["RunAborted"] = None,
    ) -> None:
        self.horizon = horizon
        self.final_in_flight = in_flight
        self.final_backlog = backlog
        self.abort = abort

    # ------------------------------------------------------------------
    # Steady-state summaries
    # ------------------------------------------------------------------

    @property
    def delivered_count(self) -> int:
        return len(self.deliveries)

    @property
    def mean_latency(self) -> float:
        """Mean generation-to-delivery latency over counted deliveries."""
        if not self.deliveries:
            return 0.0
        return sum(d.latency for d in self.deliveries) / len(self.deliveries)

    def latency_percentile(self, q: float) -> float:
        """Latency percentile ``q`` in [0, 100] over counted deliveries."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.deliveries:
            return 0.0
        ordered = sorted(d.latency for d in self.deliveries)
        index = min(
            len(ordered) - 1, max(0, round(q / 100 * (len(ordered) - 1)))
        )
        return float(ordered[index])

    @property
    def mean_stretch(self) -> float:
        """Mean hops / shortest-distance over counted deliveries."""
        usable = [d for d in self.deliveries if d.shortest > 0]
        if not usable:
            return 1.0
        return sum(d.hops / d.shortest for d in usable) / len(usable)

    @property
    def deflection_rate(self) -> float:
        """Fraction of hops that were deflections, over deliveries."""
        hops = sum(d.hops for d in self.deliveries)
        if hops == 0:
            return 0.0
        return sum(d.deflections for d in self.deliveries) / hops

    @property
    def throughput(self) -> float:
        """Counted deliveries per post-warm-up step."""
        effective = max(1, self.horizon - self.warmup)
        return len(self.deliveries) / effective

    @property
    def mean_in_flight(self) -> float:
        """Average network population after warm-up."""
        post = [s.in_flight for s in self.samples if s.step >= self.warmup]
        if not post:
            return 0.0
        return sum(post) / len(post)

    @property
    def max_backlog(self) -> int:
        """Largest total source-queue backlog seen after warm-up."""
        post = [s.backlog for s in self.samples if s.step >= self.warmup]
        return max(post) if post else 0

    def is_stable(self) -> bool:
        """Heuristic saturation check: the backlog at the end of the
        run is no larger than a few steps' worth of generation."""
        recent = [s.generated for s in self.samples[-20:]]
        per_step = sum(recent) / len(recent) if recent else 0.0
        return self.final_backlog <= max(5.0, 5 * per_step)

    def summary(self) -> str:
        return (
            f"deliveries={self.delivered_count} "
            f"latency(mean/p50/p99)={self.mean_latency:.1f}/"
            f"{self.latency_percentile(50):.0f}/"
            f"{self.latency_percentile(99):.0f} "
            f"stretch={self.mean_stretch:.2f} "
            f"deflect={self.deflection_rate:.3f} "
            f"throughput={self.throughput:.2f}/step "
            f"backlog(max/final)={self.max_backlog}/{self.final_backlog}"
        )
