"""Shared primitive types used across the library.

The simulator works with plain tuples for node coordinates so that
hashing and equality are fast and values are immutable.  The aliases
here give those tuples descriptive names in signatures.
"""

from __future__ import annotations

from typing import Tuple

#: A node of the d-dimensional mesh, as a tuple of 1-based coordinates
#: ``(a_1, ..., a_d)`` with each ``a_i`` in ``{1, ..., n}`` (Definition 1).
Node = Tuple[int, ...]

#: A directed arc ``(tail, head)`` between two adjacent mesh nodes.
Arc = Tuple[Node, Node]

#: Unique identifier of a packet within a routing problem.
PacketId = int

#: Simulation time, in synchronous steps, starting at 0.
Step = int
