"""Structured abort records for degraded runs.

A run that cannot finish — step budget exhausted, no forward progress,
or a fault-partitioned mesh — should end in *data*, not in a raised
exception halfway through a sweep.  :class:`RunAborted` is that data: a
frozen record of why the run stopped, when, what was still undelivered,
which of those packets were provably unreachable, and the fault
timeline that produced the situation.  Batch engines attach it to
``RunResult.abort``; dynamic engines to ``DynamicStats.abort``.

This module must stay import-light (dataclasses and typing only): the
core result types reference :class:`RunAborted` and nothing here may
import back into ``repro.core``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from repro.types import PacketId

__all__ = ["ABORT_REASONS", "RunAborted"]

#: The closed vocabulary of abort reasons, shared by every engine.
ABORT_REASONS = ("step-limit", "no-progress", "partition")


@dataclass(frozen=True)
class RunAborted:
    """Why and how a run was terminated early.

    Attributes:
        reason: one of :data:`ABORT_REASONS` — ``"step-limit"`` (budget
            exhausted), ``"no-progress"`` (watchdog saw no delivery for
            too long), ``"partition"`` (every in-flight packet's
            destination is unreachable through the live topology).
        step: kernel time at which the run stopped.
        message: one human-readable sentence.
        undelivered: ids of every packet still in flight at the stop,
            in ascending order (the undelivered-packet census).
        stranded: the subset of ``undelivered`` whose destination is
            provably unreachable from its location through live links
            (always empty without fault injection).
        dropped: packets removed by fault events during the run.
        fault_events: the fault timeline (serialized schedule events)
            that was active, for post-mortems; empty without faults.
    """

    reason: str
    step: int
    message: str
    undelivered: Tuple[PacketId, ...] = ()
    stranded: Tuple[PacketId, ...] = ()
    dropped: int = 0
    fault_events: Tuple[Dict[str, Any], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.reason not in ABORT_REASONS:
            raise ValueError(
                f"abort reason must be one of {ABORT_REASONS}, "
                f"got {self.reason!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-friendly mapping (tuples become lists)."""
        return {
            "reason": self.reason,
            "step": self.step,
            "message": self.message,
            "undelivered": list(self.undelivered),
            "stranded": list(self.stranded),
            "dropped": self.dropped,
            "fault_events": [dict(e) for e in self.fault_events],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunAborted":
        """Inverse of :meth:`to_dict` (tolerates missing new fields)."""
        return cls(
            reason=data["reason"],
            step=data["step"],
            message=data.get("message", ""),
            undelivered=tuple(data.get("undelivered", ())),
            stranded=tuple(data.get("stranded", ())),
            dropped=data.get("dropped", 0),
            fault_events=tuple(
                dict(e) for e in data.get("fault_events", ())
            ),
        )

    def summary(self) -> str:
        """One log-friendly line."""
        return (
            f"aborted[{self.reason}] at step {self.step}: {self.message} "
            f"(undelivered={len(self.undelivered)}, "
            f"stranded={len(self.stranded)}, dropped={self.dropped})"
        )
