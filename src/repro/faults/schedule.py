"""Seeded, serializable fault schedules.

A :class:`FaultSchedule` is a declarative list of fault events against
a mesh, fixed before the run starts — deterministic chaos.  Three event
kinds cover the degraded-topology regimes the grid-routing literature
cares about:

* :class:`LinkFault` — one bidirectional link is down for a step
  window ``[start, end)`` (``end=None`` means forever).
* :class:`NodeFault` — a node fails permanently at ``start``; all its
  links go down and any packet at (or later injected at) the node is
  dropped.
* :class:`PacketDrop` — a transient loss event: at step ``step``, up
  to ``count`` packets located at ``node`` are dropped (lowest packet
  ids first, so the selection is deterministic).

Schedules are plain data: JSON round-trip via :meth:`FaultSchedule.to_dict`
/ :meth:`~FaultSchedule.from_dict` (plus :meth:`~FaultSchedule.save` /
:meth:`~FaultSchedule.load` for files), validated against a concrete
mesh with :meth:`~FaultSchedule.validate`, and generated reproducibly
from a seed with :func:`random_schedule`.  The schedule itself never
consumes randomness at simulation time, so a given (problem, policy,
seed, schedule) quadruple is a pure function.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.rng import RngLike, make_rng
from repro.exceptions import ConfigurationError
from repro.types import Node

__all__ = [
    "SCHEDULE_SCHEMA_VERSION",
    "FaultEvent",
    "FaultSchedule",
    "LinkFault",
    "NodeFault",
    "PacketDrop",
    "random_schedule",
]

#: Bump when the schedule JSON layout changes incompatibly.
SCHEDULE_SCHEMA_VERSION = 1


def _node(value: Sequence[int]) -> Node:
    return tuple(int(x) for x in value)


@dataclass(frozen=True)
class LinkFault:
    """The bidirectional link ``{a, b}`` is down for steps
    ``start <= t < end`` (``end=None``: down for the rest of the run)."""

    a: Node
    b: Node
    start: int
    end: Optional[int] = None

    def active_at(self, step: int) -> bool:
        return self.start <= step and (self.end is None or step < self.end)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "link",
            "a": list(self.a),
            "b": list(self.b),
            "start": self.start,
            "end": self.end,
        }


@dataclass(frozen=True)
class NodeFault:
    """``node`` fails permanently at step ``start``: every incident
    link goes down and packets at the node are dropped."""

    node: Node
    start: int

    def active_at(self, step: int) -> bool:
        return self.start <= step

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "node", "node": list(self.node), "start": self.start}


@dataclass(frozen=True)
class PacketDrop:
    """At step ``step``, drop up to ``count`` packets located at
    ``node`` — lowest packet ids first (deterministic selection)."""

    node: Node
    step: int
    count: int = 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "drop",
            "node": list(self.node),
            "step": self.step,
            "count": self.count,
        }


FaultEvent = Union[LinkFault, NodeFault, PacketDrop]


def _event_from_dict(data: Mapping[str, Any]) -> FaultEvent:
    kind = data.get("kind")
    if kind == "link":
        return LinkFault(
            a=_node(data["a"]),
            b=_node(data["b"]),
            start=int(data["start"]),
            end=None if data.get("end") is None else int(data["end"]),
        )
    if kind == "node":
        return NodeFault(node=_node(data["node"]), start=int(data["start"]))
    if kind == "drop":
        return PacketDrop(
            node=_node(data["node"]),
            step=int(data["step"]),
            count=int(data.get("count", 1)),
        )
    raise ValueError(f"unknown fault event kind {kind!r}")


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, ordered collection of fault events.

    Event order in ``events`` is the tie-break order for reporting;
    the runtime semantics depend only on the event contents.
    """

    events: Tuple[FaultEvent, ...] = ()
    description: str = ""

    @classmethod
    def empty(cls) -> "FaultSchedule":
        """A schedule with no events — runs exactly like no faults."""
        return cls()

    @property
    def is_empty(self) -> bool:
        return not self.events

    def link_faults(self) -> List[LinkFault]:
        return [e for e in self.events if isinstance(e, LinkFault)]

    def node_faults(self) -> List[NodeFault]:
        return [e for e in self.events if isinstance(e, NodeFault)]

    def packet_drops(self) -> List[PacketDrop]:
        return [e for e in self.events if isinstance(e, PacketDrop)]

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self, mesh: Any) -> List[str]:
        """Check every event against a concrete mesh.

        Returns a list of problem strings (empty when the schedule is
        well-formed): link endpoints must be adjacent mesh nodes, node
        and drop targets must be mesh nodes, windows must be ordered,
        counts positive.
        """
        problems: List[str] = []
        for index, event in enumerate(self.events):
            where = f"event {index}"
            if isinstance(event, LinkFault):
                if not mesh.contains(event.a):
                    problems.append(f"{where}: {event.a} is not a mesh node")
                elif not mesh.contains(event.b):
                    problems.append(f"{where}: {event.b} is not a mesh node")
                elif event.b not in mesh.neighbors(event.a):
                    problems.append(
                        f"{where}: {event.a} and {event.b} are not adjacent"
                    )
                if event.start < 0:
                    problems.append(f"{where}: start must be >= 0")
                if event.end is not None and event.end <= event.start:
                    problems.append(
                        f"{where}: window [{event.start}, {event.end}) is empty"
                    )
            elif isinstance(event, NodeFault):
                if not mesh.contains(event.node):
                    problems.append(
                        f"{where}: {event.node} is not a mesh node"
                    )
                if event.start < 0:
                    problems.append(f"{where}: start must be >= 0")
            elif isinstance(event, PacketDrop):
                if not mesh.contains(event.node):
                    problems.append(
                        f"{where}: {event.node} is not a mesh node"
                    )
                if event.step < 0:
                    problems.append(f"{where}: step must be >= 0")
                if event.count < 1:
                    problems.append(f"{where}: count must be >= 1")
            else:  # pragma: no cover - construction prevents this
                problems.append(f"{where}: unknown event type {type(event)}")
        return problems

    def check(self, mesh: Any) -> None:
        """Raise :class:`~repro.exceptions.ConfigurationError` when the
        schedule does not fit the mesh."""
        problems = self.validate(mesh)
        if problems:
            raise ConfigurationError(
                "fault schedule does not fit the mesh: "
                + "; ".join(problems)
            )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": SCHEDULE_SCHEMA_VERSION,
            "description": self.description,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSchedule":
        version = data.get("schema_version", SCHEDULE_SCHEMA_VERSION)
        if version != SCHEDULE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported fault schedule schema_version {version!r}"
            )
        events = tuple(
            _event_from_dict(item) for item in data.get("events", ())
        )
        return cls(events=events, description=data.get("description", ""))

    def save(self, path: str) -> None:
        """Write the schedule as pretty-printed JSON."""
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "FaultSchedule":
        """Read a schedule written by :meth:`save` (or by hand)."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def timeline(self) -> Tuple[Dict[str, Any], ...]:
        """The serialized events, for :class:`~repro.faults.report.RunAborted`."""
        return tuple(event.to_dict() for event in self.events)


def random_schedule(
    mesh: Any,
    *,
    seed: RngLike = 0,
    link_faults: int = 2,
    node_faults: int = 0,
    packet_drops: int = 0,
    horizon: int = 128,
    max_window: int = 32,
    description: str = "",
) -> FaultSchedule:
    """Generate a reproducible random schedule for a mesh.

    All randomness comes from the seeded stream (library convention:
    ``seed`` may be an int or a ``random.Random``); the same arguments
    always produce the same schedule.  Link windows start uniformly in
    ``[0, horizon)`` with lengths in ``[1, max_window]``; node faults
    start uniformly in ``[0, horizon)``; drop events pick a node and a
    step uniformly.
    """
    rng = make_rng(seed)
    nodes = list(mesh.nodes())
    events: List[FaultEvent] = []
    for _ in range(link_faults):
        a = rng.choice(nodes)
        neighbors = mesh.neighbors(a)
        b = rng.choice(neighbors)
        start = rng.randrange(horizon)
        events.append(
            LinkFault(a=a, b=b, start=start, end=start + rng.randint(1, max_window))
        )
    for _ in range(node_faults):
        events.append(
            NodeFault(node=rng.choice(nodes), start=rng.randrange(horizon))
        )
    for _ in range(packet_drops):
        events.append(
            PacketDrop(
                node=rng.choice(nodes),
                step=rng.randrange(horizon),
                count=rng.randint(1, 2),
            )
        )
    return FaultSchedule(events=tuple(events), description=description)
