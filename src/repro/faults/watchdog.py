"""Run watchdogs: graceful termination for runs that cannot finish.

A faulted (or livelocked) run can circulate packets forever.  The
:class:`RunWatchdog` watches a kernel between steps and converts three
hopeless situations into a structured
:class:`~repro.faults.report.RunAborted` instead of an unbounded loop
or a mid-run exception:

* **no-progress** — no packet has been delivered for
  ``no_progress_limit`` consecutive steps while packets are in flight;
* **partition** — fault masking has split the live topology so that
  *every* in-flight packet's destination is unreachable from its
  location (checked every ``partition_interval`` steps; while at least
  one packet can still make it, the run keeps going and only the
  stranded rest circulates);
* **step-limit** — not detected by the watchdog itself (engines own
  their budgets) but synthesized with the same record type via
  :func:`step_limit_abort`, so all four engines share one incomplete-
  run vocabulary.

The watchdog holds per-run state; engines call :meth:`RunWatchdog.reset`
at run start and :meth:`RunWatchdog.check` at the top of every step on
both kernel paths, so lean and instrumented runs abort at the same
step with the same record.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.faults.report import RunAborted

__all__ = ["RunWatchdog", "step_limit_abort"]

#: Steps without a single delivery before a no-progress abort.
DEFAULT_NO_PROGRESS_LIMIT = 512

#: Steps between partition (reachability) checks.
DEFAULT_PARTITION_INTERVAL = 32


def _census(
    kernel: Any,
) -> Tuple[
    Tuple[Any, ...], Tuple[Any, ...], int, Tuple[Dict[str, Any], ...]
]:
    """(undelivered ids, stranded ids, dropped count, fault timeline)."""
    undelivered = tuple(sorted(p.id for p in kernel.in_flight))
    faults = getattr(kernel, "faults", None)
    if faults is None:
        return undelivered, (), 0, ()
    return (
        undelivered,
        tuple(faults.stranded_ids(kernel.in_flight)),
        len(faults.dropped_ids),
        faults.timeline(),
    )


def step_limit_abort(kernel: Any, limit: int) -> RunAborted:
    """The structured record for a run that exhausted its step budget."""
    undelivered, stranded, dropped, timeline = _census(kernel)
    return RunAborted(
        reason="step-limit",
        step=kernel.time,
        message=(
            f"step limit {limit} reached with {len(undelivered)} "
            f"packets in flight"
        ),
        undelivered=undelivered,
        stranded=stranded,
        dropped=dropped,
        fault_events=timeline,
    )


class RunWatchdog:
    """Per-run guardian; see the module docstring for semantics.

    Args:
        no_progress_limit: consecutive delivery-free steps tolerated
            while packets are in flight; ``None`` disables the check.
        partition_interval: steps between reachability sweeps;
            ``None`` disables partition detection.

    A single watchdog instance belongs to a single run at a time —
    engines :meth:`reset` it at run start.
    """

    def __init__(
        self,
        *,
        no_progress_limit: Optional[int] = DEFAULT_NO_PROGRESS_LIMIT,
        partition_interval: Optional[int] = DEFAULT_PARTITION_INTERVAL,
    ) -> None:
        if no_progress_limit is not None and no_progress_limit < 1:
            raise ValueError("no_progress_limit must be >= 1 or None")
        if partition_interval is not None and partition_interval < 1:
            raise ValueError("partition_interval must be >= 1 or None")
        self.no_progress_limit = no_progress_limit
        self.partition_interval = partition_interval
        self._last_progress = 0
        self._last_delivered = 0
        self._next_partition_check = 0

    def reset(self, kernel: Any) -> None:
        """Start guarding a (possibly mid-simulation) kernel."""
        self._last_progress = kernel.time
        self._last_delivered = kernel.delivered_total
        if self.partition_interval is not None:
            self._next_partition_check = (
                kernel.time + self.partition_interval
            )

    def check(self, kernel: Any) -> Optional[RunAborted]:
        """Inspect the kernel before a step; a non-``None`` return is
        the structured verdict that the run cannot usefully continue."""
        time = kernel.time
        delivered = kernel.delivered_total
        if delivered > self._last_delivered:
            self._last_delivered = delivered
            self._last_progress = time
        if not kernel.in_flight:
            return None
        if (
            self.no_progress_limit is not None
            and time - self._last_progress >= self.no_progress_limit
        ):
            undelivered, stranded, dropped, timeline = _census(kernel)
            return RunAborted(
                reason="no-progress",
                step=time,
                message=(
                    f"no packet delivered for {time - self._last_progress} "
                    f"steps with {len(undelivered)} in flight"
                ),
                undelivered=undelivered,
                stranded=stranded,
                dropped=dropped,
                fault_events=timeline,
            )
        faults = getattr(kernel, "faults", None)
        if (
            faults is not None
            and self.partition_interval is not None
            and time >= self._next_partition_check
        ):
            self._next_partition_check = time + self.partition_interval
            if faults.anything_down:
                stranded_ids = faults.stranded_ids(kernel.in_flight)
                if stranded_ids and len(stranded_ids) == len(
                    kernel.in_flight
                ):
                    undelivered, stranded, dropped, timeline = _census(
                        kernel
                    )
                    return RunAborted(
                        reason="partition",
                        step=time,
                        message=(
                            f"all {len(undelivered)} in-flight packets "
                            f"are cut off from their destinations by "
                            f"the live topology"
                        ),
                        undelivered=undelivered,
                        stranded=stranded,
                        dropped=dropped,
                        fault_events=timeline,
                    )
        return None
