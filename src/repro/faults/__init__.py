"""Deterministic fault injection and graceful degradation.

Public surface:

* :class:`~repro.faults.schedule.FaultSchedule` and its event types
  (:class:`~repro.faults.schedule.LinkFault`,
  :class:`~repro.faults.schedule.NodeFault`,
  :class:`~repro.faults.schedule.PacketDrop`) — declarative, seeded,
  JSON-serializable chaos.
* :class:`~repro.faults.state.ActiveFaults` /
  :class:`~repro.faults.state.FaultView` — the per-run masked-topology
  runtime the kernel routes through.
* :class:`~repro.faults.watchdog.RunWatchdog` and
  :class:`~repro.faults.report.RunAborted` — structured termination
  for runs that cannot finish.

Engines accept ``faults=FaultSchedule(...)`` and ``watchdog=`` directly;
see the "Fault model & graceful degradation" section of
``docs/ARCHITECTURE.md`` for the full semantics.
"""

from repro.faults.report import ABORT_REASONS, RunAborted
from repro.faults.schedule import (
    FaultEvent,
    FaultSchedule,
    LinkFault,
    NodeFault,
    PacketDrop,
    random_schedule,
)
from repro.faults.state import ActiveFaults, FaultView
from repro.faults.watchdog import RunWatchdog, step_limit_abort

__all__ = [
    "ABORT_REASONS",
    "ActiveFaults",
    "FaultEvent",
    "FaultSchedule",
    "FaultView",
    "LinkFault",
    "NodeFault",
    "PacketDrop",
    "RunAborted",
    "RunWatchdog",
    "random_schedule",
    "step_limit_abort",
]
