"""Runtime fault state: masked topology views and drop selection.

:class:`ActiveFaults` compiles a :class:`~repro.faults.schedule.FaultSchedule`
against a concrete mesh and answers, per step, the two questions the
kernel asks:

* *What does the topology look like right now?* — served through
  masked :class:`~repro.mesh.topology.NodeArcs` tables and good-
  direction tuples that simply omit down links and failed nodes.  The
  :class:`FaultView` mesh wrapper exposes those masked answers behind
  the ordinary :class:`~repro.mesh.topology.Mesh` query interface, so
  :class:`~repro.core.node_view.NodeView` and every policy route around
  failures without knowing faults exist.
* *Which packets are lost this step?* — :meth:`ActiveFaults.select_drops`
  returns the deterministic victim list (packets at failed nodes plus
  scheduled drop events, lowest ids first).

The mask only changes at schedule boundaries (window starts/ends,
failure times), so the masked tables are cached per regime and a run
over a quiet stretch pays one dict lookup per node, like the pristine
mesh.  Distances are deliberately *not* masked: good directions stay
defined by the underlying geometry, so "advance" keeps its Definition 5
meaning and the potential-function accounting stays comparable with
and without faults.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.faults.schedule import (
    FaultSchedule,
    LinkFault,
    NodeFault,
    PacketDrop,
)
from repro.mesh.directions import Direction
from repro.mesh.topology import Mesh, NodeArcs
from repro.types import Node, PacketId

__all__ = ["ActiveFaults", "FaultView"]


class FaultView:
    """A mesh facade serving fault-masked adjacency.

    Overrides every adjacency/direction query to consult the active
    fault mask; everything else (``dimension``, ``distance``,
    ``contains``, ``unit_deflections``, ...) delegates to the real
    mesh via ``__getattr__``.  Policies receive this as
    ``NodeView.mesh`` during faulted runs.
    """

    __slots__ = ("_active", "_mesh")

    def __init__(self, active: "ActiveFaults") -> None:
        self._active = active
        self._mesh = active.mesh

    # Masked adjacency -------------------------------------------------

    def node_arcs(self, node: Node) -> NodeArcs:
        return self._active.node_arcs(node)

    def neighbor(self, node: Node, direction: Direction) -> Optional[Node]:
        return self._active.node_arcs(node).by_direction.get(direction)

    def neighbors(self, node: Node) -> List[Node]:
        return [
            other
            for other in self._active.node_arcs(node).neighbors
            if other is not None
        ]

    def out_directions(self, node: Node) -> List[Direction]:
        return list(self._active.node_arcs(node).out_directions)

    def out_arcs(self, node: Node) -> List[Tuple[Node, Node]]:
        arcs = self._active.node_arcs(node)
        return [(node, arcs.by_direction[d]) for d in arcs.out_directions]

    def in_arcs(self, node: Node) -> List[Tuple[Node, Node]]:
        return [(head, tail) for (tail, head) in self.out_arcs(node)]

    def degree(self, node: Node) -> int:
        return self._active.node_arcs(node).degree

    # Masked packet-centric queries ------------------------------------

    def good_directions_tuple(
        self, node: Node, destination: Node
    ) -> Tuple[Direction, ...]:
        return self._active.good_directions_tuple(node, destination)

    def good_directions(
        self, node: Node, destination: Node
    ) -> List[Direction]:
        return list(self._active.good_directions_tuple(node, destination))

    def bad_directions(
        self, node: Node, destination: Node
    ) -> List[Direction]:
        good = set(self._active.good_directions_tuple(node, destination))
        return [d for d in self._mesh.directions if d not in good]

    def good_arcs(
        self, node: Node, destination: Node
    ) -> List[Tuple[Node, Node]]:
        by_direction = self._active.node_arcs(node).by_direction
        return [
            (node, by_direction[direction])
            for direction in self.good_directions(node, destination)
        ]

    def num_good_directions(self, node: Node, destination: Node) -> int:
        return len(self._active.good_directions_tuple(node, destination))

    def is_restricted(self, node: Node, destination: Node) -> bool:
        return (
            len(self._active.good_directions_tuple(node, destination)) == 1
        )

    # Everything else is the real mesh ---------------------------------

    def __getattr__(self, name: str) -> Any:
        return getattr(self._mesh, name)

    def __repr__(self) -> str:
        return f"FaultView({self._mesh!r})"


class ActiveFaults:
    """One run's live fault state, bound to a mesh.

    The kernel calls :meth:`advance` at the top of every step, then
    routes through :attr:`view` / :meth:`node_arcs`.  All bookkeeping
    is integer/tuple based and never consumes randomness, so faulted
    runs stay pure functions of (problem, policy, seed, schedule).
    """

    def __init__(self, mesh: Mesh, schedule: FaultSchedule) -> None:
        schedule.check(mesh)
        self.mesh = mesh
        self.schedule = schedule
        self.view = FaultView(self)
        #: Ids of packets dropped so far, in drop order.
        self.dropped_ids: List[PacketId] = []

        self._link_events: List[LinkFault] = schedule.link_faults()
        self._node_events: List[NodeFault] = schedule.node_faults()
        #: step -> drop events at that step, in schedule order.
        self._drops_by_step: Dict[int, List[PacketDrop]] = {}
        for drop in schedule.packet_drops():
            self._drops_by_step.setdefault(drop.step, []).append(drop)

        #: Steps at which the link/node mask may change.
        boundaries: Set[int] = set()
        for link in self._link_events:
            boundaries.add(link.start)
            if link.end is not None:
                boundaries.add(link.end)
        for node_event in self._node_events:
            boundaries.add(node_event.start)
        self._boundaries = sorted(boundaries)

        self._step: Optional[int] = None
        self._down_nodes: Set[Node] = set()
        self._down_arcs: Set[Tuple[Node, Node]] = set()
        self._arc_cache: Dict[Node, NodeArcs] = {}
        self._good_cache: Dict[Tuple[Node, Node], Tuple[Direction, ...]] = {}
        self._components: Optional[Dict[Node, int]] = None

    # ------------------------------------------------------------------
    # Per-step mask maintenance
    # ------------------------------------------------------------------

    def advance(self, step: int) -> None:
        """Bring the mask up to date for ``step``.

        Rebuilds the down sets only when a schedule boundary was
        crossed since the last call; otherwise a constant-time no-op.
        """
        previous = self._step
        if previous is not None and previous <= step:
            crossed = any(
                previous < b <= step for b in self._boundaries
            )
            if not crossed:
                self._step = step
                return
        self._rebuild(step)
        self._step = step

    def _rebuild(self, step: int) -> None:
        down_nodes = {
            e.node for e in self._node_events if e.active_at(step)
        }
        down_arcs: Set[Tuple[Node, Node]] = set()
        for link in self._link_events:
            if link.active_at(step):
                down_arcs.add((link.a, link.b))
                down_arcs.add((link.b, link.a))
        if down_nodes == self._down_nodes and down_arcs == self._down_arcs:
            return
        self._down_nodes = down_nodes
        self._down_arcs = down_arcs
        self._arc_cache.clear()
        self._good_cache.clear()
        self._components = None

    @property
    def anything_down(self) -> bool:
        """True when the current mask hides at least one arc or node."""
        return bool(self._down_nodes or self._down_arcs)

    def is_node_down(self, node: Node) -> bool:
        return node in self._down_nodes

    def arc_is_live(self, tail: Node, head: Node) -> bool:
        return (
            tail not in self._down_nodes
            and head not in self._down_nodes
            and (tail, head) not in self._down_arcs
        )

    # ------------------------------------------------------------------
    # Masked topology queries (the FaultView's backing store)
    # ------------------------------------------------------------------

    def node_arcs(self, node: Node) -> NodeArcs:
        """The node's arc table with down links and nodes removed.

        A failed node has an empty table (degree 0); its neighbors'
        tables omit the direction pointing at it.
        """
        arcs = self._arc_cache.get(node)
        if arcs is None:
            base = self.mesh.node_arcs(node)
            if not self.anything_down:
                arcs = base
            else:
                neighbors = tuple(
                    other
                    if other is not None and self.arc_is_live(node, other)
                    else None
                    for other in base.neighbors
                )
                out = tuple(
                    direction
                    for direction, other in zip(
                        self.mesh.directions, neighbors
                    )
                    if other is not None
                )
                by_direction = {
                    direction: other
                    for direction, other in zip(
                        self.mesh.directions, neighbors
                    )
                    if other is not None
                }
                arcs = NodeArcs(out, neighbors, by_direction)
            self._arc_cache[node] = arcs
        return arcs

    def good_directions_tuple(
        self, node: Node, destination: Node
    ) -> Tuple[Direction, ...]:
        """Good directions (Definition 5) restricted to live arcs."""
        key = (node, destination)
        cached = self._good_cache.get(key)
        if cached is None:
            base = self.mesh.good_directions_tuple(node, destination)
            if not self.anything_down:
                cached = base
            else:
                live = self.node_arcs(node).by_direction
                cached = tuple(d for d in base if d in live)
            self._good_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Packet drops
    # ------------------------------------------------------------------

    def select_drops(self, step: int, in_flight: List[Any]) -> List[Any]:
        """The packets lost at the top of ``step``, in drop order.

        Victims are (a) every packet located at a failed node and
        (b) up to ``count`` packets per :class:`PacketDrop` event at
        the event's node.  ``in_flight`` is scanned in order — the
        kernel keeps it ascending by packet id — so drop selection is
        deterministic and "lowest ids first" by construction.  Does
        not mutate anything; the kernel applies the removal.
        """
        drops = self._drops_by_step.get(step)
        down_nodes = self._down_nodes
        if not drops and not down_nodes:
            return []
        budget: Dict[Node, int] = {}
        if drops:
            for event in drops:
                budget[event.node] = budget.get(event.node, 0) + event.count
        victims: List[Any] = []
        for packet in in_flight:
            location = packet.location
            if location in down_nodes:
                victims.append(packet)
                continue
            remaining = budget.get(location)
            if remaining:
                budget[location] = remaining - 1
                victims.append(packet)
        return victims

    # ------------------------------------------------------------------
    # Reachability (watchdog support)
    # ------------------------------------------------------------------

    def components(self) -> Dict[Node, int]:
        """Connected components of the live topology.

        Maps every live node to a component label; failed nodes are
        absent.  Computed once per mask regime via BFS over
        ``mesh.nodes()`` in lexicographic order (deterministic).
        """
        if self._components is None:
            labels: Dict[Node, int] = {}
            label = 0
            for start in self.mesh.nodes():
                if start in labels or start in self._down_nodes:
                    continue
                queue = [start]
                labels[start] = label
                head = 0
                while head < len(queue):
                    node = queue[head]
                    head += 1
                    for other in self.node_arcs(node).neighbors:
                        if other is not None and other not in labels:
                            labels[other] = label
                            queue.append(other)
                label += 1
            self._components = labels
        return self._components

    def is_stranded(self, location: Node, destination: Node) -> bool:
        """True when ``destination`` is unreachable from ``location``
        through live links (either endpoint down also strands)."""
        components = self.components()
        here = components.get(location)
        there = components.get(destination)
        return here is None or there is None or here != there

    def stranded_ids(self, in_flight: List[Any]) -> List[PacketId]:
        """Ids of in-flight packets that provably cannot be delivered
        under the *current* mask (ascending id order)."""
        return sorted(
            packet.id
            for packet in in_flight
            if self.is_stranded(packet.location, packet.destination)
        )

    def timeline(self) -> Tuple[Dict[str, Any], ...]:
        """The schedule's serialized events (for abort records)."""
        return self.schedule.timeline()
