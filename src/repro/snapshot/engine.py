"""Engine-level snapshot and resume for all four engines.

One payload shape serves the batch engines (hot-potato and buffered —
full packet list, per-step metrics) and the dynamic engines (live
packets only, plus injection-source and statistics state).  The
protocol is deliberately *overwrite after start*:

1. the caller constructs a fresh engine from the same inputs (problem
   or mesh/traffic, policy, seed, faults, observers, ...);
2. :func:`resume_engine` runs the engine's normal ``_start()`` — the
   policy and source consume the seed stream exactly as the original
   run did, mesh-derived tables rebuild, observers see
   ``on_run_start``;
3. every captured field is then overwritten with the checkpointed
   value: both RNG streams (the engine stream *and* the policy's
   spawned stream — they are distinct ``random.Random`` instances and
   both advance during a run), packets, kernel counters, telemetry
   (in place — kernel and engine share the instance), recorder and
   watchdog state.

Because step N's outcome is a pure function of the state captured
here, the resumed engine's remaining steps are bit-identical to the
uninterrupted run's — results, telemetry, *and* the RNG streams
themselves — which the differential suite
(``tests/snapshot/``) proves per engine × backend, with and without
fault schedules.

Snapshots are JSON-safe dicts stamped with
:data:`SNAPSHOT_SCHEMA_VERSION`; :func:`save_snapshot` writes them
atomically (tmp file + ``os.replace``) so a crash mid-checkpoint
leaves the previous checkpoint intact.
"""

from __future__ import annotations

import json
import os
import random
from typing import Any, Dict, List, Optional

from repro.snapshot.state import (
    kernel_state,
    metrics_from_json,
    metrics_to_json,
    packet_from_dict,
    packet_to_dict,
    restore_kernel_state,
    restore_telemetry,
    restore_watchdog,
    rng_state_from_json,
    rng_state_to_json,
    stats_from_dict,
    stats_to_dict,
    watchdog_state,
)

__all__ = [
    "SNAPSHOT_SCHEMA_VERSION",
    "engine_snapshot",
    "load_snapshot",
    "resume_engine",
    "save_snapshot",
]

#: Bump when the snapshot payload shape changes incompatibly.
SNAPSHOT_SCHEMA_VERSION = 1

#: Engine kinds with a full-packet-list payload (batch semantics).
_BATCH_KINDS = ("hot-potato", "buffered")

#: Engine kinds whose payload carries injection-source state.
_DYNAMIC_KINDS = ("dynamic", "buffered-dynamic")


# ----------------------------------------------------------------------
# Shared pieces
# ----------------------------------------------------------------------


def _policy_state(policy: Any) -> Dict[str, Any]:
    """Capture a policy's mutable state.

    Every shipped policy with randomness keeps a spawned private
    stream in ``_rng`` (see :func:`repro.core.rng.spawn`); capturing
    only the engine stream would silently diverge any RNG-consuming
    policy on resume.  Policies with further state (the random-rank
    table) expose ``snapshot_state()`` / ``restore_state()``.
    """
    state: Dict[str, Any] = {}
    rng = getattr(policy, "_rng", None)
    if isinstance(rng, random.Random):
        state["rng"] = rng_state_to_json(rng.getstate())
    snapshot_extra = getattr(policy, "snapshot_state", None)
    if callable(snapshot_extra):
        state["extra"] = snapshot_extra()
    return state


def _restore_policy(policy: Any, payload: Dict[str, Any]) -> None:
    if "rng" in payload:
        rng = getattr(policy, "_rng", None)
        if not isinstance(rng, random.Random):
            raise ValueError(
                f"snapshot carries a policy RNG stream but "
                f"{type(policy).__name__} has none"
            )
        rng.setstate(rng_state_from_json(payload["rng"]))
    if "extra" in payload:
        restore_extra = getattr(policy, "restore_state", None)
        if not callable(restore_extra):
            raise ValueError(
                f"snapshot carries extra policy state but "
                f"{type(policy).__name__} has no restore_state()"
            )
        restore_extra(payload["extra"])


def _observer_states(observers: List[Any]) -> List[Optional[Any]]:
    states: List[Optional[Any]] = []
    for observer in observers:
        snapshot = getattr(observer, "snapshot_state", None)
        states.append(snapshot() if callable(snapshot) else None)
    return states


def _restore_observers(
    observers: List[Any], states: List[Optional[Any]]
) -> None:
    if len(states) != len(observers):
        raise ValueError(
            f"snapshot carries {len(states)} observer states but the "
            f"engine has {len(observers)} observers; attach the same "
            f"observers in the same order before resuming"
        )
    for observer, state in zip(observers, states):
        if state is None:
            continue
        restore = getattr(observer, "restore_state", None)
        if not callable(restore):
            raise ValueError(
                f"snapshot carries state for observer "
                f"{type(observer).__name__} but it has no restore_state()"
            )
        restore(state)


def _engine_kind(engine: Any) -> str:
    """Classify an engine instance into its snapshot kind."""
    name = type(engine).__name__
    if name == "HotPotatoEngine":
        return "hot-potato"
    if name == "BufferedEngine":
        return "buffered"
    # Dynamic engines subclass DynamicEngineBase and declare
    # ``buffered``; accept any subclass.
    if hasattr(engine, "traffic") and hasattr(engine, "_source"):
        return "buffered-dynamic" if engine.buffered else "dynamic"
    raise TypeError(f"cannot snapshot a {name}")


# ----------------------------------------------------------------------
# Capture
# ----------------------------------------------------------------------


def engine_snapshot(engine: Any) -> Dict[str, Any]:
    """Capture an engine's complete mid-run state as a JSON-safe dict.

    Works before the first step (the engine is started first, so the
    seeded prepare happens exactly once) and at any step boundary.
    """
    kind = _engine_kind(engine)
    if kind in _BATCH_KINDS and getattr(engine, "record_steps", False):
        raise ValueError(
            "snapshots do not capture step records; run with "
            "record_steps=False to checkpoint"
        )
    engine._start()
    payload: Dict[str, Any] = {
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "kind": kind,
        "step": engine.time,
        "seed": engine._seed,
        "rng": rng_state_to_json(engine.rng.getstate()),
        "policy": _policy_state(engine.policy),
        "kernel": kernel_state(engine._kernel),
        "telemetry": engine.telemetry.to_dict(),
        "watchdog": watchdog_state(engine.watchdog),
        "observers": _observer_states(engine.observers),
    }
    if kind in _BATCH_KINDS:
        payload["packets"] = [packet_to_dict(p) for p in engine.packets]
        payload["metrics"] = metrics_to_json(engine._metrics)
        if kind == "buffered":
            payload["max_buffer_seen"] = engine._max_buffer_seen
    else:
        payload["packets"] = [
            packet_to_dict(p) for p in engine._kernel.in_flight
        ]
        payload["source"] = engine._source.snapshot_state()
        payload["stats"] = stats_to_dict(engine._stats)
    return payload


# ----------------------------------------------------------------------
# Resume
# ----------------------------------------------------------------------


def _check_resumable(engine: Any, payload: Dict[str, Any]) -> str:
    version = payload.get("schema_version")
    if version != SNAPSHOT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported snapshot schema_version {version!r} "
            f"(expected {SNAPSHOT_SCHEMA_VERSION})"
        )
    kind = _engine_kind(engine)
    if payload.get("kind") != kind:
        raise ValueError(
            f"snapshot kind {payload.get('kind')!r} does not match "
            f"this {kind!r} engine"
        )
    if engine._started:
        raise ValueError(
            "resume_from() needs a fresh engine (construct it from the "
            "same inputs, then resume before running)"
        )
    if payload.get("seed") != engine._seed:
        raise ValueError(
            f"snapshot seed {payload.get('seed')!r} does not match the "
            f"engine seed {engine._seed!r}; resuming under a different "
            f"seed would silently diverge"
        )
    return kind


def resume_engine(engine: Any, payload: Dict[str, Any]) -> None:
    """Overwrite a fresh engine with checkpointed state (see module
    docstring for the protocol)."""
    kind = _check_resumable(engine, payload)
    engine._start()
    engine.rng.setstate(rng_state_from_json(payload["rng"]))
    _restore_policy(engine.policy, payload["policy"])

    packets = [packet_from_dict(data) for data in payload["packets"]]
    by_id = {packet.id: packet for packet in packets}
    if kind in _BATCH_KINDS:
        expected = {packet.id for packet in engine.packets}
        if expected != set(by_id):
            raise ValueError(
                "snapshot packet ids do not match the engine's problem; "
                "resume needs the identical problem (same workload, "
                "same seed)"
            )
        engine.packets = packets
        engine._metrics[:] = metrics_from_json(payload["metrics"])
        if kind == "buffered":
            engine._max_buffer_seen = int(payload["max_buffer_seen"])
    else:
        engine._source.restore_state(payload["source"])
        engine._stats = stats_from_dict(payload["stats"])

    restore_kernel_state(engine._kernel, payload["kernel"], by_id)
    restore_telemetry(engine.telemetry, payload["telemetry"])
    if payload["watchdog"] is not None:
        if engine.watchdog is None:
            raise ValueError(
                "snapshot carries watchdog state but the engine has no "
                "watchdog; construct it with the original fault schedule"
            )
        restore_watchdog(engine.watchdog, payload["watchdog"])
    _restore_observers(engine.observers, payload["observers"])
    # run() must not re-baseline the restored watchdog counters.
    engine._resumed = True


# ----------------------------------------------------------------------
# Files
# ----------------------------------------------------------------------


def save_snapshot(payload: Dict[str, Any], path: str) -> None:
    """Write a snapshot atomically (tmp + rename, fsynced).

    A crash during the write leaves either the previous snapshot or
    the new one at ``path`` — never a torn file — so `--resume-from`
    always sees a parseable payload.
    """
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, separators=(",", ":"))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def load_snapshot(path: str) -> Dict[str, Any]:
    """Read a snapshot written by :func:`save_snapshot` (validated)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    version = payload.get("schema_version")
    if version != SNAPSHOT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported snapshot schema_version {version!r} "
            f"(expected {SNAPSHOT_SCHEMA_VERSION})"
        )
    if payload.get("kind") not in _BATCH_KINDS + _DYNAMIC_KINDS:
        raise ValueError(f"unknown snapshot kind {payload.get('kind')!r}")
    return payload
