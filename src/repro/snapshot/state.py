"""JSON-safe (de)serializers for the kernel-level state pieces.

Everything here is a pure value transformation: no file I/O, no RNG
consumption, no wall clock.  The conversions are exact —
``random.Random.getstate()`` tuples round-trip through lists of ints,
floats survive via JSON's shortest-repr round-trip, node tuples
become lists and come back as tuples — so a payload produced by
:func:`packet_to_dict` and folded back by :func:`packet_from_dict`
reconstructs a packet that is indistinguishable from the original to
every kernel path.

The field lists these functions capture are declared in
:mod:`repro.snapshot.registry`; the ``SNP701`` lint rule keeps them in
lockstep with the classes they serialize.
"""

from __future__ import annotations

import random
from dataclasses import fields as dataclass_fields
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from repro.core.metrics import StepMetrics
from repro.core.packet import Packet
from repro.dynamic.stats import DeliveryRecord, DynamicStats, StepSample
from repro.faults.report import RunAborted
from repro.mesh.directions import Direction
from repro.types import Node, PacketId

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.kernel import StepKernel
    from repro.faults.watchdog import RunWatchdog
    from repro.obs.telemetry import RunTelemetry

__all__ = [
    "kernel_state",
    "metrics_from_json",
    "metrics_to_json",
    "node_from_json",
    "node_to_json",
    "packet_from_dict",
    "packet_to_dict",
    "restore_kernel_state",
    "restore_telemetry",
    "rng_state_from_json",
    "rng_state_to_json",
    "stats_from_dict",
    "stats_to_dict",
    "watchdog_state",
    "restore_watchdog",
]

RngState = Tuple[Any, ...]


# ----------------------------------------------------------------------
# RNG streams
# ----------------------------------------------------------------------


def rng_state_to_json(state: RngState) -> List[Any]:
    """``random.Random.getstate()`` as a JSON array.

    The Mersenne Twister state is ``(version, (int, ...), gauss_next)``
    where ``gauss_next`` is ``None`` or a float; both survive JSON
    exactly (ints are arbitrary precision, floats round-trip by
    shortest repr).
    """
    version, internal, gauss_next = state
    return [int(version), [int(word) for word in internal], gauss_next]


def rng_state_from_json(data: Sequence[Any]) -> RngState:
    """Inverse of :func:`rng_state_to_json` (tuples restored)."""
    version, internal, gauss_next = data
    return (
        int(version),
        tuple(int(word) for word in internal),
        None if gauss_next is None else float(gauss_next),
    )


def capture_rng(rng: random.Random) -> List[Any]:
    return rng_state_to_json(rng.getstate())


def restore_rng(rng: random.Random, data: Sequence[Any]) -> None:
    rng.setstate(rng_state_from_json(data))


# ----------------------------------------------------------------------
# Nodes, directions, packets
# ----------------------------------------------------------------------


def node_to_json(node: Node) -> List[int]:
    return [int(coordinate) for coordinate in node]


def node_from_json(data: Sequence[Any]) -> Node:
    return tuple(int(coordinate) for coordinate in data)


def _direction_to_json(
    direction: Optional[Direction],
) -> Optional[List[int]]:
    if direction is None:
        return None
    return [int(direction.axis), int(direction.sign)]


def _direction_from_json(data: Optional[Sequence[Any]]) -> Optional[Direction]:
    if data is None:
        return None
    axis, sign = data
    return Direction(axis=int(axis), sign=int(sign))


def packet_to_dict(packet: Packet) -> Dict[str, Any]:
    """Every slot of a :class:`~repro.core.packet.Packet`, JSON-safe."""
    return {
        "id": packet.id,
        "source": node_to_json(packet.source),
        "destination": node_to_json(packet.destination),
        "location": node_to_json(packet.location),
        "entry_direction": _direction_to_json(packet.entry_direction),
        "delivered_at": packet.delivered_at,
        "dropped_at": packet.dropped_at,
        "advanced_last_step": bool(packet.advanced_last_step),
        "restricted_last_step": bool(packet.restricted_last_step),
        "hops": packet.hops,
        "advances": packet.advances,
        "deflections": packet.deflections,
        "path": [node_to_json(node) for node in packet.path],
    }


def packet_from_dict(data: Dict[str, Any]) -> Packet:
    """Inverse of :func:`packet_to_dict`."""
    packet = Packet(
        id=int(data["id"]),
        source=node_from_json(data["source"]),
        destination=node_from_json(data["destination"]),
    )
    packet.location = node_from_json(data["location"])
    packet.entry_direction = _direction_from_json(data["entry_direction"])
    packet.delivered_at = (
        None if data["delivered_at"] is None else int(data["delivered_at"])
    )
    packet.dropped_at = (
        None if data["dropped_at"] is None else int(data["dropped_at"])
    )
    packet.advanced_last_step = bool(data["advanced_last_step"])
    packet.restricted_last_step = bool(data["restricted_last_step"])
    packet.hops = int(data["hops"])
    packet.advances = int(data["advances"])
    packet.deflections = int(data["deflections"])
    packet.path = [node_from_json(node) for node in data["path"]]
    return packet


# ----------------------------------------------------------------------
# Step metrics
# ----------------------------------------------------------------------

_METRIC_FIELDS: Tuple[str, ...] = tuple(
    f.name for f in dataclass_fields(StepMetrics)
)


def metrics_to_json(metrics: Sequence[StepMetrics]) -> List[List[int]]:
    """Per-step metrics as compact positional rows (field order is
    :class:`~repro.core.metrics.StepMetrics` declaration order)."""
    return [
        [getattr(m, name) for name in _METRIC_FIELDS] for m in metrics
    ]


def metrics_from_json(rows: Sequence[Sequence[Any]]) -> List[StepMetrics]:
    return [
        StepMetrics(**dict(zip(_METRIC_FIELDS, row))) for row in rows
    ]


# ----------------------------------------------------------------------
# Kernel state
# ----------------------------------------------------------------------


def kernel_state(kernel: "StepKernel") -> Dict[str, Any]:
    """The kernel-owned run state (packets travel by id reference;
    the engine payload carries the packet objects)."""
    faults = kernel.faults
    return {
        "time": kernel.time,
        "delivered_total": kernel.delivered_total,
        "in_flight": [packet.id for packet in kernel.in_flight],
        "abort": (
            kernel.abort.to_dict() if kernel.abort is not None else None
        ),
        "dropped_ids": (
            list(faults.dropped_ids) if faults is not None else None
        ),
    }


def restore_kernel_state(
    kernel: "StepKernel",
    payload: Dict[str, Any],
    packets_by_id: Dict[PacketId, Packet],
) -> None:
    """Overwrite a freshly-started kernel with checkpointed state.

    ``packets_by_id`` must contain every id in the payload's
    ``in_flight`` list.  The distance table is recomputed from the
    restored locations (it is a pure function of them), and the fault
    mask is left to rebuild itself on the next ``advance()`` — a fresh
    :class:`~repro.faults.state.ActiveFaults` starts with ``_step``
    unset, so the first post-resume step recompiles the mask for the
    current regime deterministically.
    """
    kernel.time = int(payload["time"])
    kernel.delivered_total = int(payload["delivered_total"])
    kernel.in_flight = [
        packets_by_id[int(packet_id)] for packet_id in payload["in_flight"]
    ]
    kernel.abort = (
        RunAborted.from_dict(payload["abort"])
        if payload["abort"] is not None
        else None
    )
    distance = kernel.mesh.distance
    kernel._dist = {
        p.id: distance(p.location, p.destination) for p in kernel.in_flight
    }
    if kernel.faults is not None and payload["dropped_ids"] is not None:
        kernel.faults.dropped_ids[:] = [
            int(packet_id) for packet_id in payload["dropped_ids"]
        ]


# ----------------------------------------------------------------------
# Telemetry, watchdog
# ----------------------------------------------------------------------


def restore_telemetry(
    telemetry: "RunTelemetry", payload: Dict[str, Any]
) -> None:
    """In-place restore: the kernel and engine share one telemetry
    object, so the instance must keep its identity."""
    for field in dataclass_fields(telemetry):
        setattr(telemetry, field.name, int(payload[field.name]))


def watchdog_state(watchdog: Optional["RunWatchdog"]) -> Optional[Dict[str, int]]:
    if watchdog is None:
        return None
    return {
        "last_progress": watchdog._last_progress,
        "last_delivered": watchdog._last_delivered,
        "next_partition_check": watchdog._next_partition_check,
    }


def restore_watchdog(
    watchdog: "RunWatchdog", payload: Dict[str, Any]
) -> None:
    watchdog._last_progress = int(payload["last_progress"])
    watchdog._last_delivered = int(payload["last_delivered"])
    watchdog._next_partition_check = int(payload["next_partition_check"])


# ----------------------------------------------------------------------
# Dynamic statistics
# ----------------------------------------------------------------------

_SAMPLE_FIELDS: Tuple[str, ...] = tuple(
    f.name for f in dataclass_fields(StepSample)
)
_DELIVERY_FIELDS: Tuple[str, ...] = tuple(
    f.name for f in dataclass_fields(DeliveryRecord)
)


def stats_to_dict(stats: DynamicStats) -> Dict[str, Any]:
    """A :class:`~repro.dynamic.stats.DynamicStats` as positional rows."""
    return {
        "warmup": stats.warmup,
        "samples": [
            [getattr(s, name) for name in _SAMPLE_FIELDS]
            for s in stats.samples
        ],
        "deliveries": [
            [getattr(d, name) for name in _DELIVERY_FIELDS]
            for d in stats.deliveries
        ],
        "horizon": stats.horizon,
        "final_in_flight": stats.final_in_flight,
        "final_backlog": stats.final_backlog,
        "abort": stats.abort.to_dict() if stats.abort is not None else None,
    }


def stats_from_dict(payload: Dict[str, Any]) -> DynamicStats:
    stats = DynamicStats(warmup=int(payload["warmup"]))
    stats.samples = [
        StepSample(**dict(zip(_SAMPLE_FIELDS, row)))
        for row in payload["samples"]
    ]
    stats.deliveries = [
        DeliveryRecord(**dict(zip(_DELIVERY_FIELDS, row)))
        for row in payload["deliveries"]
    ]
    stats.horizon = int(payload["horizon"])
    stats.final_in_flight = int(payload["final_in_flight"])
    stats.final_backlog = int(payload["final_backlog"])
    stats.abort = (
        RunAborted.from_dict(payload["abort"])
        if payload["abort"] is not None
        else None
    )
    return stats
