"""Deterministic mid-run checkpointing for all four engines.

``repro.snapshot`` serializes *complete* kernel state — packets, both
RNG streams, injection-source state, fault drop history, step counter,
telemetry and recorder state — into schema-versioned JSON-safe dicts,
and restores them onto freshly constructed engines such that the
resumed run is bit-identical to the uninterrupted one (results,
telemetry, and the RNG streams themselves).

Layout:

* :mod:`repro.snapshot.registry` — the per-class field coverage
  contract shared with the ``SNP701`` lint rule;
* :mod:`repro.snapshot.state` — pure value (de)serializers for the
  kernel-level pieces;
* :mod:`repro.snapshot.engine` — engine-level capture/resume plus
  atomic snapshot files.

Entry points users actually touch: ``engine.snapshot()`` /
``engine.resume_from(snap)`` on every engine, ``checkpoint_every=`` on
engine constructors, ``repro route --checkpoint-every/--resume-from``,
and checkpointed campaign cases.  See ``docs/robustness.md``.
"""

from repro.snapshot.engine import (
    SNAPSHOT_SCHEMA_VERSION,
    engine_snapshot,
    load_snapshot,
    resume_engine,
    save_snapshot,
)
from repro.snapshot.registry import SNAPSHOT_REGISTRY, SnapshotSpec, spec_for
from repro.snapshot.state import (
    packet_from_dict,
    packet_to_dict,
    rng_state_from_json,
    rng_state_to_json,
)

__all__ = [
    "SNAPSHOT_REGISTRY",
    "SNAPSHOT_SCHEMA_VERSION",
    "SnapshotSpec",
    "engine_snapshot",
    "load_snapshot",
    "packet_from_dict",
    "packet_to_dict",
    "resume_engine",
    "rng_state_from_json",
    "rng_state_to_json",
    "save_snapshot",
    "spec_for",
]
