"""The snapshot field registry: which mutable state checkpoints own.

Deterministic resume is only as good as its coverage: a field of
mutable run state that the serializer silently skips resumes as its
constructor default and the run diverges *quietly* — the worst
possible failure mode for a reproduction whose claims rest on
bit-identity.  This module therefore declares, per class, exactly
which attributes carry run state that
:mod:`repro.snapshot.state` / :mod:`repro.snapshot.engine` serialize
(``fields``) and which attributes are sanctioned *not* to be
serialized because resume reconstructs them (``derived``: wiring,
configuration, caches rebuilt by ``prepare()``/first use).

Two consumers keep each other honest:

* the serializers in this package, which capture every ``fields``
  entry;
* the ``SNP701`` lint rule (:mod:`repro.lint.snapshots`), which walks
  the AST of every registered class and flags any ``self.<attr>``
  assignment naming an attribute in *neither* set.  Adding mutable
  state to a kernel/engine/recorder class without deciding its
  snapshot fate fails CI.

The registry matches classes the same way the kernel-twin specs in
:mod:`repro.lint.kernelspec` match functions: by dotted module
*suffix* plus qualname, so the rule fires identically on the shipped
tree and on the linter's fixture packages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

__all__ = ["SnapshotSpec", "SNAPSHOT_REGISTRY", "spec_for"]


@dataclass(frozen=True)
class SnapshotSpec:
    """Snapshot coverage contract for one class.

    Attributes:
        module_suffix: dotted module suffix the class lives in
            (``"core.engine"`` matches ``repro.core.engine`` and any
            fixture package's ``core/engine.py``).
        qualname: the class name.
        fields: attributes whose values are captured by snapshots
            (directly or through a nested payload).
        derived: attributes that are deliberately *not* captured —
            configuration, wiring to other registered objects, and
            caches that resume rebuilds deterministically.
    """

    module_suffix: str
    qualname: str
    fields: FrozenSet[str] = frozenset()
    derived: FrozenSet[str] = frozenset()

    @property
    def covered(self) -> FrozenSet[str]:
        """Every attribute the registry has an answer for."""
        return self.fields | self.derived


def _spec(
    module_suffix: str,
    qualname: str,
    fields: Tuple[str, ...] = (),
    derived: Tuple[str, ...] = (),
) -> SnapshotSpec:
    return SnapshotSpec(
        module_suffix=module_suffix,
        qualname=qualname,
        fields=frozenset(fields),
        derived=frozenset(derived),
    )


#: Coverage contracts for every class that carries mid-run mutable
#: state reachable from an engine snapshot.  ``fields`` must stay in
#: lockstep with the serializers in this package; ``derived`` documents
#: why an attribute may legitimately stay out of the payload.
SNAPSHOT_REGISTRY: Tuple[SnapshotSpec, ...] = (
    _spec(
        "core.kernel",
        "StepKernel",
        # Captured: the step counter, live population (+ per-packet
        # state via the packet payloads), cumulative deliveries, the
        # structured abort verdict, and the incremental distance table
        # (recomputed on resume rather than shipped).
        fields=("time", "in_flight", "delivered_total", "abort", "_dist"),
        derived=(
            "mesh",
            "policy",
            "buffered",
            "sorted_order",
            "injection",
            "set_entry_direction",
            "record_paths",
            "emit",
            "on_deliver",
            "telemetry",
            "faults",
            "watchdog",
        ),
    ),
    _spec(
        "core.engine",
        "HotPotatoEngine",
        fields=("rng", "packets", "telemetry", "_metrics"),
        derived=(
            "backend",
            "_soa_adapter",
            "problem",
            "mesh",
            "policy",
            "_seed",
            "validators",
            "observers",
            "max_steps",
            "record_steps",
            "raise_on_timeout",
            "fast_path",
            "profiler",
            "faults",
            "watchdog",
            "checkpoint_every",
            "on_checkpoint",
            "_records",
            "_summary_sinks",
            "_started",
            "_resumed",
            "_kernel",
        ),
    ),
    _spec(
        "core.buffered_engine",
        "BufferedEngine",
        fields=("rng", "packets", "telemetry", "_metrics", "_max_buffer_seen"),
        derived=(
            "backend",
            "_soa_adapter",
            "problem",
            "mesh",
            "policy",
            "_seed",
            "validators",
            "observers",
            "max_steps",
            "raise_on_timeout",
            "profiler",
            "faults",
            "watchdog",
            "checkpoint_every",
            "on_checkpoint",
            "_summary_sinks",
            "_started",
            "_resumed",
            "_kernel",
        ),
    ),
    _spec(
        "dynamic.base",
        "DynamicEngineBase",
        fields=("rng", "telemetry", "_stats"),
        derived=(
            "buffered",
            "backend",
            "_soa_adapter",
            "mesh",
            "policy",
            "traffic",
            "_seed",
            "warmup",
            "observers",
            "profiler",
            "faults",
            "watchdog",
            "checkpoint_every",
            "on_checkpoint",
            "_source",
            "_summary_sinks",
            "_started",
            "_resumed",
            "_kernel",
        ),
    ),
    _spec(
        "dynamic.sources",
        "CapacityLimitedInjection",
        fields=("backlog", "next_id", "generated_at"),
        derived=("traffic", "_mesh"),
    ),
    _spec(
        "dynamic.sources",
        "ImmediateInjection",
        fields=("next_id", "generated_at"),
        derived=("traffic", "_mesh"),
    ),
    _spec(
        "dynamic.stats",
        "DynamicStats",
        fields=(
            "samples",
            "deliveries",
            "horizon",
            "final_in_flight",
            "final_backlog",
            "abort",
        ),
        derived=("warmup",),
    ),
    _spec(
        "faults.state",
        "ActiveFaults",
        # Drop history is real run state; the per-regime masks and
        # caches are pure functions of (schedule, step) and rebuild on
        # the first post-resume ``advance()`` because ``_step`` starts
        # as None on a fresh instance.
        fields=("dropped_ids",),
        derived=(
            "mesh",
            "schedule",
            "view",
            "_link_events",
            "_node_events",
            "_drops_by_step",
            "_boundaries",
            "_step",
            "_down_nodes",
            "_down_arcs",
            "_arc_cache",
            "_good_cache",
            "_components",
        ),
    ),
    _spec(
        "faults.watchdog",
        "RunWatchdog",
        fields=("_last_progress", "_last_delivered", "_next_partition_check"),
        derived=("no_progress_limit", "partition_interval"),
    ),
    _spec(
        "algorithms.base",
        "GreedyMatchingPolicy",
        # The spawned policy stream: captured via getstate(), restored
        # via setstate() after prepare() re-spawns it.
        fields=("_rng",),
        derived=(
            "name",
            "declares_greedy",
            "declares_max_advance",
            "tie_break",
            "deflection",
        ),
    ),
    _spec(
        "algorithms.random_rank",
        "RandomRankPolicy",
        fields=("_ranks",),
        derived=("name",),
    ),
    _spec(
        "obs.telemetry",
        "RunTelemetry",
        fields=(
            "steps",
            "packet_steps",
            "generated",
            "injected",
            "delivered",
            "advances",
            "deflections",
            "dropped",
            "max_in_flight",
            "max_node_load",
            "max_backlog",
        ),
        derived=(),
    ),
    _spec(
        "obs.series",
        "StepSeries",
        fields=("capacity", "mode", "stride", "dropped", "columns"),
        derived=(),
    ),
    _spec(
        "obs.series",
        "SeriesRecorder",
        fields=("series",),
        derived=("needs_steps", "needs_summaries"),
    ),
    _spec(
        "obs.metrics",
        "RunMetricsRecorder",
        fields=("registry",),
        derived=(
            "needs_steps",
            "needs_summaries",
            "_steps",
            "_packet_steps",
            "_advances",
            "_deflections",
            "_delivered",
            "_injected",
            "_generated",
            "_dropped",
            "_peak_in_flight",
            "_peak_node_load",
            "_peak_backlog",
            "_load_hist",
            "_deflection_hist",
        ),
    ),
)


_INDEX: Dict[Tuple[str, str], SnapshotSpec] = {
    (spec.module_suffix, spec.qualname): spec for spec in SNAPSHOT_REGISTRY
}


def spec_for(module: str, qualname: str) -> Optional[SnapshotSpec]:
    """The registry entry for a class, matched by module suffix.

    ``module`` is a dotted module name (``repro.core.engine`` or a
    fixture package's ``dirtypkg.core.engine``); the match succeeds
    when it equals a registered suffix or ends with ``"." + suffix``.
    """
    for (suffix, name), spec in _INDEX.items():
        if name != qualname:
            continue
        if module == suffix or module.endswith("." + suffix):
            return spec
    return None
