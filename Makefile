# Developer entry points.  The repo has no runtime dependencies; the
# dev extras (pytest, pytest-benchmark, hypothesis) come from
# `pip install -e .[dev]`.

PYTEST = PYTHONPATH=src python -m pytest

.PHONY: test smoke bench perf-trajectory

# Tier-1 verification: the full suite, exactly as CI runs it.
test:
	$(PYTEST) -x -q

# Fast feedback loop: everything except the `slow` marker (process
# pools, long sweeps).  Use while iterating; run `make test` before
# shipping.
smoke:
	$(PYTEST) -x -q -m "not slow"

# Engine micro-benchmarks (pytest-benchmark timings).
bench:
	$(PYTEST) benchmarks/bench_engine_perf.py -q --benchmark-only

# Append packet-steps/sec for the current tree to BENCH_engine.json.
perf-trajectory:
	python benchmarks/bench_report.py
