# Developer entry points.  The repo has no runtime dependencies; the
# dev extras (pytest, pytest-benchmark, hypothesis, ruff, mypy) come
# from `pip install -e .[dev]`.

PYTEST = PYTHONPATH=src python -m pytest

.PHONY: test smoke bench perf-trajectory profile crashtest lint lint-baseline typecheck

# Tier-1 verification: the full suite, exactly as CI runs it.
test:
	$(PYTEST) -x -q

# Fast feedback loop: everything except the `slow` marker (process
# pools, long sweeps).  Use while iterating; run `make test` before
# shipping.
smoke:
	$(PYTEST) -x -q -m "not slow"

# Engine micro-benchmarks (pytest-benchmark timings).
bench:
	$(PYTEST) benchmarks/bench_engine_perf.py -q --benchmark-only

# Append packet-steps/sec for the current tree to BENCH_engine.json.
perf-trajectory:
	python benchmarks/bench_report.py

# Phase-time table for the benchmark configuration (lean kernel loop,
# wall-clock timestamps from repro.obs.clock around each phase).
profile:
	PYTHONPATH=src python -m repro profile --side 16 --k 256

# Kill-and-resume sweep: every engine x backend combination is
# snapshotted at every checkpoint boundary and resumed, the durability
# layer is run under injected fsync/ENOSPC/SIGKILL faults, and a real
# worker pool is SIGKILLed mid-campaign and resumed from its log
# (see docs/robustness.md for the failure model).
crashtest:
	PYTHONPATH=src python -m repro.chaos.crashtest all

# Static analysis (repro.lint) plus ruff, when available.  The custom
# linter is the gate — it has no third-party dependencies and must
# pass everywhere; --strict-new applies the committed
# lint-baseline.json ratchet, so only findings the baseline does not
# record fail.  ruff is skipped gracefully on bare containers.
lint:
	PYTHONPATH=src python -m repro lint src/repro --strict-new
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping style check"; \
	fi

# Regenerate the committed findings baseline after triaging real
# findings (see docs/lint-rules.md for the ratchet semantics).
lint-baseline:
	PYTHONPATH=src python -m repro lint src/repro --write-baseline

# mypy gate: strict on repro.core / repro.mesh / repro.lint /
# repro.obs / repro.dynamic / repro.faults, baseline elsewhere (see
# pyproject.toml and docs/typing-baseline.md).
typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed; skipping type check"; \
	fi
